// Package hydee is a Go reproduction of "HydEE: Failure Containment
// without Event Logging for Large Scale Send-Deterministic MPI
// Applications" (Guermouche, Ropars, Snir, Cappello — IPDPS 2012).
//
// It bundles a simulated MPI runtime (goroutine-per-rank over reliable
// FIFO channels with a virtual-time Myrinet-10G cost model), the HydEE
// hybrid rollback-recovery protocol (coordinated checkpointing inside
// process clusters + sender-based logging of inter-cluster payloads, no
// event logging), two baselines (globally coordinated checkpointing and
// full message logging), the communication-graph clustering tool, the six
// NAS-like send-deterministic kernels of the paper's evaluation, and the
// experiment harness that regenerates Table I and Figures 5–6.
//
// Quick start:
//
//	eng, err := hydee.New(
//	    hydee.WithTopology(hydee.NewTopology([]int{0, 0, 1, 1})),
//	    hydee.WithProtocol(hydee.HydEE()),
//	    hydee.WithModel(hydee.Myrinet10G()),
//	    hydee.WithCheckpointEvery(5),
//	)
//	if err != nil { ... }
//	res, err := eng.Run(ctx, program)
//
// An Engine is reusable across runs, honors context cancellation and
// deadlines, returns typed errors (*RunError wrapping ErrCanceled,
// ErrDeadlock, ErrNotSendDeterministic), and streams lifecycle events to
// an Observer. The struct-based hydee.Run(cfg, program) entry point remains
// as a thin shim over the same runtime.
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package hydee

import (
	"context"

	"hydee/internal/apps"
	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/graph"
	"hydee/internal/harness"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/netpipe"
	"hydee/internal/rollback"
	"hydee/internal/rollback/coord"
	"hydee/internal/trace"
	"hydee/internal/vtime"
)

// Core runtime types.
type (
	// Config describes one run of a message-passing program.
	Config = mpi.Config
	// Program is the per-rank application code.
	Program = mpi.Program
	// Comm is the MPI-like communicator handed to programs.
	Comm = mpi.Comm
	// Result aggregates a run's metrics.
	Result = mpi.Result
	// Status describes a completed receive.
	Status = mpi.Status
	// Request is a nonblocking-operation handle.
	Request = mpi.Request
	// ReduceOp selects a reduction operator.
	ReduceOp = mpi.ReduceOp
)

// Protocol and clustering types.
type (
	// Protocol is a rollback-recovery protocol.
	Protocol = rollback.Protocol
	// Topology is a process clustering.
	Topology = rollback.Topology
	// Metrics is the per-rank protocol accounting.
	Metrics = rollback.Metrics
	// RecoveryStats summarizes one recovery round.
	RecoveryStats = rollback.RecoveryStats
)

// Failure injection types.
type (
	// FailureSchedule lists fail-stop events.
	FailureSchedule = failure.Schedule
	// FailureEvent is one (possibly multi-process) concurrent failure.
	FailureEvent = failure.Event
	// FailureTrigger decides when an event fires.
	FailureTrigger = failure.Trigger
)

// Virtual time types.
type (
	// Time is a virtual-time instant in nanoseconds.
	Time = vtime.Time
	// Duration is a virtual-time span in nanoseconds.
	Duration = vtime.Duration
)

// Receive wildcards and time units, re-exported for programs.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag

	Nanosecond  = vtime.Nanosecond
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
	Second      = vtime.Second

	OpSum = mpi.OpSum
	OpMax = mpi.OpMax
	OpMin = mpi.OpMin
)

// Model is a network cost model.
type Model = netmodel.Model

// Run executes a program under the configuration. It is a thin shim over
// an Engine, kept for struct-based callers; new code should prefer
// hydee.New(...).Run(ctx, program).
func Run(cfg Config, program Program) (*Result, error) { return mpi.Run(cfg, program) }

// RunContext is Run honoring ctx cancellation and deadlines.
func RunContext(ctx context.Context, cfg Config, program Program) (*Result, error) {
	return mpi.RunContext(ctx, cfg, program)
}

// Event tracing (application-level Post/Delivery events, §II-C).
type (
	// EventRecorder collects application-level events when set in Config.
	EventRecorder = trace.Recorder
	// TraceEvent is one recorded event.
	TraceEvent = trace.Event
)

// Trace event kinds.
const (
	TraceSend    = trace.Send
	TraceDeliver = trace.Deliver
)

// NewEventRecorder creates a recorder for np ranks.
func NewEventRecorder(np int) *EventRecorder { return trace.NewRecorder(np) }

// HydEE returns the paper's protocol: coordinated checkpointing inside
// clusters, sender-based logging of inter-cluster payloads, no event
// logging.
func HydEE() Protocol { return core.New() }

// Native returns the no-fault-tolerance baseline (plain MPI).
func Native() Protocol { return rollback.Native() }

// Coordinated returns the globally coordinated checkpointing baseline
// (global restart after any failure).
func Coordinated() Protocol { return coord.New() }

// MessageLogging returns the full sender-based message-logging comparator
// of Figure 6 (use with Singletons clustering).
func MessageLogging() Protocol {
	return core.NewWithOptions(core.Options{Name: "mlog", ExtraPiggyBytes: 8})
}

// NewTopology builds a clustering from a per-rank cluster assignment.
func NewTopology(assign []int) *Topology { return rollback.NewTopology(assign) }

// SingleCluster puts all ranks in one cluster.
func SingleCluster(np int) *Topology { return rollback.SingleCluster(np) }

// Singletons puts every rank in its own cluster.
func Singletons(np int) *Topology { return rollback.Singletons(np) }

// Myrinet10G returns the network model calibrated to the paper's testbed.
func Myrinet10G() netmodel.Model { return netmodel.Myrinet10G() }

// TCPGigE returns a commodity gigabit Ethernet model.
func TCPGigE() netmodel.Model { return netmodel.TCPGigE() }

// IdealNetwork returns a zero-cost model for protocol-logic experiments.
func IdealNetwork() netmodel.Model { return netmodel.Ideal() }

// NewFailureSchedule builds a failure schedule.
func NewFailureSchedule(events ...FailureEvent) *FailureSchedule {
	return failure.NewSchedule(events...)
}

// Float64sToBytes / BytesToFloat64s convert numeric payloads.
func Float64sToBytes(v []float64) []byte { return mpi.Float64sToBytes(v) }

// BytesToFloat64s decodes a little-endian float64 payload.
func BytesToFloat64s(b []byte) ([]float64, error) { return mpi.BytesToFloat64s(b) }

// ---------------------------------------------------------------------------
// Clustering tool.

// CommGraph is a weighted communication graph.
type CommGraph = graph.Graph

// ClusterOptions configures the clustering sweep.
type ClusterOptions = graph.Options

// ClusterResult is the outcome of a clustering sweep.
type ClusterResult = graph.Result

// NewCommGraph creates an empty communication graph over np ranks.
func NewCommGraph(np int) *CommGraph { return graph.New(np) }

// CommGraphFromPairBytes builds a graph from Result.PairBytes.
func CommGraphFromPairBytes(np int, pairBytes []int64) *CommGraph {
	return graph.FromPairBytes(np, pairBytes)
}

// Cluster partitions a communication graph, trading logged volume against
// cluster size like the off-line tool the paper uses (§V-B3).
func Cluster(g *CommGraph, opt ClusterOptions) ClusterResult { return graph.Cluster(g, opt) }

// DefaultClusterOptions mirrors the paper tool's trade-off.
func DefaultClusterOptions() ClusterOptions { return graph.DefaultOptions() }

// ---------------------------------------------------------------------------
// Kernels and experiments.

// Kernel is one of the paper's NAS-like benchmarks.
type Kernel = apps.Kernel

// KernelParams scales a kernel run.
type KernelParams = apps.Params

// Kernels lists the six NAS kernels in Table I order.
func Kernels() []Kernel { return apps.Registry() }

// KernelByName returns one kernel ("bt", "cg", "ft", "lu", "mg", "sp").
func KernelByName(name string) (Kernel, error) { return apps.Get(name) }

// Synthetic programs.
var (
	// RingProgram is a token-accumulation ring.
	RingProgram = apps.Ring
	// StencilProgram is a 4-neighbor halo exchange on a 2D torus.
	StencilProgram = apps.Stencil2D
	// MasterWorkerProgram is the non-send-deterministic counterexample.
	MasterWorkerProgram = apps.MasterWorker
	// RandomDAGProgram is a seeded random send-deterministic workload.
	RandomDAGProgram = apps.RandomDAG
)

// Experiment harness re-exports (see internal/harness for details).
type (
	// ExperimentSpec describes one harness run.
	ExperimentSpec = harness.Spec
	// ExperimentSummary is its aggregated outcome.
	ExperimentSummary = harness.Summary
	// ExperimentProto selects the protocol configuration of a spec.
	ExperimentProto = harness.Proto
	// Table1Row / Fig5Row / Fig6Row / E4Row / E5Row are experiment rows.
	Table1Row = harness.Table1Row
	Fig5Row   = harness.Fig5Row
	Fig6Row   = harness.Fig6Row
	E4Row     = harness.E4Row
	E5Row     = harness.E5Row
)

// Experiment protocol selectors.
const (
	ProtoNative = harness.ProtoNative
	ProtoCoord  = harness.ProtoCoord
	ProtoMLog   = harness.ProtoMLog
	ProtoHydEE  = harness.ProtoHydEE
)

// RunExperiment executes one harness spec.
func RunExperiment(s ExperimentSpec) (*ExperimentSummary, error) { return harness.Run(s) }

// RunExperimentCtx executes one harness spec, honoring ctx.
func RunExperimentCtx(ctx context.Context, s ExperimentSpec) (*ExperimentSummary, error) {
	return harness.RunCtx(ctx, s)
}

// RunExperiments executes independent specs through a bounded worker pool
// (parallelism <= 0 uses one worker per CPU) and returns summaries in spec
// order; runs are isolated, so results are identical to the serial path.
func RunExperiments(ctx context.Context, specs []ExperimentSpec, parallelism int) ([]*ExperimentSummary, error) {
	return harness.RunAll(ctx, specs, parallelism)
}

// Table1 regenerates Table I at np ranks.
func Table1(np, traceIters int) ([]Table1Row, error) {
	return harness.Table1(np, traceIters, graph.DefaultOptions())
}

// Table1Ctx is Table1 with a context, an explicit network model (nil =
// Myrinet10G) and a sweep parallelism (<= 0 = one worker per CPU).
func Table1Ctx(ctx context.Context, np, traceIters int, model Model, parallelism int) ([]Table1Row, error) {
	return harness.Table1Ctx(ctx, np, traceIters, graph.DefaultOptions(), model, parallelism)
}

// Figure5 regenerates Figure 5 (nil model = Myrinet10G, nil sizes =
// standard sweep).
func Figure5(sizes []int, reps int) ([]Fig5Row, error) {
	return harness.Figure5(netmodel.Myrinet10G(), sizes, reps)
}

// Figure5Ctx is Figure5 with a context and an explicit network model (nil
// = Myrinet10G); the three sweep configurations run concurrently.
func Figure5Ctx(ctx context.Context, model Model, sizes []int, reps int) ([]Fig5Row, error) {
	return harness.Figure5Ctx(ctx, model, sizes, reps)
}

// Figure6 regenerates Figure 6 at np ranks with the given clusterings.
func Figure6(np, iters int, clusterings map[string][]int) ([]Fig6Row, error) {
	return harness.Figure6(np, iters, clusterings)
}

// Figure6Ctx is Figure6 with a context, an explicit network model (nil =
// Myrinet10G), a configurable comparator protocol for the middle bar
// (ProtoMLog reproduces the paper) and a sweep parallelism (<= 0 = one
// worker per CPU).
func Figure6Ctx(ctx context.Context, np, iters int, clusterings map[string][]int, model Model, comparator ExperimentProto, parallelism int) ([]Fig6Row, error) {
	return harness.Figure6Ctx(ctx, np, iters, clusterings, model, comparator, parallelism)
}

// Clusterings runs the clustering tool for every kernel.
func Clusterings(np, traceIters int) (map[string][]int, []Table1Row, error) {
	return harness.Clusterings(np, traceIters, graph.DefaultOptions())
}

// CheckpointBurst regenerates E5: the kernel checkpoints into one shared
// store of storeBPS bytes/second, simultaneously vs staggered.
func CheckpointBurst(k Kernel, np, iters, ckptEvery int, assign []int, storeBPS float64) ([]E5Row, error) {
	return harness.CheckpointBurst(k, np, iters, ckptEvery, assign, storeBPS)
}

// CheckpointBurstSharded is the E5 extension: one shared store vs
// HydEE's staggered schedule vs a sharded store with per-cluster
// placement and independent per-shard bandwidth contention (nil model =
// Myrinet10G).
func CheckpointBurstSharded(ctx context.Context, k Kernel, np, iters, ckptEvery int, assign []int, storeBPS float64, shards int, model Model) ([]E5Row, error) {
	return harness.CheckpointBurstSharded(ctx, k, np, iters, ckptEvery, assign, storeBPS, shards, model)
}

// NetPIPEStandardSizes is the Figure 5 size sweep.
func NetPIPEStandardSizes() []int { return netpipe.StandardSizes() }

// Experiment formatters.
var (
	FormatTable1  = harness.FormatTable1
	FormatFigure5 = harness.FormatFigure5
	FormatFigure6 = harness.FormatFigure6
	FormatE4      = harness.FormatE4
	FormatE5      = harness.FormatE5
)
