package hydee

import (
	"fmt"
	"strconv"
	"strings"

	"hydee/internal/checkpoint"
)

// Stable-storage extension surface. Store is the contract checkpoint
// backends implement; third-party implementations plug in through
// WithStore (one pinned instance) or RegisterStore + WithStoreName (a
// fresh store per run). Custom stores carry determinism obligations —
// the runtime admits saves in virtual-time order, and a store's reported
// completion times must be a pure function of that admission order; see
// DESIGN.md "Extension points".
type (
	// Store is stable storage for checkpoints: Save/Load with modeled
	// completion times, LatestSeq per rank, aggregate Stats.
	Store = checkpoint.Store
	// Snapshot is one process checkpoint (process image, protocol
	// state, buffered in-transit messages), with accessors EncodedSize,
	// CostBytes and Clone.
	Snapshot = checkpoint.Snapshot
	// StoreStats aggregates store activity (saves, bytes, loads, worst
	// virtual-time write backlog).
	StoreStats = checkpoint.StoreStats
)

// StoreOptions parameterizes a named store factory. A factory reads the
// fields it understands and rejects values it cannot honor where
// silently ignoring them would mislead (the built-in "mem" and "file"
// factories reject Shards > 1 — asking an unsharded backend to shard is
// a misconfiguration, not a default).
type StoreOptions struct {
	// WriteBPS / ReadBPS model storage bandwidth in bytes/second:
	// aggregate for "mem" and "file", per shard for "sharded", "ec" and
	// "replica". 0 means free (untimed) storage.
	WriteBPS, ReadBPS float64
	// Shards is the shard count of a "sharded" store (values < 1 mean
	// one shard). For "ec" it is the data-shard count k of the k+m
	// geometry.
	Shards int
	// Parity is the parity-shard count m of an "ec" store (k = Shards);
	// the store spreads k+m fragment shards and survives any m losses.
	// Zero everywhere else.
	Parity int
	// Replicas is the copy count r of a "replica" store (r >= 2). Zero
	// everywhere else.
	Replicas int
	// Placement maps a rank to its shard — reduced modulo the physical
	// shard count (Shards, k+m, or r) — and for "ec" selects the base
	// shard of the rank's fragment group. nil defaults to per-cluster
	// placement when the run has a topology (ClusterPlacement) and
	// round-robin otherwise.
	Placement func(rank int) int
	// Dir is the directory of a "file" store.
	Dir string
}

// totalShards is the physical shard count a spec implies — replica
// count for "replica", data+parity for "ec", plain Shards otherwise —
// the modulus ClusterPlacement needs.
func (o StoreOptions) totalShards() int {
	switch {
	case o.Replicas > 0:
		return o.Replicas
	case o.Parity > 0:
		return o.Shards + o.Parity
	default:
		return o.Shards
	}
}

// StoreFactory builds a Store from options — the common constructor
// signature RegisterStore expects. Each call must return a fresh,
// independent store.
type StoreFactory func(StoreOptions) (Store, error)

// rejectRedundancy guards factories that neither erasure-code nor
// replicate against silently dropping a redundancy request.
func rejectRedundancy(name string, o StoreOptions) error {
	if o.Parity > 0 {
		return fmt.Errorf("hydee: store %q does not erasure-code (got Parity=%d); use \"ec\"", name, o.Parity)
	}
	if o.Replicas > 0 {
		return fmt.Errorf("hydee: store %q does not replicate (got Replicas=%d); use \"replica\"", name, o.Replicas)
	}
	return nil
}

func memStoreFactory(o StoreOptions) (Store, error) {
	if o.Shards > 1 {
		return nil, fmt.Errorf(`hydee: store "mem" does not shard (got Shards=%d); use "sharded"`, o.Shards)
	}
	if err := rejectRedundancy("mem", o); err != nil {
		return nil, err
	}
	return checkpoint.NewMemStore(o.WriteBPS, o.ReadBPS), nil
}

func fileStoreFactory(o StoreOptions) (Store, error) {
	if o.Shards > 1 {
		return nil, fmt.Errorf(`hydee: store "file" does not shard (got Shards=%d); use "sharded"`, o.Shards)
	}
	if err := rejectRedundancy("file", o); err != nil {
		return nil, err
	}
	if o.Dir == "" {
		return nil, fmt.Errorf(`hydee: store "file" needs StoreOptions.Dir`)
	}
	return checkpoint.NewFileStore(o.Dir, o.WriteBPS, o.ReadBPS)
}

func shardedStoreFactory(o StoreOptions) (Store, error) {
	if err := rejectRedundancy("sharded", o); err != nil {
		return nil, err
	}
	if o.Dir != "" {
		return checkpoint.NewShardedFileStore(o.Dir, o.Shards, o.WriteBPS, o.ReadBPS, o.Placement)
	}
	return checkpoint.NewShardedStore(o.Shards, o.WriteBPS, o.ReadBPS, o.Placement), nil
}

func ecStoreFactory(o StoreOptions) (Store, error) {
	if o.Replicas > 0 {
		return nil, fmt.Errorf(`hydee: store "ec" does not replicate (got Replicas=%d); use "replica"`, o.Replicas)
	}
	if o.Dir != "" {
		return nil, fmt.Errorf(`hydee: store "ec" is memory-backed (got Dir=%q)`, o.Dir)
	}
	if o.Shards < 1 || o.Parity < 1 {
		return nil, fmt.Errorf(`hydee: store "ec" needs Shards (data) >= 1 and Parity >= 1, got %d+%d (spec form ec:<k>+<m>)`, o.Shards, o.Parity)
	}
	return checkpoint.NewECStore(o.Shards, o.Parity, o.WriteBPS, o.ReadBPS, o.Placement)
}

func replicaStoreFactory(o StoreOptions) (Store, error) {
	if o.Parity > 0 {
		return nil, fmt.Errorf(`hydee: store "replica" does not erasure-code (got Parity=%d); use "ec"`, o.Parity)
	}
	if o.Shards > 1 {
		return nil, fmt.Errorf(`hydee: store "replica" does not shard (got Shards=%d); replicas come from Replicas/replica:<r>`, o.Shards)
	}
	if o.Dir != "" {
		return nil, fmt.Errorf(`hydee: store "replica" is memory-backed (got Dir=%q)`, o.Dir)
	}
	if o.Replicas < 2 {
		return nil, fmt.Errorf(`hydee: store "replica" needs Replicas >= 2, got %d (spec form replica:<r>)`, o.Replicas)
	}
	return checkpoint.NewReplicatedStore(o.Replicas, o.WriteBPS, o.ReadBPS, o.Placement)
}

// NewMemStore builds an in-memory store with a shared write/read
// bandwidth model (zero disables timing) — the default backend.
func NewMemStore(writeBPS, readBPS float64) Store {
	return checkpoint.NewMemStore(writeBPS, readBPS)
}

// NewFileStore builds a store persisting snapshots as files under dir.
func NewFileStore(dir string, writeBPS, readBPS float64) (Store, error) {
	return checkpoint.NewFileStore(dir, writeBPS, readBPS)
}

// NewShardedStore builds a store of n independent in-memory shards, each
// with its own bandwidth-contention window: checkpoints on different
// shards never queue behind each other. place maps rank to shard (nil =
// round-robin); use ClusterPlacement to give each cluster its own
// storage target.
func NewShardedStore(n int, writeBPS, readBPS float64, place func(rank int) int) Store {
	return checkpoint.NewShardedStore(n, writeBPS, readBPS, place)
}

// NewShardedFileStore builds (or reopens) a durable sharded store under
// dir, one file-backed shard per directory dir/shard-000, dir/shard-001,
// ... Reopening with n == 0 infers the shard count from the layout;
// snapshots saved before the reopen stay loadable. Also reachable as
// WithStoreName("sharded", StoreOptions{Dir: ..., Shards: n}) and
// `-store sharded:n -store-dir dir` in hydee-recover.
func NewShardedFileStore(dir string, n int, writeBPS, readBPS float64, place func(rank int) int) (Store, error) {
	return checkpoint.NewShardedFileStore(dir, n, writeBPS, readBPS, place)
}

// NewECStore builds an erasure-coded store: each snapshot is split into
// k data + m parity fragments spread over k+m independent in-memory
// shards (one bandwidth-contention window each), and restored from any k
// surviving fragments — m arbitrary shard losses cost no data, for an
// (k+m)/k× storage overhead instead of replication's r×. place selects
// the base shard of a rank's fragment group (nil = round-robin by rank);
// use ClusterPlacement so fragment groups start on their cluster's
// storage target. Also reachable as WithStoreName("ec",
// StoreOptions{Shards: k, Parity: m}) and `-store ec:k+m`.
func NewECStore(k, m int, writeBPS, readBPS float64, place func(rank int) int) (Store, error) {
	return checkpoint.NewECStore(k, m, writeBPS, readBPS, place)
}

// NewReplicatedStore builds an r-way replicated store (r >= 2): every
// snapshot is written in full to all r in-memory replicas and read back
// from the first healthy one, surviving up to r-1 replica losses at r×
// storage cost. place selects a rank's home (first-probed) replica; nil
// is round-robin. Also reachable as WithStoreName("replica",
// StoreOptions{Replicas: r}) and `-store replica:r`.
func NewReplicatedStore(r int, writeBPS, readBPS float64, place func(rank int) int) (Store, error) {
	return checkpoint.NewReplicatedStore(r, writeBPS, readBPS, place)
}

// Storage fault injection: schedule shard kills, corruption or slowdowns
// at a virtual time, ordered on the same virtual-time event plane as
// rank failures — so faulted runs stay byte-reproducible.
type (
	// ShardFault schedules one fault (kill, corrupt, degrade) on one
	// shard of a composite store at a virtual time.
	ShardFault = checkpoint.ShardFault
	// FaultKind selects what a ShardFault does: FaultKill, FaultCorrupt
	// or FaultDegrade.
	FaultKind = checkpoint.FaultKind
	// FaultStats counts the operations one faulted shard absorbed.
	FaultStats = checkpoint.FaultStats
	// FaultyStore wraps a store with a shard-fault schedule; its
	// FaultStats method reports per-shard fault activity.
	FaultyStore = checkpoint.FaultyStore
)

// Fault kinds for ShardFault.Kind.
const (
	// FaultKill makes the shard unavailable from AtVT on (writes
	// dropped, reads refused).
	FaultKill = checkpoint.FaultKill
	// FaultCorrupt damages every snapshot read from the shard from AtVT
	// on; self-verifying backends (ec, replica) detect and skip it.
	FaultCorrupt = checkpoint.FaultCorrupt
	// FaultDegrade multiplies the shard's modeled write cost and read
	// duration by ShardFault.Factor from AtVT on.
	FaultDegrade = checkpoint.FaultDegrade
)

// NewFaultyStore wraps inner so the scheduled ShardFaults apply to its
// shards: shards of a sharded/ec store, replicas of a replicated store,
// or the whole store as shard 0 otherwise. Install it before the store
// carries traffic. Fault activation is a pure predicate on each
// operation's virtual issue time, so injected failures are totally
// ordered against all other store traffic and runs stay
// byte-reproducible.
func NewFaultyStore(inner Store, faults ...ShardFault) (*FaultyStore, error) {
	return checkpoint.NewFaultyStore(inner, faults...)
}

// ClusterPlacement places each rank on the shard of its cluster (cluster
// id modulo shards): the clusters that checkpoint together — and would
// otherwise burst on one shared link — land on distinct storage targets.
func ClusterPlacement(t *Topology, shards int) func(rank int) int {
	if shards < 1 {
		shards = 1
	}
	return func(rank int) int { return t.ClusterOf[rank] % shards }
}

// StoreSpecForms documents the -store spec grammar ParseStoreSpec
// accepts, for flag help and error messages.
const StoreSpecForms = `"<name>", "<name>:<shards>" (sharded:6), "ec:<k>+<m>" (ec:4+2), "replica:<r>" (replica:3)`

// StoreSpecError reports a malformed or out-of-range -store spec,
// rejected eagerly at flag-parse time. Its message lists the accepted
// forms and the canonical registered store names.
type StoreSpecError struct {
	Spec   string // the spec as given
	Reason string // what is wrong with it
}

func (e *StoreSpecError) Error() string {
	return fmt.Sprintf("hydee: store spec %q: %s (forms: %s; stores: %s)",
		e.Spec, e.Reason, StoreSpecForms, strings.Join(StoreNames(), ", "))
}

// ParseStoreSpec parses a -store flag value into the registry name and
// the StoreOptions geometry it implies:
//
//	"mem"          → ("mem", {})
//	"sharded:6"    → ("sharded", {Shards: 6})
//	"ec:4+2"       → ("ec", {Shards: 4, Parity: 2})
//	"replica:3"    → ("replica", {Replicas: 3})
//
// Geometry is validated eagerly — ec needs k >= 1 data and m >= 1
// parity shards with k+m <= 256, replica needs r >= 2 — so a bad spec
// fails at flag-parse time with a *StoreSpecError instead of deep in
// run setup. Bandwidth, directory and placement are orthogonal knobs
// the caller layers onto the returned options.
func ParseStoreSpec(spec string) (name string, opts StoreOptions, err error) {
	bad := func(format string, args ...any) (string, StoreOptions, error) {
		return "", StoreOptions{}, &StoreSpecError{Spec: spec, Reason: fmt.Sprintf(format, args...)}
	}
	name, arg, hasArg := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	arg = strings.TrimSpace(arg)
	if name == "" {
		return bad("empty store name")
	}
	switch strings.ToLower(name) {
	case "ec":
		if !hasArg || arg == "" {
			return bad(`"ec" needs a geometry: ec:<k>+<m>`)
		}
		ks, ms, hasPlus := strings.Cut(arg, "+")
		if !hasPlus {
			return bad(`"ec" geometry is <data>+<parity>, e.g. ec:4+2`)
		}
		k, kerr := strconv.Atoi(strings.TrimSpace(ks))
		m, merr := strconv.Atoi(strings.TrimSpace(ms))
		if kerr != nil || merr != nil || k < 1 || m < 1 {
			return bad("ec needs k >= 1 data and m >= 1 parity shards")
		}
		if k+m > 256 {
			return bad("ec supports at most 256 shards total, got %d+%d", k, m)
		}
		return name, StoreOptions{Shards: k, Parity: m}, nil
	case "replica", "replicated":
		if !hasArg || arg == "" {
			return bad(`"replica" needs a copy count: replica:<r>`)
		}
		r, rerr := strconv.Atoi(arg)
		if rerr != nil || r < 2 {
			return bad("replica needs r >= 2 copies (one copy is just a slower store)")
		}
		return name, StoreOptions{Replicas: r}, nil
	}
	if !hasArg {
		return name, StoreOptions{}, nil
	}
	n, nerr := strconv.Atoi(arg)
	if nerr != nil || n < 1 {
		return bad("shard count must be a positive integer")
	}
	return name, StoreOptions{Shards: n}, nil
}
