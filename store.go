package hydee

import (
	"fmt"
	"strconv"
	"strings"

	"hydee/internal/checkpoint"
)

// Stable-storage extension surface. Store is the contract checkpoint
// backends implement; third-party implementations plug in through
// WithStore (one pinned instance) or RegisterStore + WithStoreName (a
// fresh store per run). Custom stores carry determinism obligations —
// the runtime admits saves in virtual-time order, and a store's reported
// completion times must be a pure function of that admission order; see
// DESIGN.md "Extension points".
type (
	// Store is stable storage for checkpoints: Save/Load with modeled
	// completion times, LatestSeq per rank, aggregate Stats.
	Store = checkpoint.Store
	// Snapshot is one process checkpoint (process image, protocol
	// state, buffered in-transit messages), with accessors EncodedSize,
	// CostBytes and Clone.
	Snapshot = checkpoint.Snapshot
	// StoreStats aggregates store activity (saves, bytes, loads, worst
	// virtual-time write backlog).
	StoreStats = checkpoint.StoreStats
)

// StoreOptions parameterizes a named store factory. A factory reads the
// fields it understands and rejects values it cannot honor where
// silently ignoring them would mislead (the built-in "mem" and "file"
// factories reject Shards > 1 — asking an unsharded backend to shard is
// a misconfiguration, not a default).
type StoreOptions struct {
	// WriteBPS / ReadBPS model storage bandwidth in bytes/second:
	// aggregate for "mem" and "file", per shard for "sharded". 0 means
	// free (untimed) storage.
	WriteBPS, ReadBPS float64
	// Shards is the shard count of a "sharded" store (values < 1 mean
	// one shard).
	Shards int
	// Placement maps a rank to its shard (reduced modulo Shards); nil
	// defaults to per-cluster placement when the run has a topology
	// (ClusterPlacement) and round-robin otherwise.
	Placement func(rank int) int
	// Dir is the directory of a "file" store.
	Dir string
}

// StoreFactory builds a Store from options — the common constructor
// signature RegisterStore expects. Each call must return a fresh,
// independent store.
type StoreFactory func(StoreOptions) (Store, error)

func memStoreFactory(o StoreOptions) (Store, error) {
	if o.Shards > 1 {
		return nil, fmt.Errorf(`hydee: store "mem" does not shard (got Shards=%d); use "sharded"`, o.Shards)
	}
	return checkpoint.NewMemStore(o.WriteBPS, o.ReadBPS), nil
}

func fileStoreFactory(o StoreOptions) (Store, error) {
	if o.Shards > 1 {
		return nil, fmt.Errorf(`hydee: store "file" does not shard (got Shards=%d); use "sharded"`, o.Shards)
	}
	if o.Dir == "" {
		return nil, fmt.Errorf(`hydee: store "file" needs StoreOptions.Dir`)
	}
	return checkpoint.NewFileStore(o.Dir, o.WriteBPS, o.ReadBPS)
}

func shardedStoreFactory(o StoreOptions) (Store, error) {
	if o.Dir != "" {
		return checkpoint.NewShardedFileStore(o.Dir, o.Shards, o.WriteBPS, o.ReadBPS, o.Placement)
	}
	return checkpoint.NewShardedStore(o.Shards, o.WriteBPS, o.ReadBPS, o.Placement), nil
}

// NewMemStore builds an in-memory store with a shared write/read
// bandwidth model (zero disables timing) — the default backend.
func NewMemStore(writeBPS, readBPS float64) Store {
	return checkpoint.NewMemStore(writeBPS, readBPS)
}

// NewFileStore builds a store persisting snapshots as files under dir.
func NewFileStore(dir string, writeBPS, readBPS float64) (Store, error) {
	return checkpoint.NewFileStore(dir, writeBPS, readBPS)
}

// NewShardedStore builds a store of n independent in-memory shards, each
// with its own bandwidth-contention window: checkpoints on different
// shards never queue behind each other. place maps rank to shard (nil =
// round-robin); use ClusterPlacement to give each cluster its own
// storage target.
func NewShardedStore(n int, writeBPS, readBPS float64, place func(rank int) int) Store {
	return checkpoint.NewShardedStore(n, writeBPS, readBPS, place)
}

// NewShardedFileStore builds (or reopens) a durable sharded store under
// dir, one file-backed shard per directory dir/shard-000, dir/shard-001,
// ... Reopening with n == 0 infers the shard count from the layout;
// snapshots saved before the reopen stay loadable. Also reachable as
// WithStoreName("sharded", StoreOptions{Dir: ..., Shards: n}) and
// `-store sharded:n -store-dir dir` in hydee-recover.
func NewShardedFileStore(dir string, n int, writeBPS, readBPS float64, place func(rank int) int) (Store, error) {
	return checkpoint.NewShardedFileStore(dir, n, writeBPS, readBPS, place)
}

// ClusterPlacement places each rank on the shard of its cluster (cluster
// id modulo shards): the clusters that checkpoint together — and would
// otherwise burst on one shared link — land on distinct storage targets.
func ClusterPlacement(t *Topology, shards int) func(rank int) int {
	if shards < 1 {
		shards = 1
	}
	return func(rank int) int { return t.ClusterOf[rank] % shards }
}

// ParseStoreSpec splits a -store flag value of the form "name" or
// "name:shards" ("sharded:4") into the registry name and shard count
// (0 when the spec names none).
func ParseStoreSpec(spec string) (name string, shards int, err error) {
	name, sh, ok := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", 0, fmt.Errorf("hydee: empty store spec %q", spec)
	}
	if !ok {
		return name, 0, nil
	}
	shards, err = strconv.Atoi(strings.TrimSpace(sh))
	if err != nil || shards < 1 {
		return "", 0, fmt.Errorf("hydee: store spec %q: shard count must be a positive integer", spec)
	}
	return name, shards, nil
}
