//go:build race

package hydee_test

// raceEnabled reports that this binary was built with the race detector;
// the np=1024 smoke workload skips under it (the detector makes the
// 1024-goroutine run ~25x slower without adding coverage the smaller
// -race runs don't already have).
const raceEnabled = true
