package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"hydee"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs          submit a JobRequest, 202 + JobView (or 400 / 503)
//	GET    /v1/jobs          list all jobs
//	GET    /v1/jobs/{id}     one job's status and summaries
//	DELETE /v1/jobs/{id}     cancel (idempotent), 200 + JobView
//	GET    /v1/jobs/{id}/events   live SSE: the job's event stream replayed
//	                              from the start, one `lifecycle` event per
//	                              run event (data = the JSONL wire record),
//	                              terminated by one `summary` event carrying
//	                              the final JobView
//	GET    /v1/registry      the selectable backend names
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func jobID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, r.PathValue("id"))
	}
	return id, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job request: " + err.Error()})
		return
	}
	view, err := s.Submit(req)
	if err != nil {
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	view, err := s.Job(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	view, err := s.Cancel(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleEvents streams a job's events as Server-Sent Events: replay from
// the start, then live until the job finishes. Each run event is framed as
//
//	event: lifecycle
//	data: {"kind":"run-start",...}        ← MarshalRunEvent, byte-identical
//	                                        to the JSONL files on disk
//
// and the stream terminates with
//
//	event: summary
//	data: {"id":1,"state":"done",...}     ← the final JobView
//
// A client disconnect detaches the subscriber without touching the job.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	events, cancel, err := s.Subscribe(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// Stream drained: the job is terminal (Subscribe's channel
				// only closes after the fanout hub is closed, which run()
				// and queued-cancel do after the state settles).
				view, err := s.Job(id)
				if err != nil {
					return
				}
				data, err := json.Marshal(view)
				if err != nil {
					return
				}
				fmt.Fprintf(w, "event: summary\ndata: %s\n\n", data)
				flusher.Flush()
				return
			}
			data, err := hydee.MarshalRunEvent(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: lifecycle\ndata: %s\n\n", data)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	kernels := make([]string, 0, len(hydee.Kernels()))
	for _, k := range hydee.Kernels() {
		kernels = append(kernels, k.Name)
	}
	writeJSON(w, http.StatusOK, map[string][]string{
		"kernels":   kernels,
		"protocols": hydee.ProtocolNames(),
		"models":    hydee.ModelNames(),
		"stores":    hydee.StoreNames(),
		"exporters": hydee.ExporterNames(),
	})
}
