package server_test

// Tests for the sweep service: HTTP submissions produce summaries
// byte-identical to serial in-process sweeps even when jobs run
// concurrently, cancellation lands fast and leaks nothing, the SSE
// stream replays from the start and terminates with the final view, and
// the queue applies backpressure instead of buffering without bound.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"hydee"
	"hydee/server"
)

// sweepRuns is the reference sweep: three protocols, a failure with
// recovery, a sharded store — enough surface that accidental
// nondeterminism in the serving path would show.
func sweepRuns() []hydee.SweepSpec {
	return []hydee.SweepSpec{
		{App: "cg", NP: 16, Iters: 3, Proto: "hydee", Clusters: 4, CheckpointEvery: 2, FailAt: "ckpts:1@8"},
		{App: "mg", NP: 16, Iters: 3, Proto: "coord", CheckpointEvery: 2},
		{App: "ft", NP: 16, Iters: 2, Proto: "native"},
	}
}

func newTestServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.EventDir == "" {
		cfg.EventDir = t.TempDir()
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return srv
}

func submitHTTP(t *testing.T, ts *httptest.Server, req server.JobRequest) server.JobView {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var view server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func waitDone(t *testing.T, srv *server.Server, id int) server.JobView {
	t.Helper()
	done, err := srv.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %d did not finish", id)
	}
	view, err := srv.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	return view
}

// rawSummaries fetches a job view keeping the summaries' JSON bytes
// unparsed, for exact byte comparison against a serial sweep.
func rawSummaries(t *testing.T, ts *httptest.Server, id int) (string, []byte) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job %d: status %d", id, resp.StatusCode)
	}
	var view struct {
		State     string          `json:"state"`
		Summaries json.RawMessage `json:"summaries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view.State, view.Summaries
}

// TestConcurrentHTTPSweepsMatchSerial is the determinism acceptance: two
// jobs of the same sweep submitted over HTTP and run concurrently yield
// summaries byte-identical to each other and to a serial in-process
// sweep of the same specs.
func TestConcurrentHTTPSweepsMatchSerial(t *testing.T) {
	srv := newTestServer(t, server.Config{Concurrency: 2, Parallelism: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	a := submitHTTP(t, ts, server.JobRequest{Label: "a", Runs: sweepRuns()})
	b := submitHTTP(t, ts, server.JobRequest{Label: "b", Runs: sweepRuns()})
	if av := waitDone(t, srv, a.ID); av.State != server.StateDone {
		t.Fatalf("job a: state %s (%s)", av.State, av.Error)
	}
	if bv := waitDone(t, srv, b.ID); bv.State != server.StateDone {
		t.Fatalf("job b: state %s (%s)", bv.State, bv.Error)
	}

	specs, err := hydee.Experiments(sweepRuns())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := hydee.RunExperiments(context.Background(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}

	_, gotA := rawSummaries(t, ts, a.ID)
	_, gotB := rawSummaries(t, ts, b.ID)
	if !bytes.Equal(gotA, want) {
		t.Errorf("job a summaries differ from serial sweep:\nhttp:   %s\nserial: %s", gotA, want)
	}
	if !bytes.Equal(gotB, want) {
		t.Errorf("job b summaries differ from serial sweep:\nhttp:   %s\nserial: %s", gotB, want)
	}

	// The concurrent jobs also wrote disjoint per-run event files.
	for _, v := range []server.JobView{a, b} {
		entries, err := os.ReadDir(v.EventDir)
		if err != nil {
			t.Fatalf("job %d event dir: %v", v.ID, err)
		}
		if len(entries) != len(sweepRuns()) {
			t.Errorf("job %d: %d event files, want %d", v.ID, len(entries), len(sweepRuns()))
		}
	}
	if a.EventDir == b.EventDir {
		t.Errorf("jobs share an event dir: %s", a.EventDir)
	}
}

// TestCancelRunningJob checks DELETE semantics through the direct API:
// cancellation of a mid-sweep job lands within 100ms and the service
// winds down without leaking goroutines.
func TestCancelRunningJob(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := server.New(server.Config{EventDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	runs := make([]hydee.SweepSpec, 64)
	for i := range runs {
		runs[i] = hydee.SweepSpec{App: "cg", NP: 16, Iters: 50, Proto: "native"}
	}
	view, err := srv.Submit(server.JobRequest{Runs: runs, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Gate on the first lifecycle event so the engines are demonstrably
	// mid-run when the cancel arrives.
	events, cancelSub, err := srv.Subscribe(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-events:
	case <-time.After(30 * time.Second):
		t.Fatal("no event from the running job")
	}
	cancelSub()

	start := time.Now()
	if _, err := srv.Cancel(view.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, srv, view.ID)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("cancellation took %v, want < 100ms", elapsed)
	}
	if final.State != server.StateCanceled {
		t.Errorf("state %s, want canceled (err %q)", final.State, final.Error)
	}
	// Cancel is idempotent on a finished job.
	if v, err := srv.Cancel(view.ID); err != nil || v.State != server.StateCanceled {
		t.Errorf("re-cancel: state %s, err %v", v.State, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Goroutines settle back to the baseline (small slack for the test
	// runtime's own background goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEventStreamSSE reads a job's event stream over HTTP: replayed from
// the start even when the subscription arrives after the job finished,
// framed as `lifecycle` events carrying the JSONL wire records, and
// terminated by exactly one `summary` event with the final view.
func TestEventStreamSSE(t *testing.T) {
	srv := newTestServer(t, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	view := submitHTTP(t, ts, server.JobRequest{Runs: []hydee.SweepSpec{
		{App: "cg", NP: 8, Iters: 2, Proto: "native"},
		{App: "cg", NP: 8, Iters: 2, Proto: "coord", CheckpointEvery: 1},
	}})
	waitDone(t, srv, view.ID) // subscribe late: replay must still deliver everything

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/events", ts.URL, view.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var (
		event     string
		lifecycle int
		kinds     = map[string]int{}
		summary   *server.JobView
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "lifecycle":
				lifecycle++
				var rec struct {
					Kind string `json:"kind"`
				}
				if err := json.Unmarshal([]byte(data), &rec); err != nil {
					t.Fatalf("bad lifecycle data %q: %v", data, err)
				}
				kinds[rec.Kind]++
			case "summary":
				if summary != nil {
					t.Fatal("second summary event")
				}
				summary = new(server.JobView)
				if err := json.Unmarshal([]byte(data), summary); err != nil {
					t.Fatalf("bad summary data %q: %v", data, err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lifecycle == 0 || kinds["run-start"] != 2 || kinds["run-complete"] != 2 {
		t.Errorf("lifecycle events: %d total, kinds %v", lifecycle, kinds)
	}
	if summary == nil {
		t.Fatal("stream ended without a summary event")
	}
	if summary.State != server.StateDone || len(summary.Summaries) != 2 {
		t.Errorf("summary: state %s, %d summaries", summary.State, len(summary.Summaries))
	}
}

// TestQueueBackpressureAndErrors drives the 503/400/404 paths: a full
// queue rejects rather than buffers, a bad spec is rejected at submit
// with the resolution error, unknown job ids 404.
func TestQueueBackpressureAndErrors(t *testing.T) {
	srv := newTestServer(t, server.Config{Queue: 1, Concurrency: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	long := make([]hydee.SweepSpec, 32)
	for i := range long {
		long[i] = hydee.SweepSpec{App: "cg", NP: 16, Iters: 50, Proto: "native"}
	}
	a := submitHTTP(t, ts, server.JobRequest{Runs: long, Parallelism: 1})
	// Wait until the worker picked job a up, freeing the queue slot.
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := srv.Job(a.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == server.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d never started", a.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	b := submitHTTP(t, ts, server.JobRequest{Runs: long, Parallelism: 1}) // fills the queue

	body, _ := json.Marshal(server.JobRequest{Runs: long})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("over-full submit: status %d, want 503", resp.StatusCode)
	}

	// A spec with an unknown protocol is rejected before taking a slot.
	bad, _ := json.Marshal(server.JobRequest{Runs: []hydee.SweepSpec{{App: "cg", NP: 8, Proto: "bogus"}}})
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(apiErr.Error, "bogus") {
		t.Errorf("bad spec: status %d, error %q", resp.StatusCode, apiErr.Error)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/9999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}

	// Unblock the drain: cancel both jobs over HTTP.
	for _, id := range []int{a.ID, b.ID} {
		req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("cancel %d: status %d", id, resp.StatusCode)
		}
	}
	for _, id := range []int{a.ID, b.ID} {
		if v := waitDone(t, srv, id); v.State != server.StateCanceled {
			t.Errorf("job %d: state %s, want canceled", id, v.State)
		}
	}
}

// TestGracefulClose: Close drains queued work, then refuses submissions.
func TestGracefulClose(t *testing.T) {
	srv, err := server.New(server.Config{EventDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	view, err := srv.Submit(server.JobRequest{Runs: []hydee.SweepSpec{
		{App: "cg", NP: 8, Iters: 2, Proto: "native"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := srv.Job(view.ID); err != nil || v.State != server.StateDone {
		t.Errorf("after close: state %s, err %v — queued work must drain, not drop", v.State, err)
	}
	if _, err := srv.Submit(server.JobRequest{Runs: []hydee.SweepSpec{{App: "cg", NP: 8, Proto: "native"}}}); !errors.Is(err, server.ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
}

// TestRegistryEndpoint spot-checks the discoverable backend names.
func TestRegistryEndpoint(t *testing.T) {
	srv := newTestServer(t, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"kernels":   "cg",
		"protocols": "hydee",
		"models":    "myrinet10g",
		"stores":    "sharded",
		"exporters": "jsonl",
	}
	for section, name := range want {
		found := false
		for _, n := range reg[section] {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("registry %s misses %q: %v", section, name, reg[section])
		}
	}
}
