// Package server turns the hydee experiment harness into a long-lived
// sweep service: jobs of SweepSpec runs are queued, executed over
// hydee.RunExperiments with bounded concurrency, cancelable per job, and
// observable live through a replaying event stream. Command hydee-serve
// exposes it over HTTP; the package itself is transport-free so tests and
// embedders drive it directly.
//
// Determinism survives the network hop: a job's summaries are produced by
// the same virtual-time engine as the CLI sweeps, so submitting a sweep
// over HTTP yields summaries byte-identical to running it serially in
// process — concurrency of the service changes wall-clock only.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hydee"
)

// Config sizes the service. The zero value is usable: a small queue, one
// job at a time, per-job parallelism one-per-CPU, events under a temp dir.
type Config struct {
	// Queue bounds the number of jobs waiting to run; submissions beyond
	// it are rejected with ErrQueueFull (backpressure, not buffering).
	// 0 means 16.
	Queue int
	// Concurrency is the number of jobs running at once. 0 means 1 —
	// the byte-reproducibility default: jobs never contend on CPU.
	Concurrency int
	// Parallelism is the per-job RunAll worker count (0 = one per CPU).
	// A submission may override it per job.
	Parallelism int
	// EventDir is where each job's per-run event files land, one
	// subdirectory per job id. "" creates a temp dir.
	EventDir string
	// Exporter names the registered exporter driving each job's per-run
	// files. "" means "jsonl".
	Exporter string
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull rejects a submission when the job queue is at capacity.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrClosed rejects submissions after Close began.
	ErrClosed = errors.New("server: shutting down")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("server: no such job")
)

// JobState is the lifecycle phase of a job.
type JobState string

// The job lifecycle: Queued → Running → one of Done / Failed / Canceled.
// A queued job canceled before a worker picks it up goes straight to
// Canceled.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// JobRequest is a submission: a batch of runs executed as one job.
type JobRequest struct {
	// Label is a free-form client tag echoed back in views.
	Label string `json:"label,omitempty"`
	// Runs are the sweep's experiment specs; at least one.
	Runs []hydee.SweepSpec `json:"runs"`
	// Parallelism overrides the server's per-job RunAll worker count
	// for this job (0 = server default).
	Parallelism int `json:"parallelism,omitempty"`
}

// JobView is the externally visible state of a job — what GET /v1/jobs/{id}
// returns and what the SSE stream's terminal summary event carries.
type JobView struct {
	ID    int      `json:"id"`
	Label string   `json:"label,omitempty"`
	State JobState `json:"state"`
	Runs  int      `json:"runs"`
	// Summaries are the per-run outcomes, in submission order; present
	// once the job is done.
	Summaries []*hydee.ExperimentSummary `json:"summaries,omitempty"`
	// Error is the failure cause of a failed or canceled job.
	Error string `json:"error,omitempty"`
	// EventDir is where the job's per-run event files are written.
	EventDir string `json:"event_dir,omitempty"`
}

type job struct {
	id    int
	label string
	specs []hydee.ExperimentSpec
	par   int

	fanout   *hydee.FanoutExporter
	eventDir string
	done     chan struct{}

	mu        sync.Mutex
	state     JobState
	cancel    context.CancelFunc // set when running
	summaries []*hydee.ExperimentSummary
	err       error
}

// Server runs jobs. Create with New, serve over HTTP via Handler, stop
// with Close.
type Server struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	workers    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[int]*job
	nextID int
	closed bool
}

// New starts a service with cfg's queue and worker pool. It creates the
// event directory eagerly so a bad path fails here, not at first
// submission.
func New(cfg Config) (*Server, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Exporter == "" {
		cfg.Exporter = "jsonl"
	}
	if _, err := hydee.ExporterByName(cfg.Exporter); err != nil {
		return nil, err
	}
	if cfg.EventDir == "" {
		dir, err := os.MkdirTemp("", "hydee-serve-*")
		if err != nil {
			return nil, fmt.Errorf("server: event dir: %w", err)
		}
		cfg.EventDir = dir
	} else if err := os.MkdirAll(cfg.EventDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: event dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.Queue),
		jobs:       make(map[int]*job),
		nextID:     1,
	}
	for i := 0; i < cfg.Concurrency; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// EventDir is the resolved root of per-job event directories.
func (s *Server) EventDir() string { return s.cfg.EventDir }

// Submit validates and enqueues a job, returning its view (StateQueued).
// Every run spec is resolved through the registries now — a bad name or
// failure grammar rejects the whole job before it takes a queue slot.
func (s *Server) Submit(req JobRequest) (JobView, error) {
	if len(req.Runs) == 0 {
		return JobView{}, errors.New("server: job needs at least one run")
	}
	specs, err := hydee.Experiments(req.Runs)
	if err != nil {
		return JobView{}, err
	}
	par := req.Parallelism
	if par <= 0 {
		par = s.cfg.Parallelism
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobView{}, ErrClosed
	}
	j := &job{
		id:     s.nextID,
		label:  req.Label,
		specs:  specs,
		par:    par,
		fanout: hydee.NewFanoutExporter(),
		done:   make(chan struct{}),
		state:  StateQueued,
	}
	j.eventDir = filepath.Join(s.cfg.EventDir, fmt.Sprintf("job-%d", j.id))
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		return JobView{}, ErrQueueFull
	}
	s.nextID++
	s.jobs[j.id] = j
	s.mu.Unlock()
	return j.view(), nil
}

// Job returns the view of one job.
func (s *Server) Job(id int) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return j.view(), nil
}

// Jobs lists every job's view, oldest first.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	s.mu.Unlock()
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	return views
}

// Cancel stops a job: a running job's context is canceled (its engine
// runs abort at the next virtual-time step), a queued job goes straight
// to Canceled and is skipped by the workers. Canceling a finished or
// already-canceled job is a no-op. The job's final state is reported by
// its view once the cancellation lands.
func (s *Server) Cancel(id int) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = context.Canceled
		j.mu.Unlock()
		// Never ran: release the stream subscribers ourselves.
		_ = j.fanout.Close()
		close(j.done)
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
	default:
		j.mu.Unlock()
	}
	return j.view(), nil
}

// Subscribe taps a job's live event stream, replayed from the start; the
// channel closes once the job is finished and the replay drained. Cancel
// the returned function to detach early.
func (s *Server) Subscribe(id int) (<-chan hydee.RunEvent, func(), error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	ch, cancel := j.fanout.Subscribe()
	return ch, cancel, nil
}

// Done reports a channel closed once the job reached a terminal state.
func (s *Server) Done(id int) (<-chan struct{}, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return j.done, nil
}

// Close drains the service: no new submissions, queued and running jobs
// finish, workers exit. If ctx expires first the base context is
// canceled — running engines abort at their next virtual-time step and
// their jobs finish as Canceled — and Close waits for the workers to
// return. Close is idempotent.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job: per-job context under the server's base context,
// events fanned out to both the per-job run-dir files and the in-memory
// replay hub, summaries from the same deterministic engine the CLI uses.
func (s *Server) run(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()

	var (
		summaries []*hydee.ExperimentSummary
		runErr    error
	)
	mk, runErr := hydee.ExporterByName(s.cfg.Exporter) // validated in New
	if runErr == nil {
		var dirExp hydee.Exporter
		if dirExp, runErr = hydee.NewRunDirExporter(j.eventDir, mk); runErr == nil {
			obs := hydee.MultiObserver(dirExp, j.fanout)
			summaries, runErr = hydee.RunExperiments(hydee.ContextWithObserver(ctx, obs), j.specs, j.par)
			if cerr := dirExp.Close(); runErr == nil {
				runErr = cerr
			}
		}
	}
	j.mu.Lock()
	j.summaries = summaries
	j.err = runErr
	switch {
	case runErr == nil:
		j.state = StateDone
	case errors.Is(runErr, context.Canceled) || errors.Is(runErr, hydee.ErrCanceled):
		j.state = StateCanceled
	default:
		j.state = StateFailed
	}
	j.mu.Unlock()
	// Close the hub only after the terminal state is visible: a stream
	// subscriber that drains to the closed channel reads the final view.
	_ = j.fanout.Close()
	close(j.done)
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Label:     j.label,
		State:     j.state,
		Runs:      len(j.specs),
		Summaries: j.summaries,
		EventDir:  j.eventDir,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}
