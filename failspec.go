package hydee

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hydee/internal/failure"
	"hydee/internal/vtime"
)

// Flag-level failure-injection specs. The cmd binaries accept failures as
// compact strings ("vt:1.5ms@3", "ckpts:2@8,12") and validate them eagerly
// at startup with a typed *FailureSpecError listing the valid forms —
// mirroring the eager -store validation — instead of silently running
// failure-free on a typo.

// FailureSpecForms documents the accepted -fail-at spec grammar, for flag
// help strings and error messages.
const FailureSpecForms = `"vt:<duration>@<rank[,rank...]>" (fail at a virtual time, e.g. vt:1.5ms@3), ` +
	`"sends:<n>@<rank[,rank...]>" (after n application sends of the first rank), ` +
	`"ckpts:<n>@<rank[,rank...]>" (after n completed checkpoints); ` +
	`join several events with ";"`

// FailureSpecError reports a malformed failure spec, with the offending
// input and the accepted forms.
type FailureSpecError struct {
	Spec   string
	Reason string
}

// Error implements error.
func (e *FailureSpecError) Error() string {
	return fmt.Sprintf("hydee: invalid failure spec %q: %s (valid forms: %s)", e.Spec, e.Reason, FailureSpecForms)
}

func specErr(spec, format string, args ...any) error {
	return &FailureSpecError{Spec: spec, Reason: fmt.Sprintf(format, args...)}
}

// ParseFailureSpec parses a failure-injection flag value into schedule
// events. Each ";"-separated element is one (possibly multi-victim)
// concurrent failure in one of the forms documented by FailureSpecForms.
// The empty string parses to nil events (no injection). Victim-rank range
// checking against the run size happens later, at configuration time.
func ParseFailureSpec(spec string) ([]FailureEvent, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var events []FailureEvent
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, specErr(spec, "empty event")
		}
		kind, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, specErr(spec, "event %q has no trigger kind", part)
		}
		val, rankList, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, specErr(spec, "event %q names no victim ranks", part)
		}
		var when FailureTrigger
		switch strings.TrimSpace(kind) {
		case "vt":
			d, err := time.ParseDuration(strings.TrimSpace(val))
			if err != nil || d <= 0 {
				return nil, specErr(spec, "event %q: %q is not a positive duration", part, val)
			}
			when.AtVT = vtime.Time(d.Nanoseconds())
		case "sends":
			n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil || n <= 0 {
				return nil, specErr(spec, "event %q: %q is not a positive send count", part, val)
			}
			when.AfterSends = n
		case "ckpts":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil || n <= 0 {
				return nil, specErr(spec, "event %q: %q is not a positive checkpoint count", part, val)
			}
			when.AfterCheckpoints = n
		default:
			return nil, specErr(spec, "event %q: unknown trigger kind %q", part, kind)
		}
		var ranks []int
		for _, rs := range strings.Split(rankList, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(rs))
			if err != nil || r < 0 {
				return nil, specErr(spec, "event %q: %q is not a valid rank", part, rs)
			}
			ranks = append(ranks, r)
		}
		events = append(events, FailureEvent{Ranks: ranks, When: when})
	}
	return events, nil
}

// ValidateFailureEvents checks parsed events against a run size, so
// binaries can reject a bad spec before any sweep work starts.
func ValidateFailureEvents(events []FailureEvent, np int) error {
	if len(events) == 0 {
		return nil
	}
	return failure.NewSchedule(events...).Validate(np)
}
