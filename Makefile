GO ?= go

.PHONY: all build test test-short race determinism vet fmt-check check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Determinism gate: run the experiment-facing determinism regressions twice
# under the race detector — every makespan, recovery stat and sweep output
# must be byte-identical run-to-run (see DESIGN.md "Concurrency and
# determinism").
determinism:
	$(GO) test -race -count=2 -run 'Reproducible|ByteStable|SchedulingIndependent|AwaitTurn' ./internal/harness/ ./internal/transport/

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test
