GO ?= go

.PHONY: all build test test-short race vet fmt-check check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test
