GO ?= go
STATICCHECK ?= staticcheck
# Pinned so `make lint` reproduces across checkouts; CI installs exactly
# this version via `make staticcheck-install`. (A go.mod tool directive
# would be the cleaner pin, but the module deliberately has zero
# dependencies so fully offline checkouts still build — see DESIGN.md
# "Static analysis".)
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test test-short race determinism profile bench-json vet lint staticcheck-install fmt-check check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Determinism gate: run the experiment-facing determinism regressions twice
# under the race detector — every makespan, recovery stat and sweep output
# must be byte-identical run-to-run (see DESIGN.md "Concurrency and
# determinism"). Includes the virtual-time kill-fence configurations: a
# failure landing mid-checkpoint-wave under a storage bandwidth model,
# exact-tie kill stamps, two victims in one round, a failure during an
# in-progress recovery round, the blocked-scope-peer drain (the naive
# pre-kill drain deadlock regression), and the E6 store-fault sweep
# (shard kills ordered in virtual time during recovery; shared/sharded/
# ec/replica survival outcomes must be byte-identical run-to-run).
determinism:
	$(GO) test -race -count=2 -run 'Reproducible|ByteStable|SchedulingIndependent|AwaitTurn' ./internal/harness/ ./internal/transport/ ./internal/mpi/

# CPU profile of the np=1024 HydEE smoke workload — the first step of the
# "profile a 1024-rank run end-to-end" roadmap item. Leaves cpu.prof and
# the test binary hydee-mpi.test; inspect with
#   go tool pprof hydee-mpi.test cpu.prof
profile:
	$(GO) test -run 'TestHydEESmoke1024' -count=1 -cpuprofile cpu.prof -o hydee-smoke.test .
	@echo "profile written to cpu.prof; open with: go tool pprof hydee-smoke.test cpu.prof"

# Append one wall-clock performance point for the np=1024 smoke workload
# to BENCH_hydee.json (one JSON line per invocation — a throughput series
# over commits). Virtual-time fields in the line are deterministic; only
# wall_ms / events_per_sec measure the machine.
bench-json:
	$(GO) run ./cmd/hydee-bench -out BENCH_hydee.json

vet:
	$(GO) vet ./...

# Static analysis beyond vet: hydee's own determinism analyzers first
# (wallclock, maprange, lockdiscipline, selectorder — see DESIGN.md
# "Static analysis"), then staticcheck. hydee-lint builds from the
# standard library only, so the full determinism suite runs even on
# offline checkouts where x/tools-based linters cannot be installed;
# staticcheck is not vendored and degrades to a notice when absent,
# while CI installs the pinned version and gets the full run.
lint: vet
	$(GO) run ./cmd/hydee-lint ./...
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (make staticcheck-install for the pinned $(STATICCHECK_VERSION))"; \
	fi

# Install the exact staticcheck version `make lint` is pinned to.
staticcheck-install:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test
