package hydee

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
)

// Streaming observer exporters: Observer implementations that serialize
// lifecycle events to an external sink, for long sweeps where a debug log
// is too verbose and an in-process callback too ephemeral. Exporters are
// safe for concurrent use — within one run the runtime serializes
// observer calls, but a parallel sweep drives many runs into one exporter
// at once — and must be closed to flush.
//
// Built-ins ("jsonl", "metrics") are pre-registered; third parties plug
// in through RegisterExporter and select by name via ExporterByName.

// Exporter is an Observer bound to an output sink. Close flushes and
// finalizes the sink (it does not close the underlying writer).
type Exporter interface {
	Observer
	Close() error
}

// ExporterFactory builds an Exporter streaming to w — the common
// constructor signature RegisterExporter expects.
type ExporterFactory func(w io.Writer) Exporter

// jsonlEvent is the wire form of one lifecycle event. Virtual times are
// nanoseconds; optional fields are omitted when absent so a line stays
// one compact record.
type jsonlEvent struct {
	Kind  string `json:"kind"`
	Run   int64  `json:"run,omitempty"`
	VT    int64  `json:"vt"`
	Rank  int    `json:"rank"`
	Ranks []int  `json:"ranks,omitempty"`
	Round int    `json:"round"`
	Seq   int    `json:"seq,omitempty"`
	// Recovery-round outcome (recovery-end only).
	RolledBack int   `json:"rolled_back,omitempty"`
	Orphans    int   `json:"orphans,omitempty"`
	CtlMsgs    int   `json:"ctl_msgs,omitempty"`
	StartVT    int64 `json:"start_vt,omitempty"`
	// Err carries the cause of a run-abort.
	Err string `json:"err,omitempty"`
}

type jsonlExporter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLExporter streams every lifecycle event to w as one JSON object
// per line. The first write error is sticky and reported by Close.
func NewJSONLExporter(w io.Writer) Exporter {
	return &jsonlExporter{enc: json.NewEncoder(w)}
}

// OnEvent implements Observer.
func (x *jsonlExporter) OnEvent(ev RunEvent) {
	rec := jsonlEvent{
		Kind:  ev.Kind.String(),
		Run:   ev.Run,
		VT:    int64(ev.VT),
		Rank:  ev.Rank,
		Ranks: ev.Ranks,
		Round: ev.Round,
		Seq:   ev.Seq,
	}
	if s := ev.Stats; s != nil {
		rec.RolledBack = s.RolledBack
		rec.Orphans = s.Orphans
		rec.CtlMsgs = s.CtlMsgs
		rec.StartVT = int64(s.StartVT)
	}
	if ev.Err != nil {
		rec.Err = ev.Err.Error()
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.err != nil {
		return
	}
	if err := x.enc.Encode(&rec); err != nil {
		x.err = fmt.Errorf("hydee: jsonl exporter: %w", err)
	}
}

// Close implements Exporter.
func (x *jsonlExporter) Close() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.err
}

// MarshalRunEvent encodes one lifecycle event in the exporters' JSONL
// wire form (no trailing newline) — the same record NewJSONLExporter
// writes, exposed so network transports (the hydee-serve SSE stream) can
// frame events byte-compatibly with the files on disk.
func MarshalRunEvent(ev RunEvent) ([]byte, error) {
	rec := jsonlEvent{
		Kind:  ev.Kind.String(),
		Run:   ev.Run,
		VT:    int64(ev.VT),
		Rank:  ev.Rank,
		Ranks: ev.Ranks,
		Round: ev.Round,
		Seq:   ev.Seq,
	}
	if s := ev.Stats; s != nil {
		rec.RolledBack = s.RolledBack
		rec.Orphans = s.Orphans
		rec.CtlMsgs = s.CtlMsgs
		rec.StartVT = int64(s.StartVT)
	}
	if ev.Err != nil {
		rec.Err = ev.Err.Error()
	}
	return json.Marshal(&rec)
}

// FanoutExporter retains every observed event and replays them to any
// number of subscribers, each from the start of the stream — the
// in-memory hub behind live event tails (the hydee-serve SSE endpoint):
// a subscriber arriving mid-run still sees the whole history, and a slow
// subscriber never blocks the runs driving OnEvent.
type FanoutExporter struct {
	mu     sync.Mutex
	events []RunEvent
	subs   map[*fanoutSub]struct{}
	closed bool
}

type fanoutSub struct {
	notify chan struct{}
	stop   chan struct{}
	once   sync.Once
}

// NewFanoutExporter returns an empty hub. Close it once the runs feeding
// it are done so subscribers' channels terminate.
func NewFanoutExporter() *FanoutExporter {
	return &FanoutExporter{subs: make(map[*fanoutSub]struct{})}
}

// OnEvent implements Observer: the event is appended to the retained log
// and subscribers are nudged. Never blocks on a slow subscriber.
func (x *FanoutExporter) OnEvent(ev RunEvent) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return
	}
	x.events = append(x.events, ev)
	//hydee:allow maprange(non-blocking nudge: each subscriber reads the shared log by cursor, wake order immaterial)
	for sub := range x.subs {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

// Events returns a snapshot copy of every event observed so far.
func (x *FanoutExporter) Events() []RunEvent {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]RunEvent(nil), x.events...)
}

// Subscribe returns a channel replaying the stream from its start and
// then following it live, plus a cancel function. The channel closes when
// the hub is closed and the replay has drained, or when cancel is called;
// cancel is idempotent and safe after the channel closed.
func (x *FanoutExporter) Subscribe() (<-chan RunEvent, func()) {
	sub := &fanoutSub{
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	cancel := func() { sub.once.Do(func() { close(sub.stop) }) }
	x.mu.Lock()
	if !x.closed {
		x.subs[sub] = struct{}{}
	}
	x.mu.Unlock()

	out := make(chan RunEvent)
	go func() {
		defer close(out)
		next := 0
		for {
			x.mu.Lock()
			var (
				ev     RunEvent
				have   bool
				closed = x.closed
			)
			if next < len(x.events) {
				ev, have = x.events[next], true
				next++
			}
			x.mu.Unlock()
			if have {
				// Subscriber plumbing is host-plane: cancellation racing a
				// delivery only decides where this subscriber's replay cuts
				// off, never what the log contains.
				//hydee:allow selectorder(host-plane subscriber stream; cancel-vs-deliver race only truncates the replay)
				select {
				case out <- ev:
					continue
				case <-sub.stop:
					x.drop(sub)
					return
				}
			}
			if closed {
				x.drop(sub)
				return
			}
			//hydee:allow selectorder(host-plane subscriber stream; wake-vs-cancel order does not change the log)
			select {
			case <-sub.notify:
			case <-sub.stop:
				x.drop(sub)
				return
			}
		}
	}()
	return out, cancel
}

func (x *FanoutExporter) drop(sub *fanoutSub) {
	x.mu.Lock()
	delete(x.subs, sub)
	x.mu.Unlock()
}

// Close implements Exporter: no further events are accepted and every
// subscriber's channel closes once its replay drains. The retained log
// stays readable through Events and late Subscribe calls (which replay
// the full history and then close).
func (x *FanoutExporter) Close() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil
	}
	x.closed = true
	//hydee:allow maprange(non-blocking nudge: each subscriber reads the shared log by cursor, wake order immaterial)
	for sub := range x.subs {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
	return nil
}

// RunMetrics is the summary a metrics exporter emits on Close: aggregate
// counts over every run it observed.
type RunMetrics struct {
	Runs        int `json:"runs"`
	Aborted     int `json:"aborted"`
	Checkpoints int `json:"checkpoints"`
	Failures    int `json:"failures"`
	Recoveries  int `json:"recoveries"`
	RolledBack  int `json:"rolled_back_ranks"`
	// MaxMakespanVT / SumMakespanVT aggregate completed runs' makespans
	// in virtual nanoseconds.
	MaxMakespanVT int64 `json:"max_makespan_vt"`
	SumMakespanVT int64 `json:"sum_makespan_vt"`
}

type metricsExporter struct {
	mu sync.Mutex
	w  io.Writer
	m  RunMetrics
}

// NewMetricsExporter accumulates run-level counters (runs, checkpoints,
// failures, recovery rounds, makespans) across every observed run and
// writes one JSON summary line to w on Close — the cheap end of the
// exporter spectrum for very long sweeps.
func NewMetricsExporter(w io.Writer) Exporter {
	return &metricsExporter{w: w}
}

// OnEvent implements Observer.
func (x *metricsExporter) OnEvent(ev RunEvent) {
	x.mu.Lock()
	defer x.mu.Unlock()
	switch ev.Kind {
	case EvRunStart:
		x.m.Runs++
	case EvRunAbort:
		x.m.Aborted++
	case EvCheckpoint:
		x.m.Checkpoints++
	case EvFailure:
		x.m.Failures++
	case EvRecoveryEnd:
		x.m.Recoveries++
		if ev.Stats != nil {
			x.m.RolledBack += ev.Stats.RolledBack
		}
	case EvRunComplete:
		vt := int64(ev.VT)
		x.m.SumMakespanVT += vt
		if vt > x.m.MaxMakespanVT {
			x.m.MaxMakespanVT = vt
		}
	}
}

// Close implements Exporter: it writes the summary.
func (x *metricsExporter) Close() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if err := json.NewEncoder(x.w).Encode(&x.m); err != nil {
		return fmt.Errorf("hydee: metrics exporter: %w", err)
	}
	return nil
}

// runDirExporter fans events out to one inner exporter per observed run,
// each writing its own file — parallel sweep output split per run instead
// of fan-in interleaved.
type runDirExporter struct {
	dir string
	mk  ExporterFactory

	mu     sync.Mutex
	runs   map[int64]*runSink
	closed bool
	err    error
}

type runSink struct {
	f   *os.File
	exp Exporter
}

// NewRunDirExporter creates (if needed) dir and returns an exporter that
// writes every observed run's events to its own file run-<id>.jsonl,
// each driven by an inner exporter built by mk. Run ids are assigned in
// run-start order, so a serial sweep's files are numbered in spec order;
// a parallel sweep's files map to configurations via the events they
// contain. Close flushes and closes every per-run file.
func NewRunDirExporter(dir string, mk ExporterFactory) (Exporter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hydee: run-dir exporter: %w", err)
	}
	return &runDirExporter{dir: dir, mk: mk, runs: make(map[int64]*runSink)}, nil
}

// OnEvent implements Observer: the event is routed to its run's file,
// created on first sight of the run id. The shared lock covers only the
// routing table — concurrent runs' writes go to independent files through
// their own (internally synchronized) inner exporters, so a parallel
// sweep's event streams don't contend on one lock.
func (x *runDirExporter) OnEvent(ev RunEvent) {
	x.mu.Lock()
	if x.err != nil || x.closed {
		x.mu.Unlock()
		return
	}
	sink, ok := x.runs[ev.Run]
	if !ok {
		f, err := os.Create(filepath.Join(x.dir, fmt.Sprintf("run-%05d.jsonl", ev.Run)))
		if err != nil {
			x.err = fmt.Errorf("hydee: run-dir exporter: %w", err)
			x.mu.Unlock()
			return
		}
		sink = &runSink{f: f, exp: x.mk(f)}
		x.runs[ev.Run] = sink
	}
	x.mu.Unlock()
	sink.exp.OnEvent(ev)
}

// Close implements Exporter: every per-run exporter is closed and its
// file flushed; the first error wins. Events arriving after Close are
// dropped — recreating a run's file would truncate what was written.
func (x *runDirExporter) Close() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.closed = true
	err := x.err
	// Sorted run order so "first error wins" picks the same error on
	// every run, not whichever sink map iteration reached first.
	for _, run := range slices.Sorted(maps.Keys(x.runs)) {
		sink := x.runs[run]
		if e := sink.exp.Close(); e != nil && err == nil {
			err = e
		}
		if e := sink.f.Close(); e != nil && err == nil {
			err = fmt.Errorf("hydee: run-dir exporter: %w", e)
		}
	}
	x.runs = make(map[int64]*runSink)
	return err
}

// StreamEvents wires the named exporter to path and returns a context
// carrying it as the ambient observer: a path ending in a separator, or
// naming an existing directory, gets one file per run (StreamEventsToDir);
// anything else is a single fan-in file (StreamEventsToFile). This is the
// wiring behind the cmd binaries' -events flags.
func StreamEvents(ctx context.Context, exporterName, path string) (context.Context, func() error, error) {
	if strings.HasSuffix(path, string(os.PathSeparator)) || strings.HasSuffix(path, "/") {
		return StreamEventsToDir(ctx, exporterName, path)
	}
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		return StreamEventsToDir(ctx, exporterName, path)
	}
	return StreamEventsToFile(ctx, exporterName, path)
}

// StreamEventsToDir creates dir, builds one named registered exporter per
// run over its own run-<id>.jsonl file, and returns a context that
// streams every run's lifecycle events to it, so a parallel sweep's
// output is dissectable per run. The returned function closes all per-run
// files; call it once the sweep is done.
func StreamEventsToDir(ctx context.Context, exporterName, dir string) (context.Context, func() error, error) {
	mk, err := ExporterByName(exporterName)
	if err != nil {
		return ctx, nil, err
	}
	exp, err := NewRunDirExporter(dir, mk)
	if err != nil {
		return ctx, nil, err
	}
	return ContextWithObserver(ctx, exp), exp.Close, nil
}

// StreamEventsToFile creates path, builds the named registered exporter
// over it, and returns a context that streams every run's lifecycle
// events to it — the one-call wiring behind the cmd binaries' -events
// flags. The returned function closes the exporter and the file; call it
// once the sweep is done.
func StreamEventsToFile(ctx context.Context, exporterName, path string) (context.Context, func() error, error) {
	mk, err := ExporterByName(exporterName)
	if err != nil {
		return ctx, nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return ctx, nil, fmt.Errorf("hydee: event stream: %w", err)
	}
	exp := mk(f)
	closeFn := func() error {
		expErr := exp.Close()
		if err := f.Close(); err != nil && expErr == nil {
			expErr = fmt.Errorf("hydee: event stream: %w", err)
		}
		return expErr
	}
	return ContextWithObserver(ctx, exp), closeFn, nil
}
