package hydee_test

// End-to-end acceptance for the extension surface: a third-party
// protocol, store and exporter — implemented outside the root package —
// are registered once and then driven through a failure-and-recovery
// run purely by name, the way an embedding application or a cmd
// binary's flags would.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"

	"hydee"
)

// auditProtocol is a third-party protocol: HydEE under a different name
// (delegation is the minimal protocol wrapper shape).
type auditProtocol struct{ hydee.Protocol }

func (auditProtocol) Name() string { return "audit-hydee" }

// countingExporter is a third-party exporter tallying events per kind.
type countingExporter struct {
	mu     sync.Mutex
	counts map[hydee.RunEventKind]int
	closed bool
}

func newCountingExporter(io.Writer) *countingExporter {
	return &countingExporter{counts: make(map[hydee.RunEventKind]int)}
}

func (x *countingExporter) OnEvent(ev hydee.RunEvent) {
	x.mu.Lock()
	x.counts[ev.Kind]++
	x.mu.Unlock()
}

func (x *countingExporter) Close() error {
	x.mu.Lock()
	x.closed = true
	x.mu.Unlock()
	return nil
}

func TestThirdPartyExtensionsByName(t *testing.T) {
	var stores []*trackingStore
	var exporters []*countingExporter
	mustRegister := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustRegister(hydee.RegisterProtocol("audit-hydee", func() hydee.Protocol {
		return auditProtocol{hydee.HydEE()}
	}))
	mustRegister(hydee.RegisterStore("audit-sharded", func(o hydee.StoreOptions) (hydee.Store, error) {
		backend, err := hydee.StoreByName("sharded", o)
		if err != nil {
			return nil, err
		}
		st := &trackingStore{Store: backend}
		stores = append(stores, st)
		return st, nil
	}))
	mustRegister(hydee.RegisterExporter("audit-count", func(w io.Writer) hydee.Exporter {
		x := newCountingExporter(w)
		exporters = append(exporters, x)
		return x
	}))

	// Everything below resolves by name only.
	p, err := hydee.ProtocolByName("AUDIT-HYDEE") // case-insensitive
	if err != nil || p.Name() != "audit-hydee" {
		t.Fatalf("ProtocolByName: %v (%v)", p, err)
	}
	mkExp, err := hydee.ExporterByName("audit-count")
	if err != nil {
		t.Fatal(err)
	}
	exp := mkExp(&bytes.Buffer{})

	eng, err := hydee.New(failingEngineOpts(
		hydee.WithProtocolName("audit-hydee"),
		hydee.WithStoreName("audit-sharded", hydee.StoreOptions{Shards: 2, WriteBPS: 1e9, ReadBPS: 1e9}),
		hydee.WithObserver(exp),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), hydee.StencilProgram(8, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	if len(res.Rounds) != 1 {
		t.Errorf("rounds = %+v, want 1 (third-party protocol must still recover)", res.Rounds)
	}
	if len(stores) != 1 || stores[0].saves.Load() == 0 || stores[0].loads.Load() == 0 {
		t.Errorf("third-party store not exercised: %d stores", len(stores))
	}
	if len(exporters) != 1 {
		t.Fatalf("exporter factory called %d times, want 1", len(exporters))
	}
	c := exporters[0]
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed || c.counts[hydee.EvRunComplete] != 1 || c.counts[hydee.EvRecoveryEnd] != 1 {
		t.Errorf("third-party exporter lifecycle: closed=%v counts=%v", c.closed, c.counts)
	}

	// The registered names show up in the listings the flag help prints.
	if !contains(hydee.ProtocolNames(), "audit-hydee") ||
		!contains(hydee.StoreNames(), "audit-sharded") ||
		!contains(hydee.ExporterNames(), "audit-count") {
		t.Errorf("registered names missing from listings: %v / %v / %v",
			hydee.ProtocolNames(), hydee.StoreNames(), hydee.ExporterNames())
	}
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if strings.EqualFold(n, want) {
			return true
		}
	}
	return false
}

// TestJSONLExporterSelectedByName closes the acceptance loop for the
// JSONL exporter specifically: resolved via the registry, driven by a
// run, and parseable line-by-line.
func TestJSONLExporterSelectedByName(t *testing.T) {
	mk, err := hydee.ExporterByName("jsonl")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	exp := mk(&buf)
	runWithExporter(t, exp)
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		lines++
	}
	if lines < 4 {
		t.Errorf("only %d event lines", lines)
	}
}
