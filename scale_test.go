package hydee_test

// First step of the ROADMAP "scale the sweep executor" item: a 1024-rank
// HydEE smoke workload (the supervisor loop's single-event-channel
// design is the suspected bottleneck at this scale; the matching
// micro-benchmark lives in internal/mpi). Skipped under -short.

import (
	"context"
	"testing"

	"hydee"
)

// TestHydEESmoke1024 runs HydEE at np=1024 (32 clusters of 32) through a
// checkpoint, a failure and a recovery round, and checks the protocol's
// containment claim holds at scale: exactly one cluster rolls back.
func TestHydEESmoke1024(t *testing.T) {
	if testing.Short() {
		t.Skip("np=1024 smoke workload skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("np=1024 smoke workload skipped under the race detector (~25x slower, no added coverage)")
	}
	const np, clusterSize = 1024, 32
	assign := make([]int, np)
	for r := range assign {
		assign[r] = r / clusterSize
	}
	eng, err := hydee.New(
		hydee.WithTopology(hydee.NewTopology(assign)),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithCheckpointEvery(2),
		hydee.WithFailureEvents(hydee.FailureEvent{
			Ranks: []int{np / 2}, When: hydee.FailureTrigger{AfterCheckpoints: 1},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), hydee.StencilProgram(4, 256))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %+v, want exactly 1", res.Rounds)
	}
	if rb := res.Rounds[0].RolledBack; rb != clusterSize {
		t.Errorf("rolled back %d ranks, want the failed cluster only (%d): containment broke at scale", rb, clusterSize)
	}
	if got := len(res.Results); got != np {
		t.Errorf("%d rank results, want %d", got, np)
	}
	if res.Totals.Checkpoints < int64(np) {
		t.Errorf("only %d checkpoints at np=%d; schedule did not fire", res.Totals.Checkpoints, np)
	}
}
