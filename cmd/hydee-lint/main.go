// hydee-lint runs hydee's determinism analyzers (see internal/lint) over
// Go package patterns:
//
//	go run ./cmd/hydee-lint ./...
//
// It is the compile-time half of the determinism story: `make
// determinism` proves one schedule reproduces byte-identically, the
// analyzers prove whole classes of nondeterminism (wall-clock reads,
// unsorted map fan-out, lock-discipline slips, racy selects) are absent
// from the virtual-time plane regardless of schedule.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. The tool
// builds with the standard library only — offline checkouts run the
// full suite (unlike staticcheck, which `make lint` skips with a
// notice when the binary is absent).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hydee/internal/lint"
	"hydee/internal/lint/analysis"
	"hydee/internal/lint/load"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hydee-lint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydee-lint:", err)
		os.Exit(2)
	}

	type finding struct {
		file      string
		line, col int
		analyzer  string
		message   string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range lint.Analyzers() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{p.Filename, p.Line, p.Column, d.Category, d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "hydee-lint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.file, f.line, f.col, f.analyzer, f.message)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
