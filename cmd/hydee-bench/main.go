// Command hydee-bench runs the np=1024 smoke workload (32 clusters of 32,
// a checkpoint wave, one failure, one recovery round — the same shape as
// TestHydEESmoke1024) as a wall-clock performance point and appends one
// JSON line to -out:
//
//	{"ts":"...","np":1024,"clusters":32,"events":...,"wall_ms":...,
//	 "events_per_sec":...,"makespan_vt_ns":...,"rounds":1,"rolled_back":32}
//
// The file accumulates one line per invocation, so regressions in the
// engine's throughput show up as a series over commits (`make bench-json`
// appends to BENCH_hydee.json). The workload is virtual-time
// deterministic — makespan_vt_ns and rolled_back must never change for a
// given shape; only wall_ms and events_per_sec measure the machine.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"hydee"
)

type point struct {
	TS           string  `json:"ts"`
	GoVersion    string  `json:"go"`
	NP           int     `json:"np"`
	Clusters     int     `json:"clusters"`
	Iters        int     `json:"iters"`
	Events       int64   `json:"events"`
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	MakespanVT   int64   `json:"makespan_vt_ns"`
	Rounds       int     `json:"rounds"`
	RolledBack   int     `json:"rolled_back"`
}

func main() {
	np := flag.Int("np", 1024, "number of ranks")
	clusterSize := flag.Int("cluster-size", 32, "ranks per cluster")
	iters := flag.Int("iters", 4, "stencil timesteps")
	out := flag.String("out", "", "append the JSON point to this file (empty = stdout only)")
	flag.Parse()
	if *np <= 0 || *clusterSize <= 0 || *np%*clusterSize != 0 {
		log.Fatalf("hydee-bench: -np must be a positive multiple of -cluster-size (got %d, %d)", *np, *clusterSize)
	}

	assign := make([]int, *np)
	for r := range assign {
		assign[r] = r / *clusterSize
	}
	var events atomic.Int64
	eng, err := hydee.New(
		hydee.WithTopology(hydee.NewTopology(assign)),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithCheckpointEvery(2),
		hydee.WithFailureEvents(hydee.FailureEvent{
			Ranks: []int{*np / 2}, When: hydee.FailureTrigger{AfterCheckpoints: 1},
		}),
		hydee.WithObserver(hydee.ObserverFunc(func(hydee.RunEvent) { events.Add(1) })),
	)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := eng.Run(context.Background(), hydee.StencilProgram(*iters, 256))
	wall := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Rounds) != 1 || res.Rounds[0].RolledBack != *clusterSize {
		log.Fatalf("hydee-bench: workload drifted: rounds %+v, want 1 round rolling back %d ranks", res.Rounds, *clusterSize)
	}

	p := point{
		TS:           time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		NP:           *np,
		Clusters:     *np / *clusterSize,
		Iters:        *iters,
		Events:       events.Load(),
		WallMS:       float64(wall.Microseconds()) / 1e3,
		EventsPerSec: float64(events.Load()) / wall.Seconds(),
		MakespanVT:   int64(res.Makespan),
		Rounds:       len(res.Rounds),
		RolledBack:   res.Rounds[0].RolledBack,
	}
	line, err := json.Marshal(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(line))
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := fmt.Fprintln(f, string(line)); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
