// Command hydee-recover runs the failure-containment experiment (E4 in
// DESIGN.md): it injects a failure into a kernel under the coordinated
// baseline, full message logging, and HydEE, and reports how many ranks
// roll back, the recovery time, and the makespan cost — the quantitative
// backing for the paper's introduction claims (less rolled-back
// computation, faster recovery, freed resources). The kernel and network
// model are selected by name through the registries; Ctrl-C cancels.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strings"
	"syscall"

	"hydee"
	"hydee/internal/apps"
	"hydee/internal/graph"
	"hydee/internal/harness"
)

func main() {
	np := flag.Int("np", 64, "number of ranks")
	iters := flag.Int("iters", 10, "timesteps")
	app := flag.String("app", "cg", "kernel (bt,cg,ft,lu,mg,sp)")
	ckpt := flag.Int("ckpt", 3, "checkpoint every k iterations")
	failAfter := flag.Int("fail-after", 1, "inject the failure after this many checkpoints")
	net := flag.String("net", "myrinet10g", "network model: "+strings.Join(hydee.ModelNames(), ", "))
	flag.Parse()

	k, err := apps.Get(*app)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hydee.ModelByName(*net)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	cl, err := harness.ClusterApp(k, apps.Params{NP: *np, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d ranks: %d clusters, %.2f%% logged, %.2f%% expected rollback\n\n",
		*app, *np, cl.K, 100*cl.CutFrac, 100*cl.ExpRollback)

	rows, err := harness.ContainmentCtx(ctx, k, *np, *iters, *ckpt, cl.Assign, *failAfter, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hydee.FormatE4(rows))
	fmt.Println("every recovered execution was validated against its failure-free digests ✓")
}
