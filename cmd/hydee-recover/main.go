// Command hydee-recover runs the failure-containment experiment (E4 in
// DESIGN.md): it injects a failure into a kernel under the coordinated
// baseline, full message logging, and HydEE, and reports how many ranks
// roll back, the recovery time, and the makespan cost — the quantitative
// backing for the paper's introduction claims (less rolled-back
// computation, faster recovery, freed resources).
package main

import (
	"flag"
	"fmt"
	"log"

	"hydee"
	"hydee/internal/apps"
	"hydee/internal/graph"
	"hydee/internal/harness"
)

func main() {
	np := flag.Int("np", 64, "number of ranks")
	iters := flag.Int("iters", 10, "timesteps")
	app := flag.String("app", "cg", "kernel (bt,cg,ft,lu,mg,sp)")
	ckpt := flag.Int("ckpt", 3, "checkpoint every k iterations")
	failAfter := flag.Int("fail-after", 1, "inject the failure after this many checkpoints")
	flag.Parse()

	k, err := apps.Get(*app)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := harness.ClusterApp(k, apps.Params{NP: *np, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d ranks: %d clusters, %.2f%% logged, %.2f%% expected rollback\n\n",
		*app, *np, cl.K, 100*cl.CutFrac, 100*cl.ExpRollback)

	rows, err := harness.Containment(k, *np, *iters, *ckpt, cl.Assign, *failAfter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hydee.FormatE4(rows))
	fmt.Println("every recovered execution was validated against its failure-free digests ✓")
}
