// Command hydee-recover runs the failure-containment experiment (E4 in
// DESIGN.md): it injects a failure into a kernel under the coordinated
// baseline, full message logging, and HydEE, and reports how many ranks
// roll back, the recovery time, and the makespan cost — the quantitative
// backing for the paper's introduction claims (less rolled-back
// computation, faster recovery, freed resources). The kernel, network
// model and checkpoint store are selected by name through the hydee
// registries (-store sharded:4 places each cluster's checkpoints on its
// own storage shard); with a sharded store and -store-bps it also prints
// the E5-extension burst comparison. -events streams every run's
// lifecycle to a JSONL file. Ctrl-C cancels.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strings"
	"syscall"

	"hydee"
	"hydee/internal/apps"
	"hydee/internal/graph"
	"hydee/internal/harness"
)

func main() {
	np := flag.Int("np", 64, "number of ranks")
	iters := flag.Int("iters", 10, "timesteps")
	app := flag.String("app", "cg", "kernel (bt,cg,ft,lu,mg,sp)")
	ckpt := flag.Int("ckpt", 3, "checkpoint every k iterations")
	failAfter := flag.Int("fail-after", 1, "inject the failure after this many checkpoints")
	failAt := flag.String("fail-at", "", `inject the failure at a trigger spec instead of -fail-after: "vt:<duration>" (a virtual time — the kill is an ordered virtual-time event, so even a mid-checkpoint-wave landing is byte-reproducible), "sends:<n>" or "ckpts:<n>"`)
	net := flag.String("net", "myrinet10g", "network model: "+strings.Join(hydee.ModelNames(), ", "))
	var store hydee.StoreSpec
	store.Bind(flag.CommandLine)
	var stream hydee.EventStreamSpec
	stream.Bind(flag.CommandLine)
	flag.Parse()

	if *np <= 0 || *iters <= 0 || *ckpt <= 0 {
		log.Fatalf("hydee-recover: -np, -iters and -ckpt must be positive (got %d, %d, %d)", *np, *iters, *ckpt)
	}
	k, err := apps.Get(*app)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hydee.ModelByName(*net)
	if err != nil {
		log.Fatal(err)
	}
	// Failure flags are validated eagerly with a typed error listing the
	// valid forms, like the -store probe below — a typo must fail at
	// startup, not yield a silently failure-free sweep.
	failWhen := hydee.FailureTrigger{AfterCheckpoints: *failAfter}
	if *failAt != "" {
		// The E4 experiment fixes its victim at rank np/2, so -fail-at
		// takes only the trigger; a spec naming ranks would be silently
		// ignored and is rejected instead.
		if strings.Contains(*failAt, "@") {
			log.Fatalf("hydee-recover: -fail-at %q: the E4 victim is fixed at rank np/2; give only the trigger (e.g. vt:1.5ms), without @ranks", *failAt)
		}
		events, err := hydee.ParseFailureSpec(*failAt + "@0")
		if err != nil {
			log.Fatal(err)
		}
		if len(events) != 1 {
			log.Fatalf("hydee-recover: -fail-at wants exactly one trigger, got %d events", len(events))
		}
		failWhen = events[0].When
	}
	if err := failWhen.Validate(); err != nil {
		log.Fatalf("hydee-recover: %v (valid -fail-at forms: %s)", err, hydee.FailureSpecForms)
	}
	// Probe the registry now so an unknown or misconfigured store fails
	// before any sweep work, not inside the first run.
	if err := store.Probe(); err != nil {
		log.Fatal(err)
	}
	newStore := func(topo *hydee.Topology) hydee.Store {
		st, err := store.New(topo)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, closeEvents, err := stream.Wire(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeEvents(); err != nil {
			log.Print(err)
		}
	}()

	cl, err := harness.ClusterApp(k, apps.Params{NP: *np, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d ranks: %d clusters, %.2f%% logged, %.2f%% expected rollback (store %s)\n\n",
		*app, *np, cl.K, 100*cl.CutFrac, 100*cl.ExpRollback, store.Spec)

	rows, err := harness.ContainmentCtx(ctx, k, *np, *iters, *ckpt, cl.Assign, failWhen, model, newStore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hydee.FormatE4(rows))
	fmt.Println("every recovered execution was validated against its failure-free digests ✓")

	// The E5 burst comparison is about plain sharding; redundancy specs
	// (ec, replica) have their own shard-loss sweep (harness E6).
	if _, opts, _ := hydee.ParseStoreSpec(store.Spec); opts.Shards > 1 && opts.Parity == 0 && opts.Replicas == 0 && store.BPS > 0 {
		shards := opts.Shards
		burst, err := harness.CheckpointBurstSharded(ctx, k, *np, *iters, *ckpt, cl.Assign, store.BPS, shards, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nE5 extension — checkpoint I/O burst, shared vs staggered vs %d cluster-placed shards:\n", shards)
		fmt.Println(hydee.FormatE5(burst))
	}
}
