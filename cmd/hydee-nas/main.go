// Command hydee-nas regenerates Figure 6 of the paper: failure-free
// normalized execution time of the six NAS kernels under native MPICH2,
// full message logging, and HydEE with the clustering of Table I. The
// expected shape: native <= HydEE <= full logging everywhere, with HydEE
// overhead at most ~2% (the paper measures at most 1.25% on 256 ranks).
package main

import (
	"flag"
	"fmt"
	"log"

	"hydee"
)

func main() {
	np := flag.Int("np", 256, "number of ranks (256 reproduces the paper)")
	iters := flag.Int("iters", 3, "timesteps per kernel")
	traceIters := flag.Int("trace-iters", 2, "iterations used to trace the communication graphs")
	flag.Parse()

	clusterings, t1, err := hydee.Clusterings(*np, *traceIters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table I — application clustering on %d processes:\n", *np)
	fmt.Println(hydee.FormatTable1(t1))

	rows, err := hydee.Figure6(*np, *iters, clusterings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 6 — NAS failure-free performance on %d processes (normalized to native):\n", *np)
	fmt.Println(hydee.FormatFigure6(rows))

	worst := 0.0
	for _, r := range rows {
		if r.HydEEPct > worst {
			worst = r.HydEEPct
		}
	}
	fmt.Printf("maximum HydEE overhead: %.2f%% (paper: at most 1.25%% / 2%%)\n", worst)
}
