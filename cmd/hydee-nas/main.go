// Command hydee-nas regenerates Figure 6 of the paper: failure-free
// normalized execution time of the six NAS kernels under native MPICH2,
// a comparator protocol (full message logging by default), and HydEE with
// the clustering of Table I. The expected shape: native <= HydEE <= full
// logging everywhere, with HydEE overhead at most ~2% (the paper measures
// at most 1.25% on 256 ranks).
//
// The comparator protocol and network model are selected by name through
// the hydee registries, the independent runs of the sweep execute in
// parallel, and -events streams every run's lifecycle to a JSONL file.
// Ctrl-C cancels the sweep cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strings"
	"syscall"

	"hydee"
)

func main() {
	np := flag.Int("np", 256, "number of ranks (256 reproduces the paper)")
	iters := flag.Int("iters", 3, "timesteps per kernel")
	traceIters := flag.Int("trace-iters", 2, "iterations used to trace the communication graphs")
	proto := flag.String("proto", "mlog", "comparator protocol: "+strings.Join(hydee.ProtocolNames(), ", "))
	net := flag.String("net", "myrinet10g", "network model: "+strings.Join(hydee.ModelNames(), ", "))
	par := flag.Int("par", 0, "parallel runs in the sweep (0 = one per CPU)")
	var stream hydee.EventStreamSpec
	stream.Bind(flag.CommandLine)
	flag.Parse()

	if *np <= 0 || *iters <= 0 || *traceIters <= 0 {
		log.Fatalf("hydee-nas: -np, -iters and -trace-iters must be positive (got %d, %d, %d)", *np, *iters, *traceIters)
	}
	comparator, err := hydee.ExperimentProtoByName(*proto)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hydee.ModelByName(*net)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, closeEvents, err := stream.Wire(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeEvents(); err != nil {
			log.Print(err)
		}
	}()

	t1, err := hydee.Table1Ctx(ctx, *np, *traceIters, model, *par)
	if err != nil {
		log.Fatal(err)
	}
	clusterings := make(map[string][]int, len(t1))
	for _, r := range t1 {
		clusterings[r.App] = r.Assign
	}
	fmt.Printf("Table I — application clustering on %d processes (%s):\n", *np, model.Name())
	fmt.Println(hydee.FormatTable1(t1))

	rows, err := hydee.Figure6Ctx(ctx, *np, *iters, clusterings, model, comparator, *par)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 6 — NAS failure-free performance on %d processes (normalized to native, comparator %s):\n",
		*np, comparator)
	fmt.Println(hydee.FormatFigure6(rows))

	worst := 0.0
	for _, r := range rows {
		if r.HydEEPct > worst {
			worst = r.HydEEPct
		}
	}
	fmt.Printf("maximum HydEE overhead: %.2f%% (paper: at most 1.25%% / 2%%)\n", worst)
}
