// Command hydee-serve exposes the experiment harness as an HTTP sweep
// service: clients POST batches of runs as JSON (every backend — kernel,
// protocol, network model, checkpoint store, failure schedule — selected
// by registry name, the same compact forms the CLI flags take), poll or
// stream each job's lifecycle events live over SSE, and cancel jobs
// mid-run. Runs execute on the same deterministic virtual-time engine as
// the CLI, so a sweep submitted over HTTP produces summaries
// byte-identical to a serial in-process run.
//
//	hydee-serve -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{"runs":[{"app":"cg","np":64,"clusters":8,"ckpt":2,"fail_at":"ckpts:1@32"}]}'
//	curl -N localhost:8080/v1/jobs/1/events     # live SSE, replayed from the start
//	curl -s -X DELETE localhost:8080/v1/jobs/1  # cancel
//
// SIGINT/SIGTERM drains gracefully: no new submissions, running jobs
// finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"hydee/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 16, "job queue capacity (submissions beyond it get 503)")
	concurrency := flag.Int("concurrency", 1, "jobs running at once")
	par := flag.Int("par", 0, "per-job parallel runs (0 = one per CPU)")
	eventDir := flag.String("event-dir", "", "root for per-job event files (empty = temp dir)")
	exporter := flag.String("exporter", "jsonl", "exporter for per-job event files")
	drain := flag.Duration("drain", time.Minute, "shutdown grace for running jobs before their contexts are canceled")
	flag.Parse()

	srv, err := server.New(server.Config{
		Queue:       *queue,
		Concurrency: *concurrency,
		Parallelism: *par,
		EventDir:    *eventDir,
		Exporter:    *exporter,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("hydee-serve: listening on %s, events under %s", *addr, srv.EventDir())

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("hydee-serve: draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the job pool first so jobs settle and SSE streams terminate
	// with their summary events, then close the listener and connections.
	if err := srv.Close(drainCtx); err != nil {
		log.Printf("hydee-serve: drain cut short: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hydee-serve: shutdown: %v", err)
	}
	log.Print("hydee-serve: bye")
}
