// Command hydee-netpipe regenerates Figure 5 of the paper: a NetPIPE-style
// ping-pong sweep over the Myrinet 10G model comparing native MPICH2
// against HydEE between two processes of the same cluster (no logging) and
// of different clusters (with logging). The expected shape: degradation
// only for small messages, with peaks where the 16-byte piggyback pushes a
// message across a native latency plateau, and near-identical curves with
// and without logging (the log copy overlaps transmission).
//
// The network model is selected by name through the hydee registry, the
// three sweep configurations run concurrently, and -events streams every
// run's lifecycle to a JSONL file.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strings"
	"syscall"

	"hydee"
)

func main() {
	reps := flag.Int("reps", 10, "round trips per message size")
	net := flag.String("net", "myrinet10g", "network model: "+strings.Join(hydee.ModelNames(), ", "))
	var stream hydee.EventStreamSpec
	stream.Bind(flag.CommandLine)
	flag.Parse()

	if *reps <= 0 {
		log.Fatalf("hydee-netpipe: -reps must be positive (got %d)", *reps)
	}
	model, err := hydee.ModelByName(*net)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, closeEvents, err := stream.Wire(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeEvents(); err != nil {
			log.Print(err)
		}
	}()

	rows, err := hydee.Figure5Ctx(ctx, model, nil, *reps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 5 — %s ping-pong performance (reduction vs native MPICH2, %%):\n", model.Name())
	fmt.Println(hydee.FormatFigure5(rows))

	// Headline observations.
	var worstLat hydee.Fig5Row
	var large hydee.Fig5Row
	for _, r := range rows {
		if r.LatRedNoLogPct < worstLat.LatRedNoLogPct {
			worstLat = r
		}
		if r.Bytes >= 1<<20 && large.Bytes == 0 {
			large = r
		}
	}
	fmt.Printf("worst small-message latency degradation: %.1f%% at %d bytes (piggyback crosses a plateau)\n",
		worstLat.LatRedNoLogPct, worstLat.Bytes)
	fmt.Printf("at %d bytes: no-logging %.2f%%, with-logging %.2f%% (logging is free — overlapped memcpy)\n",
		large.Bytes, large.LatRedNoLogPct, large.LatRedLogPct)
}
