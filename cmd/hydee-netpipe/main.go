// Command hydee-netpipe regenerates Figure 5 of the paper: a NetPIPE-style
// ping-pong sweep over the Myrinet 10G model comparing native MPICH2
// against HydEE between two processes of the same cluster (no logging) and
// of different clusters (with logging). The expected shape: degradation
// only for small messages, with peaks where the 16-byte piggyback pushes a
// message across a native latency plateau, and near-identical curves with
// and without logging (the log copy overlaps transmission).
package main

import (
	"flag"
	"fmt"
	"log"

	"hydee"
)

func main() {
	reps := flag.Int("reps", 10, "round trips per message size")
	flag.Parse()

	rows, err := hydee.Figure5(nil, *reps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 5 — Myrinet 10G ping-pong performance (reduction vs native MPICH2, %):")
	fmt.Println(hydee.FormatFigure5(rows))

	// Headline observations.
	var worstLat hydee.Fig5Row
	var large hydee.Fig5Row
	for _, r := range rows {
		if r.LatRedNoLogPct < worstLat.LatRedNoLogPct {
			worstLat = r
		}
		if r.Bytes >= 1<<20 && large.Bytes == 0 {
			large = r
		}
	}
	fmt.Printf("worst small-message latency degradation: %.1f%% at %d bytes (piggyback crosses a plateau)\n",
		worstLat.LatRedNoLogPct, worstLat.Bytes)
	fmt.Printf("at %d bytes: no-logging %.2f%%, with-logging %.2f%% (logging is free — overlapped memcpy)\n",
		large.Bytes, large.LatRedNoLogPct, large.LatRedLogPct)
}
