// Command hydee-cluster runs the off-line process-clustering tool on one
// kernel or on all six, printing Table-I rows and, with -assign, the full
// cluster assignment usable in HydEE configurations. The network model is
// selected by name through the hydee registry, the six kernel traces run
// in parallel, and -events streams every trace's lifecycle to a JSONL
// file.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strings"
	"syscall"

	"hydee"
)

func main() {
	np := flag.Int("np", 256, "number of ranks")
	iters := flag.Int("iters", 2, "iterations to trace")
	app := flag.String("app", "", "kernel to cluster (bt,cg,ft,lu,mg,sp); empty = all")
	net := flag.String("net", "myrinet10g", "network model for the traces ("+strings.Join(hydee.ModelNames(), ", ")+"); clustering output is model-independent — rows derive from payload byte counts only")
	par := flag.Int("par", 0, "parallel traces (0 = one per CPU)")
	showAssign := flag.Bool("assign", false, "print the per-rank cluster assignment")
	var stream hydee.EventStreamSpec
	stream.Bind(flag.CommandLine)
	flag.Parse()

	if *np <= 0 || *iters <= 0 {
		log.Fatalf("hydee-cluster: -np and -iters must be positive (got %d, %d)", *np, *iters)
	}
	model, err := hydee.ModelByName(*net)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, closeEvents, err := stream.Wire(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeEvents(); err != nil {
			log.Print(err)
		}
	}()

	rows, err := hydee.Table1Ctx(ctx, *np, *iters, model, *par)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		if *app != "" && r.App != strings.ToLower(*app) {
			continue
		}
		fmt.Printf("%-4s clusters=%-3d rollback=%6.2f%%  logged=%.0f/%.0f GB (%.2f%%)\n",
			strings.ToUpper(r.App), r.K, r.RollbackPct, r.LoggedGB, r.TotalGB, r.LoggedPct)
		if *showAssign {
			fmt.Printf("  assign: %v\n", r.Assign)
		}
	}
}
