// Command hydee-cluster runs the off-line process-clustering tool on one
// kernel or on all six, printing Table-I rows and, with -assign, the full
// cluster assignment usable in HydEE configurations.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hydee"
)

func main() {
	np := flag.Int("np", 256, "number of ranks")
	iters := flag.Int("iters", 2, "iterations to trace")
	app := flag.String("app", "", "kernel to cluster (bt,cg,ft,lu,mg,sp); empty = all")
	showAssign := flag.Bool("assign", false, "print the per-rank cluster assignment")
	flag.Parse()

	rows, err := hydee.Table1(*np, *iters)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		if *app != "" && r.App != strings.ToLower(*app) {
			continue
		}
		fmt.Printf("%-4s clusters=%-3d rollback=%6.2f%%  logged=%.0f/%.0f GB (%.2f%%)\n",
			strings.ToUpper(r.App), r.K, r.RollbackPct, r.LoggedGB, r.TotalGB, r.LoggedPct)
		if *showAssign {
			fmt.Printf("  assign: %v\n", r.Assign)
		}
	}
}
