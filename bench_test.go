package hydee_test

// One benchmark per experiment in DESIGN.md's index (T1, F5, F6, E4, E5),
// plus ablations and micro-benchmarks of the hot protocol paths. The
// experiment benchmarks report the reproduced quantities via b.ReportMetric
// so `go test -bench` output doubles as an experiment record.

import (
	"testing"

	"hydee"
	"hydee/internal/apps"
	"hydee/internal/core"
	"hydee/internal/graph"
	"hydee/internal/harness"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/transport"
	"hydee/internal/vtime"
)

// BenchmarkTable1_Clustering regenerates Table I: trace the six kernels at
// 256 ranks and run the clustering tool.
func BenchmarkTable1_Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := hydee.Table1(256, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "ft" {
				b.ReportMetric(r.LoggedPct, "ft-logged-%")
			}
			if r.App == "cg" {
				b.ReportMetric(float64(r.K), "cg-clusters")
			}
		}
	}
}

// BenchmarkFigure5_NetPIPE regenerates Figure 5: the three ping-pong sweeps
// over the Myrinet 10G model.
func BenchmarkFigure5_NetPIPE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := hydee.Figure5(nil, 5)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			if r.LatRedNoLogPct < worst {
				worst = r.LatRedNoLogPct
			}
		}
		b.ReportMetric(-worst, "worst-degradation-%")
	}
}

// BenchmarkFigure6_NAS regenerates Figure 6: six kernels at 256 ranks under
// native / full logging / HydEE.
func BenchmarkFigure6_NAS(b *testing.B) {
	clusterings, _, err := hydee.Clusterings(256, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := hydee.Figure6(256, 3, clusterings)
		if err != nil {
			b.Fatal(err)
		}
		worstH, worstM := 0.0, 0.0
		for _, r := range rows {
			if r.HydEEPct > worstH {
				worstH = r.HydEEPct
			}
			if r.MLogPct > worstM {
				worstM = r.MLogPct
			}
		}
		b.ReportMetric(worstH, "hydee-max-ovh-%")
		b.ReportMetric(worstM, "mlog-max-ovh-%")
	}
}

// BenchmarkE4_Containment regenerates the failure-containment comparison on
// CG at 64 ranks.
func BenchmarkE4_Containment(b *testing.B) {
	k, err := apps.Get("cg")
	if err != nil {
		b.Fatal(err)
	}
	cl, err := harness.ClusterApp(k, apps.Params{NP: 64, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := harness.Containment(k, 64, 10, 3, cl.Assign, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Proto == "hydee" {
				b.ReportMetric(r.RolledBackPct, "hydee-rolledback-%")
			}
		}
	}
}

// BenchmarkE5_CheckpointBurst regenerates the I/O-burst comparison.
func BenchmarkE5_CheckpointBurst(b *testing.B) {
	k, err := apps.Get("bt")
	if err != nil {
		b.Fatal(err)
	}
	cl, err := harness.ClusterApp(k, apps.Params{NP: 16, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := harness.CheckpointBurst(k, 16, 8, 4, cl.Assign, 4e9)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Config == "hydee-staggered" {
				b.ReportMetric(r.MaxQueue.Seconds()*1e3, "staggered-queue-ms")
			}
		}
	}
}

// BenchmarkAblation_GC compares the peak sender-log occupancy with and
// without the garbage collection of §III-E (DESIGN.md ablation).
func BenchmarkAblation_GC(b *testing.B) {
	assign := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}
	run := func(disable bool) int64 {
		prot := core.New()
		if disable {
			prot = core.NewWithOptions(core.Options{Name: "hydee-nogc", DisableGC: true})
		}
		res, err := hydee.Run(hydee.Config{
			NP: 16, Topo: hydee.NewTopology(assign), Protocol: prot,
			Model: hydee.Myrinet10G(), CheckpointEvery: 2,
		}, hydee.StencilProgram(20, 64*1024))
		if err != nil {
			b.Fatal(err)
		}
		return res.Totals.LogPeakBytes
	}
	for i := 0; i < b.N; i++ {
		withGC := run(false)
		withoutGC := run(true)
		b.ReportMetric(float64(withGC)/1e6, "gc-peak-MB")
		b.ReportMetric(float64(withoutGC)/1e6, "nogc-peak-MB")
	}
}

// BenchmarkAblation_Piggyback measures the failure-free cost of the phase
// piggybacking alone (HydEE single cluster: no logging, only protocol data)
// against native, on a small-message-heavy workload.
func BenchmarkAblation_Piggyback(b *testing.B) {
	run := func(prot rollback.Protocol) float64 {
		res, err := hydee.Run(hydee.Config{
			NP: 16, Protocol: prot, Model: hydee.Myrinet10G(),
		}, hydee.StencilProgram(10, 256))
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Makespan)
	}
	for i := 0; i < b.N; i++ {
		nat := run(rollback.Native())
		hyd := run(core.New())
		b.ReportMetric((hyd/nat-1)*100, "piggyback-ovh-%")
	}
}

// BenchmarkAblation_SSDLogging evaluates the §V-C future-work design:
// logging through a bounded memory staging buffer drained asynchronously to
// a local device, at several device bandwidths, on the logging-heaviest
// kernel (FT). The overhead versus in-memory logging shows when the device
// becomes the bottleneck.
func BenchmarkAblation_SSDLogging(b *testing.B) {
	ft, err := apps.Get("ft")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ft.Make(apps.Params{NP: 16, Iters: 2})
	if err != nil {
		b.Fatal(err)
	}
	assign := []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1}
	run := func(drainBPS float64) float64 {
		opts := core.Options{}
		if drainBPS > 0 {
			opts = core.Options{Name: "hydee-ssd", LogDrainBPS: drainBPS, LogMemBudget: 8 << 20}
		}
		res, err := hydee.Run(hydee.Config{
			NP: 16, Topo: hydee.NewTopology(assign),
			Protocol: core.NewWithOptions(opts), Model: hydee.Myrinet10G(),
		}, prog)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Makespan)
	}
	for i := 0; i < b.N; i++ {
		mem := run(0)
		fast := run(2e9)   // NVMe-class device
		slow := run(0.1e9) // slow SATA-class device
		b.ReportMetric((fast/mem-1)*100, "nvme-ovh-%")
		b.ReportMetric((slow/mem-1)*100, "sata-ovh-%")
	}
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkMicro_TransportSendRecv measures the raw substrate throughput.
func BenchmarkMicro_TransportSendRecv(b *testing.B) {
	n := transport.NewNetwork(2, netmodel.Ideal())
	ep := n.Endpoint(1)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Send(&transport.Msg{Src: 0, Dst: 1, Kind: transport.App, Data: payload})
		if _, err := ep.Recv(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_EnginePreSend measures Algorithm 1's send path (date,
// phase, logging decision, piggyback strategy).
func BenchmarkMicro_EnginePreSend(b *testing.B) {
	topo := rollback.NewTopology([]int{0, 1})
	px := &benchProc{topo: topo}
	e := core.New().NewEngine(0, px)
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &transport.Msg{Src: 0, Dst: 1, Kind: transport.App, WireLen: 128, Data: payload}
		if _, err := e.PreSend(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_Partitioner measures the clustering tool on a 256-rank
// torus graph.
func BenchmarkMicro_Partitioner(b *testing.B) {
	g := graph.New(256)
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			g.AddTraffic(r*16+c, r*16+(c+1)%16, 4)
			g.AddTraffic(r*16+c, ((r+1)%16)*16+c, 1)
		}
	}
	opt := graph.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := graph.Cluster(g, opt)
		if res.K < 2 {
			b.Fatal("degenerate clustering")
		}
	}
}

// BenchmarkMicro_PingPong measures the full simulated stack end to end.
func BenchmarkMicro_PingPong(b *testing.B) {
	prog := func(c *hydee.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				if err := c.Send(1, 1, []byte("x")); err != nil {
					return err
				}
				if _, _, err := c.Recv(1, 1); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 100; i++ {
			if _, _, err := c.Recv(0, 1); err != nil {
				return err
			}
			if err := c.Send(0, 1, []byte("y")); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < b.N; i++ {
		if _, err := hydee.Run(hydee.Config{NP: 2, Protocol: hydee.HydEE(),
			Topo: hydee.NewTopology([]int{0, 1}), Model: hydee.Myrinet10G()}, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProc is a minimal rollback.Proc for micro-benchmarks.
type benchProc struct {
	topo    *rollback.Topology
	metrics rollback.Metrics
	clock   vtime.Clock
}

func (p *benchProc) Rank() int                                { return 0 }
func (p *benchProc) Topo() *rollback.Topology                 { return p.topo }
func (p *benchProc) Clock() *vtime.Clock                      { return &p.clock }
func (p *benchProc) Model() netmodel.Model                    { return netmodel.Myrinet10G() }
func (p *benchProc) Metrics() *rollback.Metrics               { return &p.metrics }
func (p *benchProc) SendCtl(dst int, body any, wireBytes int) {}
func (p *benchProc) SendAppRaw(m *transport.Msg)              {}
func (p *benchProc) WaitCtl(pred func() bool) error           { return nil }
func (p *benchProc) RecoveryID() int                          { return p.topo.NP }
func (p *benchProc) HeldFrom(src int) int64                   { return 0 }
func (p *benchProc) HeldEntries(src int) []rollback.HeldMsg   { return nil }
