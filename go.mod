module hydee

go 1.24
