package hydee_test

// Tests for the open registries: Register* hooks, collision and
// empty-name errors, case-insensitivity, alias deduplication in
// listings, and snapshot-consistent behaviour under concurrent
// registration (run with -race).

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hydee"
)

func TestRegisterCollisionAndEmptyName(t *testing.T) {
	if err := hydee.RegisterProtocol("", hydee.HydEE); err == nil {
		t.Error("empty protocol name accepted")
	}
	if err := hydee.RegisterProtocol("   ", hydee.HydEE); err == nil {
		t.Error("blank protocol name accepted")
	}
	if err := hydee.RegisterProtocol("collider", hydee.HydEE); err != nil {
		t.Fatal(err)
	}
	// Same name again — and case-insensitively — must collide.
	if err := hydee.RegisterProtocol("collider", hydee.Coordinated); err == nil {
		t.Error("duplicate protocol name accepted")
	}
	if err := hydee.RegisterProtocol("COLLIDER", hydee.Coordinated); err == nil {
		t.Error("case-variant duplicate accepted")
	}
	// Builtins and aliases are also protected.
	if err := hydee.RegisterProtocol("hydee", hydee.HydEE); err == nil {
		t.Error("builtin protocol name re-registered")
	}
	if err := hydee.RegisterModel("myrinet", hydee.Myrinet10G); err == nil {
		t.Error("builtin model alias re-registered")
	}
	if err := hydee.RegisterProtocol("nilmk", nil); err == nil {
		t.Error("nil constructor accepted")
	}
	if err := hydee.RegisterStore("nilmk", nil); err == nil {
		t.Error("nil store factory accepted")
	}
	if err := hydee.RegisterExporter("nilmk", nil); err == nil {
		t.Error("nil exporter factory accepted")
	}
}

func TestModelNamesDedupeAliases(t *testing.T) {
	names := hydee.ModelNames()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	// Shorthands resolve but are not listed as if they were distinct
	// backends.
	for _, alias := range []string{"myrinet", "gige"} {
		if seen[alias] {
			t.Errorf("ModelNames lists alias %q as a backend: %v", alias, names)
		}
		if _, err := hydee.ModelByName(alias); err != nil {
			t.Errorf("alias %q stopped resolving: %v", alias, err)
		}
	}
	for _, canonical := range []string{"myrinet10g", "tcpgige", "ideal"} {
		if !seen[canonical] {
			t.Errorf("ModelNames misses canonical %q: %v", canonical, names)
		}
	}
	storeNames := hydee.StoreNames()
	for _, n := range storeNames {
		if n == "memory" {
			t.Errorf("StoreNames lists alias %q: %v", n, storeNames)
		}
	}
}

func TestUnknownNameErrorsListCanonicalFirst(t *testing.T) {
	_, err := hydee.ModelByName("infiniband")
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	msg := err.Error()
	canon := strings.Index(msg, "myrinet10g")
	alias := strings.Index(msg, "aliases:")
	if canon < 0 {
		t.Fatalf("error does not list canonical names: %q", msg)
	}
	if alias >= 0 && alias < canon {
		t.Errorf("aliases listed before canonical names: %q", msg)
	}
	if !strings.Contains(msg, "myrinet") || !strings.Contains(msg, "gige") {
		t.Errorf("shorthands dropped from inventory entirely: %q", msg)
	}
	if _, err := hydee.StoreByName("s3", hydee.StoreOptions{}); err == nil {
		t.Error("unknown store accepted")
	}
	if _, err := hydee.ExporterByName("otlp"); err == nil {
		t.Error("unknown exporter accepted")
	}
}

func TestConcurrentRegistration(t *testing.T) {
	// Many goroutines race to register the same names; exactly one per
	// name may win, listings must stay snapshot-consistent, and every
	// winner must be resolvable afterwards. Run with -race.
	const names, racers = 16, 8
	var wg sync.WaitGroup
	wins := make([][]bool, names)
	for n := 0; n < names; n++ {
		wins[n] = make([]bool, racers)
		for g := 0; g < racers; g++ {
			wg.Add(1)
			go func(n, g int) {
				defer wg.Done()
				name := fmt.Sprintf("race-proto-%d", n)
				if err := hydee.RegisterProtocol(name, hydee.HydEE); err == nil {
					wins[n][g] = true
				}
				// Interleave listings and lookups with registration.
				_ = hydee.ProtocolNames()
				_, _ = hydee.ProtocolByName("hydee")
			}(n, g)
		}
	}
	wg.Wait()
	listed := make(map[string]bool)
	for _, n := range hydee.ProtocolNames() {
		listed[n] = true
	}
	for n := 0; n < names; n++ {
		won := 0
		for _, w := range wins[n] {
			if w {
				won++
			}
		}
		if won != 1 {
			t.Errorf("name race-proto-%d: %d registrations succeeded, want exactly 1", n, won)
		}
		name := fmt.Sprintf("race-proto-%d", n)
		if !listed[name] {
			t.Errorf("winner %q missing from ProtocolNames", name)
		}
		if p, err := hydee.ProtocolByName(name); err != nil || p == nil {
			t.Errorf("winner %q not resolvable: %v", name, err)
		}
	}
}

func TestParseStoreSpec(t *testing.T) {
	cases := []struct {
		spec string
		name string
		opts hydee.StoreOptions
		ok   bool
	}{
		{"mem", "mem", hydee.StoreOptions{}, true},
		{"sharded:4", "sharded", hydee.StoreOptions{Shards: 4}, true},
		{"sharded:1", "sharded", hydee.StoreOptions{Shards: 1}, true},
		{"ec:4+2", "ec", hydee.StoreOptions{Shards: 4, Parity: 2}, true},
		{"ec:1+1", "ec", hydee.StoreOptions{Shards: 1, Parity: 1}, true},
		{"EC: 12 + 4", "EC", hydee.StoreOptions{Shards: 12, Parity: 4}, true},
		{"replica:3", "replica", hydee.StoreOptions{Replicas: 3}, true},
		{"replica:2", "replica", hydee.StoreOptions{Replicas: 2}, true},
		{"replicated:3", "replicated", hydee.StoreOptions{Replicas: 3}, true},
		{"sharded:0", "", hydee.StoreOptions{}, false},
		{"sharded:-2", "", hydee.StoreOptions{}, false},
		{"sharded:x", "", hydee.StoreOptions{}, false},
		{"", "", hydee.StoreOptions{}, false},
		{":4", "", hydee.StoreOptions{}, false},
		// Redundancy geometry is validated eagerly at parse time.
		{"ec", "", hydee.StoreOptions{}, false},
		{"ec:4", "", hydee.StoreOptions{}, false},
		{"ec:0+2", "", hydee.StoreOptions{}, false},
		{"ec:4+0", "", hydee.StoreOptions{}, false},
		{"ec:-1+2", "", hydee.StoreOptions{}, false},
		{"ec:200+100", "", hydee.StoreOptions{}, false},
		{"ec:a+b", "", hydee.StoreOptions{}, false},
		{"replica", "", hydee.StoreOptions{}, false},
		{"replica:1", "", hydee.StoreOptions{}, false},
		{"replica:0", "", hydee.StoreOptions{}, false},
		{"replica:x", "", hydee.StoreOptions{}, false},
	}
	for _, tc := range cases {
		name, opts, err := hydee.ParseStoreSpec(tc.spec)
		if tc.ok != (err == nil) {
			t.Errorf("ParseStoreSpec(%q): err = %v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if !tc.ok {
			// Rejections carry the typed error, and its message lists
			// the canonical store names so the fix is discoverable.
			var serr *hydee.StoreSpecError
			if !errors.As(err, &serr) {
				t.Errorf("ParseStoreSpec(%q): error %T is not a *StoreSpecError", tc.spec, err)
				continue
			}
			if serr.Spec != tc.spec {
				t.Errorf("ParseStoreSpec(%q): StoreSpecError.Spec = %q", tc.spec, serr.Spec)
			}
			for _, want := range []string{"ec", "replica", "sharded", "mem"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("ParseStoreSpec(%q) error does not list store %q: %v", tc.spec, want, err)
				}
			}
			continue
		}
		if name != tc.name || opts.Shards != tc.opts.Shards || opts.Parity != tc.opts.Parity || opts.Replicas != tc.opts.Replicas {
			t.Errorf("ParseStoreSpec(%q) = %q/%+v, want %q/%+v", tc.spec, name, opts, tc.name, tc.opts)
		}
	}
}
