// Command quickstart runs a small send-deterministic stencil under HydEE,
// kills a process mid-run, and shows that only its cluster rolls back while
// the recovered execution matches the failure-free one bit-for-bit.
package main

import (
	"fmt"
	"log"

	"hydee"
)

func main() {
	const (
		np    = 8
		iters = 12
	)
	// Two clusters of four ranks.
	topo := hydee.NewTopology([]int{0, 0, 0, 0, 1, 1, 1, 1})
	program := hydee.StencilProgram(iters, 64*1024)

	base := hydee.Config{
		NP:              np,
		Topo:            topo,
		Protocol:        hydee.HydEE(),
		Model:           hydee.Myrinet10G(),
		CheckpointEvery: 4,
	}

	clean, err := hydee.Run(base, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free run:   makespan %v, %d messages, %d logged (%.1f%% of bytes)\n",
		clean.Makespan, clean.Totals.AppSends, clean.Totals.LoggedMsgs,
		100*float64(clean.Totals.LoggedBytes)/float64(clean.Totals.AppBytes))

	failing := base
	failing.Failures = hydee.NewFailureSchedule(hydee.FailureEvent{
		Ranks: []int{5},
		When:  hydee.FailureTrigger{AfterCheckpoints: 2},
	})
	failed, err := hydee.Run(failing, program)
	if err != nil {
		log.Fatal(err)
	}
	rd := failed.Rounds[0]
	fmt.Printf("run with failure:   makespan %v, rolled back %d/%d ranks, recovery %v, %d orphans\n",
		failed.Makespan, rd.RolledBack, np, rd.EndVT.Sub(rd.StartVT), rd.Orphans)

	for r := 0; r < np; r++ {
		if clean.Results[r] != failed.Results[r] {
			log.Fatalf("rank %d diverged after recovery: %v vs %v", r, clean.Results[r], failed.Results[r])
		}
	}
	fmt.Println("recovered execution matches the failure-free execution on every rank ✓")
	fmt.Printf("containment: the failure of rank 5 rolled back only cluster 1 (ranks 4-7), "+
		"while cluster 0 kept its work; %d logged messages were replayed\n",
		failed.Totals.ResentLogged)
}
