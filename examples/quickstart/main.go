// Command quickstart runs a small send-deterministic stencil under HydEE,
// kills a process mid-run, and shows that only its cluster rolls back while
// the recovered execution matches the failure-free one bit-for-bit. It uses
// the Engine API: one engine per configuration, built with functional
// options, reusable across runs and observable through lifecycle events.
package main

import (
	"context"
	"fmt"
	"log"

	"hydee"
)

func main() {
	const (
		np    = 8
		iters = 12
	)
	ctx := context.Background()
	// Two clusters of four ranks.
	topo := hydee.NewTopology([]int{0, 0, 0, 0, 1, 1, 1, 1})
	program := hydee.StencilProgram(iters, 64*1024)

	base := []hydee.Option{
		hydee.WithTopology(topo),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithModel(hydee.Myrinet10G()),
		hydee.WithCheckpointEvery(4),
	}

	cleanEng, err := hydee.New(base...)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := cleanEng.Run(ctx, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free run:   makespan %v, %d messages, %d logged (%.1f%% of bytes)\n",
		clean.Makespan, clean.Totals.AppSends, clean.Totals.LoggedMsgs,
		100*float64(clean.Totals.LoggedBytes)/float64(clean.Totals.AppBytes))

	// Same configuration plus a failure schedule and a lifecycle observer
	// narrating the recovery.
	failingEng, err := hydee.New(append(base,
		hydee.WithFailureEvents(hydee.FailureEvent{
			Ranks: []int{5},
			When:  hydee.FailureTrigger{AfterCheckpoints: 2},
		}),
		hydee.WithObserver(hydee.ObserverFunc(func(ev hydee.RunEvent) {
			switch ev.Kind {
			case hydee.EvFailure:
				fmt.Printf("  [observer] ranks %v failed at %v\n", ev.Ranks, ev.VT)
			case hydee.EvRecoveryStart:
				fmt.Printf("  [observer] recovery round %d rolls back ranks %v\n", ev.Round, ev.Ranks)
			case hydee.EvRecoveryEnd:
				fmt.Printf("  [observer] recovery round %d done at %v\n", ev.Round, ev.VT)
			}
		})),
	)...)
	if err != nil {
		log.Fatal(err)
	}
	failed, err := failingEng.Run(ctx, program)
	if err != nil {
		log.Fatal(err)
	}
	rd := failed.Rounds[0]
	fmt.Printf("run with failure:   makespan %v, rolled back %d/%d ranks, recovery %v, %d orphans\n",
		failed.Makespan, rd.RolledBack, np, rd.EndVT.Sub(rd.StartVT), rd.Orphans)

	for r := 0; r < np; r++ {
		if clean.Results[r] != failed.Results[r] {
			log.Fatalf("rank %d diverged after recovery: %v vs %v", r, clean.Results[r], failed.Results[r])
		}
	}
	fmt.Println("recovered execution matches the failure-free execution on every rank ✓")
	fmt.Printf("containment: the failure of rank 5 rolled back only cluster 1 (ranks 4-7), "+
		"while cluster 0 kept its work; %d logged messages were replayed\n",
		failed.Totals.ResentLogged)
}
