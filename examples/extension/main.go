// The extension example plugs third-party components into hydee's name
// registries from outside the root package: a custom rollback protocol
// (HydEE under instrumentation), a custom checkpoint-store backend (a
// save-counting wrapper over the sharded store), and a custom event
// exporter (a per-kind tally). Everything is then resolved by name —
// exactly what an embedding application or the cmd binaries' flags do —
// and driven through one failure-and-recovery run.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"sync/atomic"

	"hydee"
)

// tracedHydEE is a "third-party" protocol: it delegates to HydEE and
// only renames itself, the minimal shape of a protocol wrapper (real
// ones would decorate NewEngine with accounting or policy).
type tracedHydEE struct{ hydee.Protocol }

func (tracedHydEE) Name() string { return "traced-hydee" }

// countingStore is a "third-party" checkpoint store: it wraps any
// backend and counts saves. It inherits the wrapped store's determinism
// (it adds no timing of its own), so it is safe to plug into runs whose
// makespans must stay byte-reproducible.
type countingStore struct {
	hydee.Store
	saves atomic.Int64
}

func (st *countingStore) Save(s *hydee.Snapshot, at hydee.Time) (hydee.Time, error) {
	st.saves.Add(1)
	return st.Store.Save(s, at)
}

// tallyExporter is a "third-party" event exporter: it counts events per
// kind and writes one summary line on Close.
type tallyExporter struct {
	mu     sync.Mutex
	w      io.Writer
	counts map[string]int
}

func newTallyExporter(w io.Writer) hydee.Exporter {
	return &tallyExporter{w: w, counts: make(map[string]int)}
}

func (x *tallyExporter) OnEvent(ev hydee.RunEvent) {
	x.mu.Lock()
	x.counts[ev.Kind.String()]++
	x.mu.Unlock()
}

func (x *tallyExporter) Close() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	_, err := fmt.Fprintf(x.w, "event tally: %v\n", x.counts)
	return err
}

func main() {
	// One countingStore is built per run; the latest lands here so main
	// can report it.
	var lastStore *countingStore

	// Register the extensions. Names are claimed once, case-insensitively;
	// a collision would be an error.
	if err := hydee.RegisterProtocol("traced-hydee", func() hydee.Protocol {
		return tracedHydEE{hydee.HydEE()}
	}); err != nil {
		log.Fatal(err)
	}
	if err := hydee.RegisterStore("counting", func(o hydee.StoreOptions) (hydee.Store, error) {
		backend, err := hydee.StoreByName("sharded", o)
		if err != nil {
			return nil, err
		}
		lastStore = &countingStore{Store: backend}
		return lastStore, nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := hydee.RegisterExporter("tally", newTallyExporter); err != nil {
		log.Fatal(err)
	}

	// Resolve everything by name, as a flag-driven binary would.
	mkExporter, err := hydee.ExporterByName("tally")
	if err != nil {
		log.Fatal(err)
	}
	exporter := mkExporter(os.Stdout)

	eng, err := hydee.New(
		hydee.WithTopology(hydee.NewTopology([]int{0, 0, 1, 1, 2, 2})),
		hydee.WithProtocolName("traced-hydee"),
		hydee.WithModelName("myrinet"), // shorthand alias of myrinet10g
		hydee.WithStoreName("counting", hydee.StoreOptions{Shards: 3, WriteBPS: 1e9, ReadBPS: 1e9}),
		hydee.WithCheckpointEvery(2),
		hydee.WithFailureEvents(hydee.FailureEvent{
			Ranks: []int{3}, When: hydee.FailureTrigger{AfterCheckpoints: 1},
		}),
		hydee.WithObserver(exporter),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.Run(context.Background(), hydee.StencilProgram(8, 4096))
	if err != nil {
		log.Fatal(err)
	}
	if err := exporter.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol %q over 6 ranks: makespan %v, %d recovery round(s)\n",
		"traced-hydee", res.Makespan, len(res.Rounds))
	fmt.Printf("counting store saw %d checkpoint saves across 3 shards (store stats: %+v)\n",
		lastStore.saves.Load(), res.StoreStats)
	fmt.Printf("registries now list: protocols %v, stores %v, exporters %v\n",
		hydee.ProtocolNames(), hydee.StoreNames(), hydee.ExporterNames())
}
