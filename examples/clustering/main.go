// Command clustering demonstrates the off-line process-clustering tool
// (Ropars et al., Euro-Par 2011) the paper uses in §V-B3: it traces the
// communication graph of each NAS kernel and prints a Table-I-style row —
// number of clusters, expected rollback percentage, and the share of bytes
// HydEE would have to log.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"hydee"
)

func main() {
	np := flag.Int("np", 64, "number of ranks to trace (256 reproduces the paper)")
	iters := flag.Int("iters", 2, "iterations to trace")
	net := flag.String("net", "myrinet10g", "network model for the traces ("+strings.Join(hydee.ModelNames(), ", ")+"); clustering output is model-independent — rows derive from payload byte counts only")
	flag.Parse()

	model, err := hydee.ModelByName(*net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering the six NAS kernels at %d ranks (paper Table I at 256):\n\n", *np)
	rows, err := hydee.Table1Ctx(context.Background(), *np, *iters, model, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %10s %22s %26s\n", "App", "Clusters", "Avg ranks to roll back", "Log/Total data")
	for _, r := range rows {
		fmt.Printf("%-6s %10d %21.2f%% %12.0f/%-6.0f GB (%.2f%%)\n",
			strings.ToUpper(r.App), r.K, r.RollbackPct, r.LoggedGB, r.TotalGB, r.LoggedPct)
	}
	fmt.Println("\npaper values at 256 ranks: BT 5/21.78%/18.09%, CG 16/6.25%/18.98%,")
	fmt.Println("FT 2/50%/50.19%, LU 8/12.5%/13.26%, MG 4/25%/19.63%, SP 6/18.56%/20.04%")
}
