// Command cgfailure runs the CG kernel (the paper's most cluster-friendly
// benchmark) on 64 ranks, clusters it with the communication-graph tool,
// and compares how far a single failure spreads under HydEE, full message
// logging, and globally coordinated checkpointing — the failure-containment
// story of the paper's introduction. The six runs (clean and failing, per
// protocol) execute concurrently through the experiment worker pool.
package main

import (
	"context"
	"fmt"
	"log"

	"hydee"
)

func main() {
	const (
		np    = 64
		iters = 10
	)
	ctx := context.Background()
	kernel, err := hydee.KernelByName("cg")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: trace the communication graph and cluster it.
	sum, err := hydee.RunExperimentCtx(ctx, hydee.ExperimentSpec{
		Kernel: kernel,
		Params: hydee.KernelParams{NP: np, Iters: 2},
		Proto:  hydee.ProtoNative,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := hydee.CommGraphFromPairBytes(np, sum.PairBytes)
	cl := hydee.Cluster(g, hydee.DefaultClusterOptions())
	fmt.Printf("clustering: %d clusters, %.2f%% of bytes logged, %.2f%% expected rollback\n",
		cl.K, 100*cl.CutFrac, 100*cl.ExpRollback)

	// Step 2: inject a failure under each fault-tolerant protocol. Each
	// protocol needs a clean run (reference digests) and a failing run;
	// all six are independent, so they go through one parallel sweep.
	protos := []struct {
		p    hydee.ExperimentProto
		kind string
	}{
		{hydee.ProtoCoord, "coordinated checkpointing"},
		{hydee.ProtoMLog, "full message logging"},
		{hydee.ProtoHydEE, "HydEE"},
	}
	var specs []hydee.ExperimentSpec
	for _, proto := range protos {
		spec := hydee.ExperimentSpec{
			Kernel:          kernel,
			Params:          hydee.KernelParams{NP: np, Iters: iters},
			Proto:           proto.p,
			Assign:          cl.Assign,
			CheckpointEvery: 3,
		}
		clean := spec
		specs = append(specs, clean)
		spec.Failures = hydee.NewFailureSchedule(hydee.FailureEvent{
			Ranks: []int{np / 2},
			When:  hydee.FailureTrigger{AfterCheckpoints: 1},
		})
		specs = append(specs, spec)
	}
	sums, err := hydee.RunExperiments(ctx, specs, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i, proto := range protos {
		cleanSum, failSum := sums[2*i], sums[2*i+1]
		for r := 0; r < np; r++ {
			if cleanSum.Digests[r] != failSum.Digests[r] {
				log.Fatalf("%s: rank %d diverged after recovery", proto.kind, r)
			}
		}
		rd := failSum.Rounds[0]
		fmt.Printf("%-26s rolled back %2d/%d ranks (%5.1f%%), recovery %v, makespan %v (+%.1f%%)\n",
			proto.kind+":", rd.RolledBack, np, 100*float64(rd.RolledBack)/float64(np),
			rd.EndVT.Sub(rd.StartVT), failSum.Makespan,
			100*(float64(failSum.Makespan)/float64(cleanSum.Makespan)-1))
	}
	fmt.Println("all recovered executions match their failure-free runs ✓")
}
