// Command threeclusters replays the paper's running example (Figures 3-4):
// eight processes in three clusters exchanging messages m1..m8. It prints
// the phase number of every message, verifies they match the figure
// (m1,m2,m6 in phase 1; m3 in phase 2; m4,m5,m7 in phase 3; m8 in phase 4),
// then kills Cluster 2 and shows the recovery mechanics: m3 becomes an
// orphan, its re-execution is suppressed, and the logged m7 is not replayed
// before m3's place in the phase order is accounted for.
package main

import (
	"context"
	"fmt"
	"log"

	"hydee"
)

// Ranks 0..7 play the paper's P1..P8. Clusters follow the figure:
// Cluster1 = {P1}, Cluster2 = {P2,P3,P4}, Cluster3 = {P5,P6,P7,P8}.
var clusters = []int{0, 1, 1, 1, 2, 2, 2, 2}

// msg names the application tags so the trace reads like the figure.
const (
	m1 = iota + 1
	m2
	m3
	m4
	m5
	m6
	m7
	m8
)

func program(c *hydee.Comm) error {
	payload := []byte{byte(c.Rank())}
	send := func(dst, tag int) error { return c.Send(dst, tag, payload) }
	recv := func(src, tag int) error {
		_, _, err := c.Recv(src, tag)
		return err
	}
	switch c.Rank() {
	case 0: // P1
		return send(1, m1)
	case 1: // P2
		if err := recv(0, m1); err != nil {
			return err
		}
		return send(2, m2)
	case 2: // P3
		if err := recv(1, m2); err != nil {
			return err
		}
		if err := send(4, m3); err != nil {
			return err
		}
		return recv(3, m8)
	case 3: // P4
		if err := recv(6, m7); err != nil {
			return err
		}
		return send(2, m8)
	case 4: // P5
		if err := recv(2, m3); err != nil {
			return err
		}
		return send(5, m4)
	case 5: // P6
		if err := recv(4, m4); err != nil {
			return err
		}
		return send(6, m5)
	case 6: // P7
		// m5 and m6 are not causally ordered: either may arrive first,
		// the same m7 is sent anyway (send-determinism, §III-A).
		if err := recv(hydee.AnySource, hydee.AnyTag); err != nil {
			return err
		}
		if err := recv(hydee.AnySource, hydee.AnyTag); err != nil {
			return err
		}
		return send(3, m7)
	case 7: // P8
		return send(6, m6)
	}
	return nil
}

var wantPhases = map[int]int{m1: 1, m2: 2, m3: 2, m4: 3, m5: 3, m6: 1, m7: 3, m8: 4}

func phasesOf(rec *hydee.EventRecorder) map[int]int {
	got := make(map[int]int)
	for _, evs := range rec.Events() {
		for _, ev := range evs {
			if ev.Op == hydee.TraceSend {
				got[ev.Tag] = ev.Phase
			}
		}
	}
	return got
}

func main() {
	ctx := context.Background()
	topo := hydee.NewTopology(clusters)

	// Failure-free run: check the figure's phase numbers.
	rec := hydee.NewEventRecorder(8)
	eng, err := hydee.New(
		hydee.WithTopology(topo),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithModel(hydee.Myrinet10G()),
		hydee.WithRecorder(rec),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Run(ctx, program); err != nil {
		log.Fatal(err)
	}
	fmt.Println("failure-free phases (paper Figure 4):")
	got := phasesOf(rec)
	for tag := m1; tag <= m8; tag++ {
		mark := "✓"
		if got[tag] != wantPhases[tag] {
			mark = fmt.Sprintf("✗ (expected %d)", wantPhases[tag])
		}
		fmt.Printf("  m%d: phase %d %s\n", tag, got[tag], mark)
	}

	// Now kill Cluster 2 (ranks 1-3) after P3 sent m3, so m3 becomes an
	// orphan exactly as in §III-B.
	rec2 := hydee.NewEventRecorder(8)
	failEng, err := hydee.New(
		hydee.WithTopology(topo),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithModel(hydee.Myrinet10G()),
		hydee.WithRecorder(rec2),
		hydee.WithFailureEvents(hydee.FailureEvent{
			Ranks: []int{2}, // P3; its whole cluster {P2,P3,P4} rolls back
			When:  hydee.FailureTrigger{AfterSends: 1},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := failEng.Run(ctx, program)
	if err != nil {
		log.Fatal(err)
	}
	rd := res.Rounds[0]
	fmt.Printf("\nfailure of Cluster 2: rolled back %d ranks, %d orphan message(s), "+
		"%d suppressed re-send(s), %d logged replay(s)\n",
		rd.RolledBack, rd.Orphans, res.Totals.Suppressed, res.Totals.ResentLogged)

	got2 := phasesOf(rec2)
	same := true
	for tag := m1; tag <= m8; tag++ {
		if got2[tag] != got[tag] {
			same = false
			fmt.Printf("  m%d phase changed: %d -> %d\n", tag, got[tag], got2[tag])
		}
	}
	if same {
		fmt.Println("every (re-)sent message kept its failure-free phase (Lemma 4) ✓")
	}
}
