package hydee

import (
	"context"
	"flag"
	"fmt"
	"strings"
)

// Shared run-selection specs. The cmd binaries' -store/-store-bps/
// -store-dir and -events/-exporter flags and the hydee-serve HTTP API
// decode the exact same compact forms through the types below, so a spec
// that works on a command line works verbatim in a job submission (and
// vice versa), and a registry addition is selectable everywhere at once.

// StoreSpec is the flag/wire form of a checkpoint-store selection:
// a registry name with an optional geometry ("mem", "sharded:4",
// "ec:4+2", "replica:3" — see StoreSpecForms), a per-link bandwidth
// model and a directory for file-backed stores. The zero value selects
// the free in-memory store.
type StoreSpec struct {
	// Spec selects the store over the registry in the ParseStoreSpec
	// grammar (StoreSpecForms); "" means "mem".
	Spec string `json:"store,omitempty"`
	// BPS models stable-storage write and read bandwidth in bytes/second
	// per store link (0 = free storage).
	BPS float64 `json:"store_bps,omitempty"`
	// Dir is the snapshot directory of file-backed stores.
	Dir string `json:"store_dir,omitempty"`
}

// Bind registers the shared -store, -store-bps and -store-dir flags on fs,
// filling s at parse time. Defaults come from s's current values.
func (s *StoreSpec) Bind(fs *flag.FlagSet) {
	if s.Spec == "" {
		s.Spec = "mem"
	}
	fs.StringVar(&s.Spec, "store", s.Spec,
		"checkpoint store over "+strings.Join(StoreNames(), ", ")+"; forms "+StoreSpecForms)
	fs.Float64Var(&s.BPS, "store-bps", s.BPS,
		"stable-storage bandwidth in bytes/second per store link (0 = free)")
	fs.StringVar(&s.Dir, "store-dir", s.Dir,
		"snapshot directory for -store file (runs reuse it; same-sequence files are overwritten)")
}

// options resolves the spec into a registry name and StoreOptions.
func (s StoreSpec) options() (string, StoreOptions, error) {
	spec := s.Spec
	if strings.TrimSpace(spec) == "" {
		spec = "mem"
	}
	name, opts, err := ParseStoreSpec(spec)
	if err != nil {
		return "", StoreOptions{}, err
	}
	opts.WriteBPS, opts.ReadBPS = s.BPS, s.BPS
	opts.Dir = s.Dir
	return name, opts, nil
}

// Probe validates the spec eagerly — the name resolves and the factory
// accepts the options — so a typo fails at startup or submission time,
// not inside the first run of a sweep.
func (s StoreSpec) Probe() error {
	name, opts, err := s.options()
	if err != nil {
		return err
	}
	_, err = StoreByName(name, opts)
	return err
}

// New builds a fresh store for one run. A composite spec (sharded, ec,
// replica) with no explicit placement places each cluster of topo on its
// own shard — for ec, the base shard of the cluster's fragment group;
// for replica, the cluster's home replica. topo may be nil for
// unclustered runs.
func (s StoreSpec) New(topo *Topology) (Store, error) {
	name, opts, err := s.options()
	if err != nil {
		return nil, err
	}
	if n := opts.totalShards(); n > 1 && topo != nil {
		opts.Placement = ClusterPlacement(topo, n)
	}
	return StoreByName(name, opts)
}

// EventStreamSpec is the flag/wire form of the -events/-exporter pair:
// a destination path (a directory gets one file per run) and the registry
// name of the exporter driving it. The zero value streams nothing.
type EventStreamSpec struct {
	// Path receives the event stream: one fan-in file, or one file per
	// run when it names a directory (trailing slash or existing dir).
	// "" disables streaming.
	Path string `json:"events,omitempty"`
	// Exporter is the event-exporter registry name; "" means "jsonl".
	Exporter string `json:"exporter,omitempty"`
}

// Bind registers the shared -events and -exporter flags on fs, filling s
// at parse time. Defaults come from s's current values.
func (s *EventStreamSpec) Bind(fs *flag.FlagSet) {
	if s.Exporter == "" {
		s.Exporter = "jsonl"
	}
	fs.StringVar(&s.Path, "events", s.Path,
		"stream run lifecycle events to this file, or one file per run when the path is a directory (trailing slash or existing dir)")
	fs.StringVar(&s.Exporter, "exporter", s.Exporter,
		"event exporter for -events: "+strings.Join(ExporterNames(), ", "))
}

// exporterName is the registry name with the "jsonl" default applied.
func (s EventStreamSpec) exporterName() string {
	if s.Exporter == "" {
		return "jsonl"
	}
	return s.Exporter
}

// Wire connects the stream to ctx: every run started under the returned
// context streams its lifecycle events to the configured destination.
// The returned function closes and flushes the stream; it is never nil.
// A spec with no Path wires nothing and succeeds.
func (s EventStreamSpec) Wire(ctx context.Context) (context.Context, func() error, error) {
	if s.Path == "" {
		return ctx, func() error { return nil }, nil
	}
	return StreamEvents(ctx, s.exporterName(), s.Path)
}

// SweepSpec is the wire form of one experiment run — what one element of
// a hydee-serve job submission decodes to, with every backend selected by
// registry name. The same resolution backs the cmd binaries' flags, so a
// JSON spec and a flag spelling of the same run are literally the same
// configuration.
type SweepSpec struct {
	// App is the kernel name ("bt", "cg", "ft", "lu", "mg", "sp").
	App string `json:"app"`
	// NP is the rank count.
	NP int `json:"np"`
	// Iters is the timestep count; 0 means 3.
	Iters int `json:"iters,omitempty"`
	// Proto is the protocol-configuration name ("native", "coord",
	// "mlog", "hydee"); "" means "hydee".
	Proto string `json:"proto,omitempty"`
	// Net is the network-model registry name; "" means "myrinet10g".
	Net string `json:"net,omitempty"`
	// Assign is the per-rank cluster assignment (proto "hydee" only).
	Assign []int `json:"assign,omitempty"`
	// Clusters, when Assign is absent, splits the ranks into this many
	// contiguous equal blocks (proto "hydee" only).
	Clusters int `json:"clusters,omitempty"`
	// CheckpointEvery fires a coordinated checkpoint every k-th
	// cooperative checkpoint call; 0 disables checkpointing.
	CheckpointEvery int `json:"ckpt,omitempty"`
	// Stagger offsets the checkpoint schedule per cluster (E5).
	Stagger bool `json:"stagger,omitempty"`
	// FailAt is a failure-injection spec in the ParseFailureSpec grammar
	// ("vt:1.5ms@3; ckpts:2@8,12"); "" injects nothing.
	FailAt string `json:"fail_at,omitempty"`
	// StoreSpec selects the checkpoint store; being embedded, its fields
	// inline into the same JSON object ("store", "store_bps",
	// "store_dir").
	StoreSpec
}

// Experiment resolves the spec through the registries into a runnable
// ExperimentSpec, validating every name and the failure grammar eagerly.
func (s SweepSpec) Experiment() (ExperimentSpec, error) {
	var spec ExperimentSpec
	if s.NP <= 0 {
		return spec, fmt.Errorf("hydee: sweep spec: np must be positive (got %d)", s.NP)
	}
	iters := s.Iters
	switch {
	case iters == 0:
		iters = 3
	case iters < 0:
		return spec, fmt.Errorf("hydee: sweep spec: iters must be positive (got %d)", iters)
	}
	kernel, err := KernelByName(s.App)
	if err != nil {
		return spec, err
	}
	protoName := s.Proto
	if protoName == "" {
		protoName = "hydee"
	}
	proto, err := ExperimentProtoByName(protoName)
	if err != nil {
		return spec, err
	}
	spec = ExperimentSpec{
		Kernel:          kernel,
		Params:          KernelParams{NP: s.NP, Iters: iters},
		Proto:           proto,
		CheckpointEvery: s.CheckpointEvery,
		Stagger:         s.Stagger,
	}
	if proto == ProtoHydEE {
		switch {
		case len(s.Assign) > 0:
			if len(s.Assign) != s.NP {
				return spec, fmt.Errorf("hydee: sweep spec: assign covers %d ranks, np is %d", len(s.Assign), s.NP)
			}
			spec.Assign = append([]int(nil), s.Assign...)
		case s.Clusters > 0:
			if s.Clusters > s.NP {
				return spec, fmt.Errorf("hydee: sweep spec: %d clusters over %d ranks", s.Clusters, s.NP)
			}
			assign := make([]int, s.NP)
			for r := range assign {
				assign[r] = r * s.Clusters / s.NP
			}
			spec.Assign = assign
		default:
			return spec, fmt.Errorf(`hydee: sweep spec: proto "hydee" needs "assign" or "clusters"`)
		}
	}
	if s.Net != "" {
		if spec.Model, err = ModelByName(s.Net); err != nil {
			return spec, err
		}
	}
	if s.FailAt != "" {
		events, err := ParseFailureSpec(s.FailAt)
		if err != nil {
			return spec, err
		}
		if err := ValidateFailureEvents(events, s.NP); err != nil {
			return spec, err
		}
		spec.Failures = NewFailureSchedule(events...)
	}
	if s.StoreSpec == (StoreSpec{}) {
		return spec, nil
	}
	if err := s.StoreSpec.Probe(); err != nil {
		return spec, err
	}
	store := s.StoreSpec
	spec.NewStoreE = func(topo *Topology) (Store, error) { return store.New(topo) }
	return spec, nil
}

// Experiments resolves a batch of sweep specs, failing on the first
// invalid one with its index in the error.
func Experiments(specs []SweepSpec) ([]ExperimentSpec, error) {
	out := make([]ExperimentSpec, len(specs))
	for i, s := range specs {
		spec, err := s.Experiment()
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", i, err)
		}
		out[i] = spec
	}
	return out, nil
}
