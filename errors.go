package hydee

import (
	"fmt"

	"hydee/internal/mpi"
	"hydee/internal/rollback"
	"hydee/internal/trace"
)

// Sentinel errors runs can return; match with errors.Is. The concrete
// error is always a *RunError locating the failure.
var (
	// ErrCanceled reports that the run's context was canceled or its
	// deadline expired.
	ErrCanceled = mpi.ErrCanceled
	// ErrDeadlock reports that the real-time watchdog saw no progress —
	// the usual symptom of a deadlocked program.
	ErrDeadlock = mpi.ErrDeadlock
	// ErrNotSendDeterministic reports an execution that violated the
	// send-determinism assumption the protocol relies on.
	ErrNotSendDeterministic = rollback.ErrNotSendDeterministic
	// ErrCheckpointLost reports that a restart could not load a checkpoint
	// the store had announced; the round aborts rather than silently
	// diverging from the surviving processes.
	ErrCheckpointLost = mpi.ErrCheckpointLost
)

// RunError is the typed error a run returns: rank, recovery round and
// phase of the failure, wrapping the underlying cause.
type RunError = mpi.RunError

// RunError phases.
const (
	PhaseConfig    = mpi.PhaseConfig
	PhaseProgram   = mpi.PhaseProgram
	PhaseSupervise = mpi.PhaseSupervise
	PhaseRecovery  = mpi.PhaseRecovery
)

// CheckSendDeterminism compares the per-rank send sequences of two
// recorded executions of the same program (Definition 1, §II-C: every
// execution emits the same messages in the same per-sender order). A
// mismatch returns an error wrapping ErrNotSendDeterministic.
func CheckSendDeterminism(a, b *EventRecorder) error {
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) {
		return fmt.Errorf("hydee: recorders cover %d vs %d ranks: %w", len(ea), len(eb), ErrNotSendDeterministic)
	}
	for p := range ea {
		if err := trace.EqualSendSeq(trace.SendSequence(ea, p), trace.SendSequence(eb, p)); err != nil {
			return fmt.Errorf("hydee: rank %d: %v: %w", p, err, ErrNotSendDeterministic)
		}
	}
	return nil
}
