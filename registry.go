package hydee

import (
	"fmt"
	"sort"
	"strings"

	"hydee/internal/harness"
)

// Name-based registries: the cmd binaries (and any embedding application)
// select protocols and network models via flags instead of hard-coded
// switches. Lookups are case-insensitive.

var protocolRegistry = map[string]func() Protocol{
	"hydee":  HydEE,
	"coord":  Coordinated,
	"mlog":   MessageLogging,
	"native": Native,
}

var modelRegistry = map[string]func() Model{
	"myrinet10g": func() Model { return Myrinet10G() },
	"myrinet":    func() Model { return Myrinet10G() },
	"tcpgige":    func() Model { return TCPGigE() },
	"gige":       func() Model { return TCPGigE() },
	"ideal":      func() Model { return IdealNetwork() },
}

// ProtocolByName returns a fresh instance of the named rollback-recovery
// protocol: "hydee", "coord" (globally coordinated checkpointing), "mlog"
// (full sender-based message logging) or "native" (no fault tolerance).
func ProtocolByName(name string) (Protocol, error) {
	mk, ok := protocolRegistry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("hydee: unknown protocol %q (have %s)", name, strings.Join(ProtocolNames(), ", "))
	}
	return mk(), nil
}

// ProtocolNames lists the registered protocol names, sorted.
func ProtocolNames() []string {
	names := make([]string, 0, len(protocolRegistry))
	for n := range protocolRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModelByName returns a fresh instance of the named network cost model:
// "myrinet10g" (the paper's testbed), "tcpgige" or "ideal". "myrinet" and
// "gige" are accepted as shorthands.
func ModelByName(name string) (Model, error) {
	mk, ok := modelRegistry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("hydee: unknown network model %q (have %s)", name, strings.Join(ModelNames(), ", "))
	}
	return mk(), nil
}

// ModelNames lists the registered model names, sorted (shorthands
// included).
func ModelNames() []string {
	names := make([]string, 0, len(modelRegistry))
	for n := range modelRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExperimentProtoByName resolves a name to the harness protocol selector
// used by ExperimentSpec ("native", "coord", "mlog", "hydee").
func ExperimentProtoByName(name string) (ExperimentProto, error) {
	return harness.ProtoByName(strings.ToLower(name))
}
