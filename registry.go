package hydee

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hydee/internal/harness"
)

// Name-based registries: the cmd binaries (and any embedding application)
// select protocols, network models, checkpoint stores and event exporters
// via flags instead of hard-coded switches. Lookups are case-insensitive.
// Embedders plug third-party implementations in through the Register*
// hooks; registration is safe under concurrency and a name can be claimed
// exactly once.

// registry is a concurrency-safe, case-insensitive name table of factory
// values of type F. Canonical names and shorthand aliases resolve
// identically; listings and error messages report canonical names first,
// so an alias never masquerades as a distinct backend.
type registry[F any] struct {
	kind string // "protocol", "network model", ... for error messages

	mu      sync.RWMutex
	entries map[string]F
	// aliasOf maps a registered alias to its canonical name; canonical
	// names are absent.
	aliasOf map[string]string
}

func newRegistry[F any](kind string) *registry[F] {
	return &registry[F]{
		kind:    kind,
		entries: make(map[string]F),
		aliasOf: make(map[string]string),
	}
}

// register claims name for f. canonical="" registers a canonical name;
// otherwise name becomes an alias of canonical. Empty names and
// collisions (with canonical names and aliases alike) are errors.
func (r *registry[F]) register(name, canonical string, f F) error {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		return fmt.Errorf("hydee: register %s: empty name", r.kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.entries[key]; taken {
		return fmt.Errorf("hydee: register %s %q: name already taken", r.kind, name)
	}
	r.entries[key] = f
	if canonical != "" {
		r.aliasOf[key] = strings.ToLower(canonical)
	}
	return nil
}

// mustRegister backs the built-in init-time registrations.
func (r *registry[F]) mustRegister(name, canonical string, f F) {
	if err := r.register(name, canonical, f); err != nil {
		panic(err)
	}
}

// lookup resolves a name or alias to its factory.
func (r *registry[F]) lookup(name string) (F, error) {
	r.mu.RLock()
	f, ok := r.entries[strings.ToLower(name)]
	r.mu.RUnlock()
	if !ok {
		var zero F
		return zero, fmt.Errorf("hydee: unknown %s %q (have %s)", r.kind, name, r.have())
	}
	return f, nil
}

// names returns the canonical names, sorted. The listing is a snapshot:
// it reflects one consistent registry state even under concurrent
// registration.
func (r *registry[F]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		if _, isAlias := r.aliasOf[n]; !isAlias {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// have renders the name inventory for error messages: canonical names
// first, shorthand aliases after.
func (r *registry[F]) have() string {
	canonical := r.names()
	r.mu.RLock()
	aliases := make([]string, 0, len(r.aliasOf))
	for a := range r.aliasOf {
		aliases = append(aliases, a)
	}
	r.mu.RUnlock()
	sort.Strings(aliases)
	s := strings.Join(canonical, ", ")
	if len(aliases) > 0 {
		s += "; aliases: " + strings.Join(aliases, ", ")
	}
	return s
}

var (
	protocolRegistry = newRegistry[func() Protocol]("protocol")
	modelRegistry    = newRegistry[func() Model]("network model")
	storeRegistry    = newRegistry[StoreFactory]("checkpoint store")
	exporterRegistry = newRegistry[ExporterFactory]("event exporter")
)

func init() {
	protocolRegistry.mustRegister("hydee", "", HydEE)
	protocolRegistry.mustRegister("coord", "", Coordinated)
	protocolRegistry.mustRegister("mlog", "", MessageLogging)
	protocolRegistry.mustRegister("native", "", Native)

	modelRegistry.mustRegister("myrinet10g", "", func() Model { return Myrinet10G() })
	modelRegistry.mustRegister("myrinet", "myrinet10g", func() Model { return Myrinet10G() })
	modelRegistry.mustRegister("tcpgige", "", func() Model { return TCPGigE() })
	modelRegistry.mustRegister("gige", "tcpgige", func() Model { return TCPGigE() })
	modelRegistry.mustRegister("ideal", "", func() Model { return IdealNetwork() })

	storeRegistry.mustRegister("mem", "", memStoreFactory)
	storeRegistry.mustRegister("memory", "mem", memStoreFactory)
	storeRegistry.mustRegister("file", "", fileStoreFactory)
	storeRegistry.mustRegister("sharded", "", shardedStoreFactory)
	storeRegistry.mustRegister("ec", "", ecStoreFactory)
	storeRegistry.mustRegister("replica", "", replicaStoreFactory)
	storeRegistry.mustRegister("replicated", "replica", replicaStoreFactory)

	exporterRegistry.mustRegister("jsonl", "", NewJSONLExporter)
	exporterRegistry.mustRegister("metrics", "", NewMetricsExporter)
}

// RegisterProtocol adds a third-party rollback-recovery protocol to the
// name registry, making it selectable through WithProtocolName and the
// cmd binaries' --proto flags. mk must return a fresh instance per call.
// Registration is concurrency-safe; empty names and already-taken names
// (canonical or alias, case-insensitive) are errors.
func RegisterProtocol(name string, mk func() Protocol) error {
	if mk == nil {
		return fmt.Errorf("hydee: RegisterProtocol(%q): nil constructor", name)
	}
	return protocolRegistry.register(name, "", mk)
}

// RegisterModel adds a third-party network cost model to the name
// registry (see RegisterProtocol for the registration rules).
func RegisterModel(name string, mk func() Model) error {
	if mk == nil {
		return fmt.Errorf("hydee: RegisterModel(%q): nil constructor", name)
	}
	return modelRegistry.register(name, "", mk)
}

// RegisterStore adds a third-party checkpoint-store backend to the name
// registry, making it selectable through WithStoreName and the cmd
// binaries' -store flags (see RegisterProtocol for the registration
// rules). Custom stores carry determinism obligations — see the
// "Extension points" section of DESIGN.md.
func RegisterStore(name string, mk StoreFactory) error {
	if mk == nil {
		return fmt.Errorf("hydee: RegisterStore(%q): nil factory", name)
	}
	return storeRegistry.register(name, "", mk)
}

// RegisterExporter adds a third-party streaming event exporter to the
// name registry, making it selectable through the cmd binaries' -events
// flags (see RegisterProtocol for the registration rules).
func RegisterExporter(name string, mk ExporterFactory) error {
	if mk == nil {
		return fmt.Errorf("hydee: RegisterExporter(%q): nil factory", name)
	}
	return exporterRegistry.register(name, "", mk)
}

// ProtocolByName returns a fresh instance of the named rollback-recovery
// protocol: "hydee", "coord" (globally coordinated checkpointing), "mlog"
// (full sender-based message logging), "native" (no fault tolerance), or
// anything added through RegisterProtocol.
func ProtocolByName(name string) (Protocol, error) {
	mk, err := protocolRegistry.lookup(name)
	if err != nil {
		return nil, err
	}
	return mk(), nil
}

// ProtocolNames lists the registered protocol names, sorted.
func ProtocolNames() []string { return protocolRegistry.names() }

// ModelByName returns a fresh instance of the named network cost model:
// "myrinet10g" (the paper's testbed), "tcpgige", "ideal", or anything
// added through RegisterModel. "myrinet" and "gige" are accepted as
// shorthand aliases.
func ModelByName(name string) (Model, error) {
	mk, err := modelRegistry.lookup(name)
	if err != nil {
		return nil, err
	}
	return mk(), nil
}

// ModelNames lists the registered model names, sorted. Shorthand aliases
// ("myrinet", "gige") are resolvable through ModelByName but not listed —
// an alias is not a distinct backend.
func ModelNames() []string { return modelRegistry.names() }

// StoreByName builds the named checkpoint store: "mem", "file",
// "sharded", "ec" (erasure-coded), "replica" (r-way replicated), or
// anything added through RegisterStore.
func StoreByName(name string, opts StoreOptions) (Store, error) {
	mk, err := storeRegistry.lookup(name)
	if err != nil {
		return nil, err
	}
	return mk(opts)
}

// StoreNames lists the registered store names, sorted.
func StoreNames() []string { return storeRegistry.names() }

// ExporterByName resolves the named event-exporter factory: "jsonl",
// "metrics", or anything added through RegisterExporter.
func ExporterByName(name string) (ExporterFactory, error) {
	return exporterRegistry.lookup(name)
}

// ExporterNames lists the registered exporter names, sorted.
func ExporterNames() []string { return exporterRegistry.names() }

// ExperimentProtoByName resolves a name to the harness protocol selector
// used by ExperimentSpec ("native", "coord", "mlog", "hydee").
func ExperimentProtoByName(name string) (ExperimentProto, error) {
	return harness.ProtoByName(strings.ToLower(name))
}
