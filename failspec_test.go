package hydee_test

import (
	"errors"
	"testing"

	"hydee"
)

func TestParseFailureSpec(t *testing.T) {
	events, err := hydee.ParseFailureSpec("vt:1.5ms@3; sends:10@0,7; ckpts:2@8")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].When.AtVT != hydee.Time(1500*1000) {
		t.Errorf("vt trigger = %v, want 1.5ms", events[0].When.AtVT)
	}
	if got := events[1].Ranks; len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Errorf("ranks = %v, want [0 7]", got)
	}
	if events[1].When.AfterSends != 10 || events[2].When.AfterCheckpoints != 2 {
		t.Errorf("triggers = %+v %+v", events[1].When, events[2].When)
	}
	if ev, err := hydee.ParseFailureSpec(""); err != nil || ev != nil {
		t.Errorf("empty spec: %v %v", ev, err)
	}
}

func TestParseFailureSpecTypedErrors(t *testing.T) {
	for _, spec := range []string{
		"vt:1.5ms",    // no ranks
		"later@3",     // no trigger kind
		"vt:-3ms@1",   // negative duration
		"vt:soon@1",   // unparsable duration
		"sends:0@1",   // non-positive count
		"ckpts:two@1", // unparsable count
		"epoch:5@1",   // unknown kind
		"vt:1ms@x",    // bad rank
		"vt:1ms@1;;",  // empty event
		"vt:1ms@-2",   // negative rank
	} {
		_, err := hydee.ParseFailureSpec(spec)
		var se *hydee.FailureSpecError
		if !errors.As(err, &se) {
			t.Errorf("spec %q: got %v, want *FailureSpecError", spec, err)
			continue
		}
		if se.Spec == "" || se.Reason == "" {
			t.Errorf("spec %q: error misses context: %+v", spec, se)
		}
	}
}

func TestValidateFailureEventsRange(t *testing.T) {
	events, err := hydee.ParseFailureSpec("vt:1ms@7")
	if err != nil {
		t.Fatal(err)
	}
	if err := hydee.ValidateFailureEvents(events, 8); err != nil {
		t.Errorf("rank 7 of 8 rejected: %v", err)
	}
	if err := hydee.ValidateFailureEvents(events, 4); err == nil {
		t.Error("rank 7 of 4 accepted")
	}
}

// TestWithFailureAtInjectsAtVirtualTime drives the option end to end: the
// failure fires once the victim's clock passes the given virtual time and
// the cluster recovers.
func TestWithFailureAtInjectsAtVirtualTime(t *testing.T) {
	eng, err := hydee.New(
		hydee.WithTopology(hydee.NewTopology([]int{0, 0, 1, 1})),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithModel(hydee.IdealNetwork()),
		hydee.WithFailureAt(hydee.Time(150*hydee.Microsecond), 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	prog := func(c *hydee.Comm) error {
		for i := 0; i < 3; i++ {
			if err := c.Compute(100 * hydee.Microsecond); err != nil {
				return err
			}
		}
		c.SetResult(c.Rank())
		return nil
	}
	res, err := eng.Run(t.Context(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds %d, want 1", len(res.Rounds))
	}
	if res.Rounds[0].StartVT < hydee.Time(150*hydee.Microsecond) {
		t.Errorf("detection VT %v before the scheduled time", res.Rounds[0].StartVT)
	}
	if res.Totals.Restarts != 2 {
		t.Errorf("restarts %d, want the 2 ranks of cluster 1", res.Totals.Restarts)
	}
}

// TestWithFailureAtAccumulates checks the schedule assembly: repeated
// WithFailureAt options append, and they compose with WithFailures.
func TestWithFailureAtAccumulates(t *testing.T) {
	eng, err := hydee.New(
		hydee.WithRanks(8),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithTopology(hydee.Singletons(8)),
		hydee.WithFailures(hydee.NewFailureSchedule(
			hydee.FailureEvent{Ranks: []int{0}, When: hydee.FailureTrigger{AfterSends: 5}},
		)),
		hydee.WithFailureAt(hydee.Time(hydee.Millisecond), 2),
		hydee.WithFailureAt(hydee.Time(2*hydee.Millisecond), 4, 6),
	)
	if err != nil {
		t.Fatal(err)
	}
	events := eng.Config().Failures.Events
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (WithFailures + 2x WithFailureAt)", len(events))
	}
	if events[1].When.AtVT != hydee.Time(hydee.Millisecond) || len(events[2].Ranks) != 2 {
		t.Errorf("accumulated events wrong: %+v", events)
	}
}

func TestWithFailureAtValidation(t *testing.T) {
	if _, err := hydee.New(hydee.WithRanks(2), hydee.WithFailureAt(0, 1)); err == nil {
		t.Error("accepted non-positive virtual time")
	}
	if _, err := hydee.New(hydee.WithRanks(2), hydee.WithFailureAt(hydee.Time(hydee.Millisecond))); err == nil {
		t.Error("accepted empty victim list")
	}
	// Range errors surface at New, not at the first run.
	if _, err := hydee.New(hydee.WithRanks(2), hydee.WithProtocol(hydee.HydEE()),
		hydee.WithFailureAt(hydee.Time(hydee.Millisecond), 5)); err == nil {
		t.Error("accepted out-of-range victim rank")
	}
}
