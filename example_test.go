package hydee_test

import (
	"context"
	"fmt"

	"hydee"
)

// ExampleRun runs a two-cluster ring under HydEE, kills a rank, and shows
// that recovery is contained to one cluster and bit-exact.
func ExampleRun() {
	topo := hydee.NewTopology([]int{0, 0, 1, 1})
	cfg := hydee.Config{
		NP:              4,
		Topo:            topo,
		Protocol:        hydee.HydEE(),
		Model:           hydee.Myrinet10G(),
		CheckpointEvery: 3,
	}
	clean, err := hydee.Run(cfg, hydee.RingProgram(9, 4096))
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg.Failures = hydee.NewFailureSchedule(hydee.FailureEvent{
		Ranks: []int{3},
		When:  hydee.FailureTrigger{AfterCheckpoints: 1},
	})
	failed, err := hydee.Run(cfg, hydee.RingProgram(9, 4096))
	if err != nil {
		fmt.Println(err)
		return
	}
	same := true
	for r := range clean.Results {
		if clean.Results[r] != failed.Results[r] {
			same = false
		}
	}
	fmt.Printf("rolled back %d of 4 ranks; results identical: %v\n",
		failed.Rounds[0].RolledBack, same)
	// Output:
	// rolled back 2 of 4 ranks; results identical: true
}

// ExampleNew is the Engine-based equivalent of ExampleRun: build one
// engine per configuration with functional options, run under a context.
func ExampleNew() {
	ctx := context.Background()
	topo := hydee.NewTopology([]int{0, 0, 1, 1})
	base := []hydee.Option{
		hydee.WithTopology(topo),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithModel(hydee.Myrinet10G()),
		hydee.WithCheckpointEvery(3),
	}
	cleanEng, err := hydee.New(base...)
	if err != nil {
		fmt.Println(err)
		return
	}
	clean, err := cleanEng.Run(ctx, hydee.RingProgram(9, 4096))
	if err != nil {
		fmt.Println(err)
		return
	}
	failEng, err := hydee.New(append(base, hydee.WithFailureEvents(hydee.FailureEvent{
		Ranks: []int{3},
		When:  hydee.FailureTrigger{AfterCheckpoints: 1},
	}))...)
	if err != nil {
		fmt.Println(err)
		return
	}
	failed, err := failEng.Run(ctx, hydee.RingProgram(9, 4096))
	if err != nil {
		fmt.Println(err)
		return
	}
	same := true
	for r := range clean.Results {
		if clean.Results[r] != failed.Results[r] {
			same = false
		}
	}
	fmt.Printf("rolled back %d of 4 ranks; results identical: %v\n",
		failed.Rounds[0].RolledBack, same)
	// Output:
	// rolled back 2 of 4 ranks; results identical: true
}

// ExampleCluster partitions a hand-built communication graph the way the
// paper's off-line tool does for Table I.
func ExampleCluster() {
	// Two groups of four ranks with heavy internal traffic and one weak
	// link between them.
	g := hydee.NewCommGraph(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddTraffic(i, j, 1000)
			g.AddTraffic(i+4, j+4, 1000)
		}
	}
	g.AddTraffic(3, 4, 100)
	res := hydee.Cluster(g, hydee.DefaultClusterOptions())
	fmt.Printf("clusters: %d, logged fraction: %.3f\n", res.K, res.CutFrac)
	// Output:
	// clusters: 2, logged fraction: 0.008
}
