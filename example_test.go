package hydee_test

import (
	"fmt"

	"hydee"
)

// ExampleRun runs a two-cluster ring under HydEE, kills a rank, and shows
// that recovery is contained to one cluster and bit-exact.
func ExampleRun() {
	topo := hydee.NewTopology([]int{0, 0, 1, 1})
	cfg := hydee.Config{
		NP:              4,
		Topo:            topo,
		Protocol:        hydee.HydEE(),
		Model:           hydee.Myrinet10G(),
		CheckpointEvery: 3,
	}
	clean, err := hydee.Run(cfg, hydee.RingProgram(9, 4096))
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg.Failures = hydee.NewFailureSchedule(hydee.FailureEvent{
		Ranks: []int{3},
		When:  hydee.FailureTrigger{AfterCheckpoints: 1},
	})
	failed, err := hydee.Run(cfg, hydee.RingProgram(9, 4096))
	if err != nil {
		fmt.Println(err)
		return
	}
	same := true
	for r := range clean.Results {
		if clean.Results[r] != failed.Results[r] {
			same = false
		}
	}
	fmt.Printf("rolled back %d of 4 ranks; results identical: %v\n",
		failed.Rounds[0].RolledBack, same)
	// Output:
	// rolled back 2 of 4 ranks; results identical: true
}

// ExampleCluster partitions a hand-built communication graph the way the
// paper's off-line tool does for Table I.
func ExampleCluster() {
	// Two groups of four ranks with heavy internal traffic and one weak
	// link between them.
	g := hydee.NewCommGraph(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddTraffic(i, j, 1000)
			g.AddTraffic(i+4, j+4, 1000)
		}
	}
	g.AddTraffic(3, 4, 100)
	res := hydee.Cluster(g, hydee.DefaultClusterOptions())
	fmt.Printf("clusters: %d, logged fraction: %.3f\n", res.K, res.CutFrac)
	// Output:
	// clusters: 2, logged fraction: 0.008
}
