package hydee_test

// Tests for the Engine-based public API: option application, engine reuse,
// context cancellation with goroutine reaping, registries, typed errors
// and lifecycle observation.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"hydee"
)

func TestEngineOptionOrder(t *testing.T) {
	// Later options override earlier ones.
	eng, err := hydee.New(
		hydee.WithRanks(2),
		hydee.WithCheckpointEvery(3),
		hydee.WithCheckpointEvery(7),
		hydee.WithModelName("ideal"),
		hydee.WithModel(hydee.Myrinet10G()),
		hydee.WithProtocolName("coord"),
		hydee.WithProtocol(hydee.HydEE()),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := eng.Config()
	if cfg.CheckpointEvery != 7 {
		t.Errorf("CheckpointEvery = %d, want last-wins 7", cfg.CheckpointEvery)
	}
	if cfg.Model.Name() != hydee.Myrinet10G().Name() {
		t.Errorf("Model = %q, want the later Myrinet10G option", cfg.Model.Name())
	}
	if cfg.Protocol.Name() != "hydee" {
		t.Errorf("Protocol = %q, want the later HydEE option", cfg.Protocol.Name())
	}
}

func TestEngineOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []hydee.Option
	}{
		{"no ranks", nil},
		{"bad ranks", []hydee.Option{hydee.WithRanks(-1)}},
		{"nil topology", []hydee.Option{hydee.WithTopology(nil)}},
		{"unknown protocol", []hydee.Option{hydee.WithRanks(2), hydee.WithProtocolName("paxos")}},
		{"unknown model", []hydee.Option{hydee.WithRanks(2), hydee.WithModelName("infiniband")}},
		{"negative ckpt", []hydee.Option{hydee.WithRanks(2), hydee.WithCheckpointEvery(-1)}},
		{"negative watchdog", []hydee.Option{hydee.WithRanks(2), hydee.WithWatchdog(-time.Second)}},
		{"topology mismatch", []hydee.Option{hydee.WithRanks(3), hydee.WithTopology(hydee.SingleCluster(2))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := hydee.New(tc.opts...); err == nil {
				t.Fatal("New accepted an invalid configuration")
			}
		})
	}
}

func TestEngineRanksDerivedFromTopology(t *testing.T) {
	eng, err := hydee.New(hydee.WithTopology(hydee.NewTopology([]int{0, 0, 1, 1})))
	if err != nil {
		t.Fatal(err)
	}
	if np := eng.Config().NP; np != 4 {
		t.Errorf("NP = %d, want 4 from the topology", np)
	}
}

func TestEngineReuseSequentialRuns(t *testing.T) {
	topo := hydee.NewTopology([]int{0, 0, 1, 1})
	eng, err := hydee.New(
		hydee.WithTopology(topo),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithModel(hydee.Myrinet10G()),
		hydee.WithCheckpointEvery(3),
		hydee.WithFailureEvents(hydee.FailureEvent{
			Ranks: []int{2}, When: hydee.FailureTrigger{AfterCheckpoints: 1},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	prog := hydee.StencilProgram(6, 4096)
	ctx := context.Background()
	first, err := eng.Run(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := eng.Run(ctx, prog)
		if err != nil {
			t.Fatalf("reuse run %d: %v", i, err)
		}
		// Fresh store and fresh injector per run: the failure fires every
		// time and the recovered digests stay bit-identical (makespan of a
		// failure run may vary with control-message scheduling).
		if len(res.Rounds) != 1 {
			t.Fatalf("reuse run %d: rounds %+v, want the schedule to fire afresh", i, res.Rounds)
		}
		for r := range res.Results {
			if res.Results[r] != first.Results[r] {
				t.Errorf("reuse run %d: rank %d digest diverged", i, r)
			}
		}
	}

	// Without checkpoint/control traffic a run is fully deterministic,
	// makespan included (out-of-band marker arrivals interleave clock
	// merges nondeterministically, which is why the checkpointed case
	// above compares digests only).
	clean, err := hydee.New(
		hydee.WithTopology(topo),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithModel(hydee.Myrinet10G()),
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := clean.Run(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := clean.Run(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Totals != b.Totals {
		t.Errorf("failure-free reuse diverged: %v/%v vs %v/%v", a.Makespan, a.Totals, b.Makespan, b.Totals)
	}
}

func TestEngineCancelReturnsFastAndReapsGoroutines(t *testing.T) {
	// A deliberately deadlocked program: every rank waits for a message
	// nobody sends. Cancellation must unwind all rank goroutines and
	// return well within 100ms.
	deadlocked := func(c *hydee.Comm) error {
		_, _, err := c.Recv((c.Rank()+1)%c.Size(), 1)
		return err
	}
	eng, err := hydee.New(hydee.WithRanks(16), hydee.WithWatchdog(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, deadlocked)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let every rank block
	start := time.Now()
	cancel()
	var runErr error
	select {
	case runErr = <-errCh:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if took := time.Since(start); took > 100*time.Millisecond {
		t.Errorf("Run returned %v after cancel, want < 100ms", took)
	}
	if !errors.Is(runErr, hydee.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", runErr)
	}
	var re *hydee.RunError
	if !errors.As(runErr, &re) || re.Phase != hydee.PhaseSupervise {
		t.Errorf("want *RunError in phase %q, got %#v", hydee.PhaseSupervise, runErr)
	}
	// All rank goroutines must be reaped.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEngineObserverLifecycle(t *testing.T) {
	var mu sync.Mutex
	counts := map[hydee.RunEventKind]int{}
	eng, err := hydee.New(
		hydee.WithTopology(hydee.NewTopology([]int{0, 0, 1, 1})),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithCheckpointEvery(3),
		hydee.WithFailureEvents(hydee.FailureEvent{
			Ranks: []int{2}, When: hydee.FailureTrigger{AfterCheckpoints: 1},
		}),
		hydee.WithObserver(hydee.ObserverFunc(func(ev hydee.RunEvent) {
			mu.Lock()
			counts[ev.Kind]++
			mu.Unlock()
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), hydee.StencilProgram(6, 4096)); err != nil {
		t.Fatal(err)
	}
	if counts[hydee.EvRunStart] != 1 || counts[hydee.EvRunComplete] != 1 {
		t.Errorf("run boundary events: %v", counts)
	}
	if counts[hydee.EvCheckpoint] == 0 {
		t.Error("no checkpoint events")
	}
	if counts[hydee.EvFailure] != 1 {
		t.Errorf("failure events = %d, want 1", counts[hydee.EvFailure])
	}
	if counts[hydee.EvRecoveryStart] != 1 || counts[hydee.EvRecoveryEnd] != 1 {
		t.Errorf("recovery events: %v", counts)
	}
	if counts[hydee.EvRankFinished] < 4 {
		t.Errorf("rank-finished events = %d, want >= 4", counts[hydee.EvRankFinished])
	}
}

func TestRegistries(t *testing.T) {
	for _, name := range []string{"hydee", "coord", "mlog", "native", "HydEE"} {
		p, err := hydee.ProtocolByName(name)
		if err != nil || p == nil {
			t.Errorf("ProtocolByName(%q): %v", name, err)
		}
	}
	if _, err := hydee.ProtocolByName("chandy-lamport"); err == nil {
		t.Error("unknown protocol accepted")
	}
	for _, name := range []string{"myrinet10g", "myrinet", "tcpgige", "gige", "ideal", "Ideal"} {
		m, err := hydee.ModelByName(name)
		if err != nil || m == nil {
			t.Errorf("ModelByName(%q): %v", name, err)
		}
	}
	if _, err := hydee.ModelByName("infiniband"); err == nil {
		t.Error("unknown model accepted")
	}
	for _, name := range []string{"native", "coord", "mlog", "hydee"} {
		p, err := hydee.ExperimentProtoByName(name)
		if err != nil || p.String() != name {
			t.Errorf("ExperimentProtoByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := hydee.ExperimentProtoByName("bogus"); err == nil {
		t.Error("unknown experiment proto accepted")
	}
	if len(hydee.ProtocolNames()) < 4 || len(hydee.ModelNames()) < 3 {
		t.Errorf("registry listings too short: %v %v", hydee.ProtocolNames(), hydee.ModelNames())
	}
}

func TestRunShimStillWorks(t *testing.T) {
	// The legacy struct-based entry point must keep compiling and running.
	res, err := hydee.Run(hydee.Config{NP: 2}, func(c *hydee.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte{42})
		}
		_, _, err := c.Recv(0, 1)
		return err
	})
	if err != nil || res == nil {
		t.Fatalf("shim run: %v", err)
	}
}

func TestCheckSendDeterminism(t *testing.T) {
	run := func(prog hydee.Program, np int) *hydee.EventRecorder {
		rec := hydee.NewEventRecorder(np)
		eng, err := hydee.New(hydee.WithRanks(np), hydee.WithRecorder(rec))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background(), prog); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	ring := hydee.RingProgram(5, 1024)
	a, b := run(ring, 4), run(ring, 4)
	if err := hydee.CheckSendDeterminism(a, b); err != nil {
		t.Errorf("deterministic program flagged: %v", err)
	}
	// Different programs produce different send sequences.
	c := run(hydee.RingProgram(7, 1024), 4)
	err := hydee.CheckSendDeterminism(a, c)
	if !errors.Is(err, hydee.ErrNotSendDeterministic) {
		t.Errorf("want ErrNotSendDeterministic, got %v", err)
	}
}
