package hydee_test

// Tests for the streaming observer exporters: JSONL event framing, the
// metrics summary, and context-carried wiring through sweep helpers.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hydee"
)

func runWithExporter(t *testing.T, exp hydee.Exporter) {
	t.Helper()
	eng, err := hydee.New(failingEngineOpts(hydee.WithObserver(exp))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), hydee.StencilProgram(8, 4096)); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLExporter(t *testing.T) {
	var buf bytes.Buffer
	exp := hydee.NewJSONLExporter(&buf)
	runWithExporter(t, exp)
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		kind, _ := rec["kind"].(string)
		if kind == "" {
			t.Fatalf("line without kind: %q", sc.Text())
		}
		kinds[kind]++
		if kind == "recovery-end" {
			if _, ok := rec["rolled_back"]; !ok {
				t.Errorf("recovery-end line misses round stats: %q", sc.Text())
			}
		}
	}
	if kinds["run-start"] != 1 || kinds["run-complete"] != 1 {
		t.Errorf("run boundary lines: %v", kinds)
	}
	if kinds["checkpoint"] == 0 || kinds["failure"] != 1 || kinds["recovery-end"] != 1 {
		t.Errorf("lifecycle lines: %v", kinds)
	}
}

func TestMetricsExporter(t *testing.T) {
	var buf bytes.Buffer
	exp := hydee.NewMetricsExporter(&buf)
	runWithExporter(t, exp)
	runWithExporter(t, exp) // a second run accumulates
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	var m hydee.RunMetrics
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("summary %q: %v", buf.String(), err)
	}
	if m.Runs != 2 || m.Aborted != 0 {
		t.Errorf("runs = %d/%d aborted, want 2/0", m.Runs, m.Aborted)
	}
	if m.Failures != 2 || m.Recoveries != 2 || m.RolledBack != 4 {
		t.Errorf("failure accounting: %+v", m)
	}
	if m.Checkpoints == 0 || m.MaxMakespanVT <= 0 || m.SumMakespanVT < 2*m.MaxMakespanVT {
		t.Errorf("aggregates: %+v", m)
	}
}

// TestContextObserverReachesSweeps drives a parallel multi-spec sweep
// under a context-carried exporter — the -events wiring of the cmd
// binaries — and checks every run reported its lifecycle.
func TestContextObserverReachesSweeps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	ctx, closeEvents, err := hydee.StreamEventsToFile(context.Background(), "jsonl", path)
	if err != nil {
		t.Fatal(err)
	}
	k, err := hydee.KernelByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	specs := []hydee.ExperimentSpec{
		{Kernel: k, Params: hydee.KernelParams{NP: 8, Iters: 2}, Proto: hydee.ProtoNative},
		{Kernel: k, Params: hydee.KernelParams{NP: 8, Iters: 2}, Proto: hydee.ProtoCoord},
	}
	if _, err := hydee.RunExperiments(ctx, specs, 2); err != nil {
		t.Fatal(err)
	}
	if err := closeEvents(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	starts, completes := 0, 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var rec struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		switch rec.Kind {
		case "run-start":
			starts++
		case "run-complete":
			completes++
		}
	}
	if starts != len(specs) || completes != len(specs) {
		t.Errorf("observed %d starts / %d completes, want %d each", starts, completes, len(specs))
	}
}

// TestContextObserverComposes checks a context observer does not replace
// a run's own observer — both see the events — and that nil observers
// are ignored.
func TestContextObserverComposes(t *testing.T) {
	var own, viaCtx int
	ctx := hydee.ContextWithObserver(context.Background(), hydee.ObserverFunc(func(ev hydee.RunEvent) {
		viaCtx++
	}))
	ctx = hydee.ContextWithObserver(ctx, nil) // no-op
	eng, err := hydee.New(
		hydee.WithRanks(2),
		hydee.WithObserver(hydee.ObserverFunc(func(ev hydee.RunEvent) { own++ })),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, hydee.RingProgram(3, 64)); err != nil {
		t.Fatal(err)
	}
	if own == 0 || own != viaCtx {
		t.Errorf("own observer saw %d events, context observer %d; want equal and nonzero", own, viaCtx)
	}
}

// TestStreamEventsToDirSplitsPerRun drives a parallel sweep through a
// run-dir exporter and checks each run's lifecycle lands in its own file,
// internally consistent (one run id, run-start through run-complete).
func TestStreamEventsToDirSplitsPerRun(t *testing.T) {
	dir := t.TempDir()
	ctx, closeEvents, err := hydee.StreamEventsToDir(context.Background(), "jsonl", dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]hydee.ExperimentSpec, 3)
	for i := range specs {
		k, kerr := hydee.KernelByName("cg")
		if kerr != nil {
			t.Fatal(kerr)
		}
		specs[i] = hydee.ExperimentSpec{Kernel: k, Params: hydee.KernelParams{NP: 8, Iters: 2 + i}, Proto: hydee.ProtoNative}
	}
	if _, err := hydee.RunExperiments(ctx, specs, 3); err != nil {
		t.Fatal(err)
	}
	if err := closeEvents(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "run-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(specs) {
		t.Fatalf("got %d per-run files, want %d: %v", len(files), len(specs), files)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		runIDs := map[float64]bool{}
		kinds := map[string]int{}
		sc := bufio.NewScanner(bytes.NewReader(data))
		for sc.Scan() {
			var rec map[string]any
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("%s: bad line %q: %v", f, sc.Text(), err)
			}
			id, _ := rec["run"].(float64)
			runIDs[id] = true
			kinds[rec["kind"].(string)]++
		}
		if len(runIDs) != 1 {
			t.Errorf("%s: events of %d runs interleaved in one file", f, len(runIDs))
		}
		if kinds["run-start"] != 1 || kinds["run-complete"] != 1 {
			t.Errorf("%s: run boundaries %v", f, kinds)
		}
	}
}

// TestRunDirExportersConcurrent drives two independent run-dir exporters
// at once — the hydee-serve shape, one per concurrent job — and checks
// the streams stay disjoint: each directory holds its own runs' files
// and no event of one sweep leaks into the other's directory.
func TestRunDirExportersConcurrent(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	const runsPer = 3
	errs := make(chan error, len(dirs))
	for _, dir := range dirs {
		go func(dir string) {
			ctx, closeEvents, err := hydee.StreamEventsToDir(context.Background(), "jsonl", dir)
			if err != nil {
				errs <- err
				return
			}
			specs := make([]hydee.ExperimentSpec, runsPer)
			for i := range specs {
				k, kerr := hydee.KernelByName("cg")
				if kerr != nil {
					errs <- kerr
					return
				}
				specs[i] = hydee.ExperimentSpec{Kernel: k, Params: hydee.KernelParams{NP: 8, Iters: 2}, Proto: hydee.ProtoNative}
			}
			if _, err := hydee.RunExperiments(ctx, specs, runsPer); err != nil {
				errs <- err
				return
			}
			errs <- closeEvents()
		}(dir)
	}
	for range dirs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]string{} // file base name → dir (run ids are process-global, so no overlap)
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "run-*.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != runsPer {
			t.Fatalf("%s: %d per-run files, want %d", dir, len(files), runsPer)
		}
		for _, f := range files {
			base := filepath.Base(f)
			if other, dup := seen[base]; dup {
				t.Errorf("run file %s appears in both %s and %s", base, other, dir)
			}
			seen[base] = dir
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			starts, completes := 0, 0
			sc := bufio.NewScanner(bytes.NewReader(data))
			for sc.Scan() {
				var rec struct {
					Kind string `json:"kind"`
				}
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					t.Fatalf("%s: bad line %q: %v", f, sc.Text(), err)
				}
				switch rec.Kind {
				case "run-start":
					starts++
				case "run-complete":
					completes++
				}
			}
			if starts != 1 || completes != 1 {
				t.Errorf("%s: %d starts / %d completes, want 1 each", f, starts, completes)
			}
		}
	}
}

// TestFanoutExporter covers the replay hub behind the SSE endpoint: a
// late subscriber replays the full history, a subscriber that never
// reads doesn't block OnEvent, cancel unblocks, and Close terminates
// every stream after its replay drains.
func TestFanoutExporter(t *testing.T) {
	hub := hydee.NewFanoutExporter()

	// A subscriber that never reads: OnEvent must not block on it.
	_, cancelStuck := hub.Subscribe()
	defer cancelStuck()

	live, cancelLive := hub.Subscribe()
	defer cancelLive()
	runWithExporter(t, hub)
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}

	var liveCount int
	for range live {
		liveCount++
	}
	if liveCount == 0 {
		t.Fatal("live subscriber saw no events")
	}
	if got := len(hub.Events()); got != liveCount {
		t.Errorf("retained %d events, subscriber saw %d", got, liveCount)
	}

	// Late subscriber, after Close: full replay, then the channel closes.
	late, cancelLate := hub.Subscribe()
	defer cancelLate()
	var lateCount int
	for range late {
		lateCount++
	}
	if lateCount != liveCount {
		t.Errorf("late subscriber replayed %d events, want %d", lateCount, liveCount)
	}

	// Cancel unblocks a subscriber promptly even though the hub is idle.
	ch, cancel := hub.Subscribe()
	drained := 0
	for range ch {
		drained++
		if drained == 1 {
			cancel()
		}
	}

	// The wire form matches the JSONL files byte for byte.
	ev := hub.Events()[0]
	data, err := hydee.MarshalRunEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	exp := hydee.NewJSONLExporter(&buf)
	exp.OnEvent(ev)
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if want := bytes.TrimRight(buf.Bytes(), "\n"); !bytes.Equal(data, want) {
		t.Errorf("MarshalRunEvent: %s\njsonl exporter: %s", data, want)
	}
}

// TestStreamEventsEdgeCases: an existing directory without a trailing
// separator still selects per-run files, and an unknown exporter name
// fails up front in both dir and file modes.
func TestStreamEventsEdgeCases(t *testing.T) {
	dir := t.TempDir() // exists, no trailing separator
	ctx, closeEvents, err := hydee.StreamEvents(context.Background(), "jsonl", dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := hydee.New(hydee.WithRanks(4), hydee.WithModel(hydee.IdealNetwork()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, hydee.RingProgram(2, 64)); err != nil {
		t.Fatal(err)
	}
	if err := closeEvents(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "run-*.jsonl"))
	if len(files) != 1 {
		t.Fatalf("existing dir selected %d per-run files, want 1", len(files))
	}

	if _, _, err := hydee.StreamEvents(context.Background(), "no-such-exporter", dir); err == nil {
		t.Error("unknown exporter in dir mode: no error")
	}
	if _, _, err := hydee.StreamEvents(context.Background(), "no-such-exporter", filepath.Join(dir, "f.jsonl")); err == nil {
		t.Error("unknown exporter in file mode: no error")
	}
}

// TestStreamEventsAutoDetectsDirectory checks the -events flag wiring: a
// trailing separator selects per-run files, a plain path one fan-in file.
func TestStreamEventsAutoDetectsDirectory(t *testing.T) {
	base := t.TempDir()
	ctx, closeEvents, err := hydee.StreamEvents(context.Background(), "jsonl", filepath.Join(base, "events")+string(os.PathSeparator))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := hydee.New(hydee.WithRanks(4), hydee.WithModel(hydee.IdealNetwork()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, hydee.RingProgram(2, 64)); err != nil {
		t.Fatal(err)
	}
	if err := closeEvents(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(base, "events", "run-*.jsonl"))
	if len(files) != 1 {
		t.Fatalf("dir mode produced %d files, want 1", len(files))
	}

	plain := filepath.Join(base, "flat.jsonl")
	ctx2, closeEvents2, err := hydee.StreamEvents(context.Background(), "jsonl", plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx2, hydee.RingProgram(2, 64)); err != nil {
		t.Fatal(err)
	}
	if err := closeEvents2(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(plain); err != nil {
		t.Fatalf("file mode: %v", err)
	}
}
