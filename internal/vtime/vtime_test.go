package vtime

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	c.Advance(10 * Microsecond)
	if got := c.Now(); got != Time(10000) {
		t.Fatalf("got %d, want 10000", got)
	}
	c.Advance(-5) // negative durations are ignored
	if got := c.Now(); got != Time(10000) {
		t.Fatalf("negative advance moved the clock: %d", got)
	}
	c.Advance(0)
	if got := c.Now(); got != Time(10000) {
		t.Fatalf("zero advance moved the clock: %d", got)
	}
}

func TestClockMergeAtLeast(t *testing.T) {
	c := NewClock(100)
	c.MergeAtLeast(50)
	if c.Now() != 100 {
		t.Fatalf("merge moved clock backwards: %v", c.Now())
	}
	c.MergeAtLeast(200)
	if c.Now() != 200 {
		t.Fatalf("merge did not move clock forward: %v", c.Now())
	}
}

func TestClockSet(t *testing.T) {
	c := NewClock(100)
	c.Set(42)
	if c.Now() != 42 {
		t.Fatalf("set failed: %v", c.Now())
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(1000)
	if tm.Add(500) != Time(1500) {
		t.Fatal("Add failed")
	}
	if tm.Sub(Time(400)) != Duration(600) {
		t.Fatal("Sub failed")
	}
	if tm.Max(2000) != Time(2000) || Time(3000).Max(tm) != Time(3000) {
		t.Fatal("Max failed")
	}
}

func TestUnitsAndConversions(t *testing.T) {
	if Second != 1e9*Nanosecond {
		t.Fatal("unit mismatch")
	}
	if got := Time(2_500_000_000).Seconds(); got != 2.5 {
		t.Fatalf("Seconds: %v", got)
	}
	if got := Duration(1500).Micros(); got != 1.5 {
		t.Fatalf("Micros: %v", got)
	}
}

func TestFormatting(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{12_345, "12.35µs"},
		{12_345_678, "12.35ms"},
		{12_345_678_901, "12.346s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d: got %q want %q", int64(c.d), got, c.want)
		}
	}
}

// Property: MergeAtLeast is idempotent and monotone; Advance of positive
// durations is strictly monotone.
func TestClockProperties(t *testing.T) {
	f := func(start int64, merges []int64, adv uint16) bool {
		c := NewClock(Time(start))
		prev := c.Now()
		for _, m := range merges {
			c.MergeAtLeast(Time(m))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
			before := c.Now()
			c.MergeAtLeast(Time(m)) // idempotent
			if c.Now() != before {
				return false
			}
		}
		before := c.Now()
		c.Advance(Duration(adv))
		return c.Now() == before.Add(Duration(adv))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
