// Package vtime provides the virtual-time primitives used by the simulated
// message-passing runtime.
//
// Every simulated process owns a Clock. Local work advances the clock by a
// model-computed duration; receiving a message merges the sender-side
// arrival stamp with a Lamport-style max rule. All protocol measurements in
// this repository (latency, bandwidth, makespan, recovery time) are
// expressed in virtual nanoseconds, which makes experiment output
// deterministic and independent of host load.
package vtime

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// run. The zero value is the beginning of the execution.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenience duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Max returns the later of t and u.
func (t Time) Max(u Time) Time {
	if t > u {
		return t
	}
	return u
}

// Seconds reports the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros reports the time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return fmtDuration(int64(t)) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros reports the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

func (d Duration) String() string { return fmtDuration(int64(d)) }

func fmtDuration(ns int64) string {
	switch {
	case ns < 10_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 10_000_000:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	case ns < 10_000_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	}
}

// Clock is the virtual clock of one simulated process. It is owned by a
// single goroutine; methods are not safe for concurrent use.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at start.
func NewClock(start Time) *Clock { return &Clock{now: start} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored so
// that cost models may return zero/negative corrections safely.
func (c *Clock) Advance(d Duration) {
	if d > 0 {
		c.now += Time(d)
	}
}

// MergeAtLeast moves the clock to t if t is later than the current time.
// It is the Lamport max-merge applied on message arrival.
func (c *Clock) MergeAtLeast(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Set forces the clock to t. Used when restoring a process from a
// checkpoint.
func (c *Clock) Set(t Time) { c.now = t }
