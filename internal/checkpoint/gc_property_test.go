package checkpoint

import (
	"math/rand"
	"sync"
	"testing"

	"hydee/internal/vtime"
)

// Property test for store GC racing failures (ROADMAP item): cluster
// members write checkpoint generations concurrently — lagging each other by
// at most one sequence, as the coordinated protocol's flush markers
// guarantee — while store GC prunes old generations. A failure may strike
// at ANY interleaving point, killing each member before or after its
// current save, and the supervisor then restores every member from the
// minimum sequence completed by all of them (read via LatestSeq, exactly
// what launchRound does). That snapshot must always still be loadable: if
// GC ever reclaims it, the restart lands in ErrCheckpointLost territory.

// runGCProperty drives one cluster through maxSeq generations with a
// randomized real-time schedule and a randomized kill point, then asserts
// the min-completed sequence of the cluster is loadable for every member.
func runGCProperty(t *testing.T, st Store, seed int64, ranks []int, maxSeq int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// The kill strikes somewhere inside a random generation: each member
	// independently either completes its save for that generation or dies
	// just before it (spread stays <= 1 thanks to the round gate below).
	killSeq := 2 + rng.Intn(maxSeq-2)
	killedBeforeSave := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		killedBeforeSave[r] = rng.Intn(2) == 0
	}

	var mu sync.Mutex
	roundDone := make([]chan struct{}, maxSeq+2)
	for i := range roundDone {
		roundDone[i] = make(chan struct{})
	}
	finishCounts := make([]int, maxSeq+2)
	markDone := func(seq, members int) {
		mu.Lock()
		finishCounts[seq]++
		if finishCounts[seq] == members {
			close(roundDone[seq])
		}
		mu.Unlock()
	}

	// How many members survive to complete each round's gate: members that
	// die before their killSeq save never reach markDone for killSeq.
	aliveAt := func(seq int) int {
		if seq < killSeq {
			return len(ranks)
		}
		n := 0
		for _, r := range ranks {
			if !killedBeforeSave[r] {
				n++
			}
		}
		return n
	}

	var wg sync.WaitGroup
	for _, r := range ranks {
		wg.Add(1)
		go func(r int, rng *rand.Rand) {
			defer wg.Done()
			for seq := 1; seq <= killSeq; seq++ {
				if seq > 1 {
					<-roundDone[seq-1] // cluster coordination barrier
				}
				if seq == killSeq && killedBeforeSave[r] {
					return // fail-stop just before this generation's save
				}
				// Jitter the real-time interleaving of the saves.
				for i := 0; i < rng.Intn(200); i++ {
					_ = i
				}
				snap := &Snapshot{Rank: r, Seq: seq, ModelBytes: int64(1000 + rng.Intn(1000))}
				if _, err := st.Save(snap, vtime.Time(seq)); err != nil {
					t.Errorf("rank %d seq %d: %v", r, seq, err)
					return
				}
				markDone(seq, aliveAt(seq))
			}
		}(r, rand.New(rand.NewSource(seed^int64(r<<16))))
	}
	wg.Wait()

	// The failure round: restore from the minimum completed sequence.
	min := 0
	for i, r := range ranks {
		seq := st.LatestSeq(r)
		if i == 0 || seq < min {
			min = seq
		}
	}
	if want := killSeq - 1; min != want && min != killSeq {
		t.Fatalf("min completed = %d, want %d or %d", min, want, killSeq)
	}
	if min == 0 {
		return // restart from initial state; nothing to load
	}
	for _, r := range ranks {
		if _, _, ok := st.Load(r, min, 0); !ok {
			t.Fatalf("seed %d: rank %d: min-completed seq %d not loadable (GC raced the failure)", seed, r, min)
		}
	}
}

func TestMemStoreGCNeverReclaimsMinCompletedSeq(t *testing.T) {
	for seed := int64(1); seed <= 32; seed++ {
		runGCProperty(t, NewMemStore(0, 0), seed, []int{0, 1, 2, 3}, 40)
	}
}

func TestFileStoreGCNeverReclaimsMinCompletedSeq(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		st, err := NewFileStore(t.TempDir(), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		runGCProperty(t, st, seed, []int{0, 1, 2}, 20)
	}
}

// TestKillRestartRestoreCycle drives the Save/kill/LatestSeq/Load cycle
// the supervisor performs deterministically: a member dies while the
// cluster is writing generation 7, so the cluster restores from 6, which
// must load for every member.
func TestKillRestartRestoreCycle(t *testing.T) {
	st := NewMemStore(0, 0)
	ranks := []int{0, 1, 2}
	for seq := 1; seq <= 7; seq++ {
		for i, r := range ranks {
			if seq == 7 && i == 2 {
				continue // rank 2 killed while writing seq 7
			}
			if _, err := st.Save(&Snapshot{Rank: r, Seq: seq, ModelBytes: 100}, vtime.Time(seq)); err != nil {
				t.Fatal(err)
			}
		}
	}
	min := 10
	for _, r := range ranks {
		if s := st.LatestSeq(r); s < min {
			min = s
		}
	}
	if min != 6 {
		t.Fatalf("min completed = %d, want 6", min)
	}
	for _, r := range ranks {
		if _, _, ok := st.Load(r, min, 0); !ok {
			t.Fatalf("rank %d: seq %d not loadable after mid-generation kill", r, min)
		}
	}
}
