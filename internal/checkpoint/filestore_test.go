package checkpoint

import (
	"testing"

	"hydee/internal/transport"
)

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{
		Rank:     2,
		Seq:      1,
		AppState: []byte{1, 2, 3},
		Mailbox:  []*transport.Msg{{Src: 0, Dst: 2, Date: 7, Data: []byte{9}}},
	}
	if _, err := st.Save(snap, 0); err != nil {
		t.Fatal(err)
	}
	got, _, ok := st.Load(2, 1, 0)
	if !ok {
		t.Fatal("snapshot not found")
	}
	if got.AppState[0] != 1 || len(got.Mailbox) != 1 || got.Mailbox[0].Date != 7 {
		t.Fatalf("round trip: %+v", got)
	}
	if st.LatestSeq(2) != 1 {
		t.Fatal("latest wrong")
	}
}

func TestFileStoreRecoversIndexFromDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 3; seq++ {
		if _, err := st.Save(&Snapshot{Rank: 5, Seq: seq}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen over the same directory: the index must be rebuilt.
	st2, err := NewFileStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.LatestSeq(5) != 3 {
		t.Fatalf("reopened latest %d", st2.LatestSeq(5))
	}
	if _, _, ok := st2.Load(5, 3, 0); !ok {
		t.Fatal("snapshot unreadable after reopen")
	}
}

func TestFileStorePrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 6; seq++ {
		if _, err := st.Save(&Snapshot{Rank: 0, Seq: seq}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := st.Load(0, 1, 0); ok {
		t.Fatal("generation 1 should be pruned")
	}
	for seq := 4; seq <= 6; seq++ {
		if _, _, ok := st.Load(0, seq, 0); !ok {
			t.Fatalf("generation %d missing", seq)
		}
	}
}
