// Package checkpoint provides process snapshots and the stable-storage
// abstraction the rollback-recovery protocols save them to.
//
// A Snapshot is what Algorithm 1 line 21 saves: the process image (the
// application state), the protocol state (RPP table, message log, phase and
// date for HydEE), and — a consequence of eager message buffering — the
// messages held in the process mailbox that have not yet been delivered to
// the application.
//
// Stores model the bandwidth of the underlying storage system with a shared
// virtual-time contention window: checkpoints written concurrently queue
// behind each other, which reproduces the I/O-burst argument the paper makes
// against globally coordinated checkpointing (§VI) and enables the
// staggered-checkpoint experiment E5.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"hydee/internal/transport"
	"hydee/internal/vtime"
)

// Snapshot is one process checkpoint.
type Snapshot struct {
	Rank int
	// Seq is the checkpoint sequence number (epoch) of this process.
	Seq int
	// TakenVT is the virtual time at capture.
	TakenVT vtime.Time
	// CkptCallIdx is the index of the cooperative checkpoint call that
	// produced this snapshot, so a restarted process resumes its schedule.
	CkptCallIdx int
	// CollSeq is the communicator's collective-operation counter, part of
	// the process image: a restarted process must tag re-executed
	// collectives exactly as the original execution did.
	CollSeq int64
	// AppState is the gob-encoded application state.
	AppState []byte
	// ProtState is the engine-encoded protocol state (opaque here).
	ProtState []byte
	// Mailbox holds the in-transit messages included in the checkpoint:
	// intra-cluster messages of the previous epoch plus all buffered
	// inter-cluster messages (see DESIGN.md deviation note 3).
	Mailbox []*transport.Msg
	// ModelBytes is the modeled size of the checkpoint for the storage
	// cost model; when zero the encoded size is used.
	ModelBytes int64
}

// EncodedSize reports the modeled encoded byte count of the snapshot. An
// in-transit message is costed at its modeled wire size (payload plus
// piggybacked protocol data) — Algorithm 1 line 21 includes in-transit
// bytes in the checkpoint volume — plus a fixed envelope overhead;
// len(m.Data) is only the (often much smaller) simulation payload and
// would understate E5's storage-bandwidth traffic.
func (s *Snapshot) EncodedSize() int64 {
	n := int64(len(s.AppState) + len(s.ProtState))
	for _, m := range s.Mailbox {
		n += int64(m.Wire()) + 64
	}
	return n
}

// CostBytes is the size used for storage timing.
func (s *Snapshot) CostBytes() int64 {
	if s.ModelBytes > 0 {
		return s.ModelBytes
	}
	return s.EncodedSize()
}

// Clone deep-copies the snapshot so later mutation of live messages cannot
// corrupt stable storage.
func (s *Snapshot) Clone() *Snapshot {
	c := *s
	c.AppState = append([]byte(nil), s.AppState...)
	c.ProtState = append([]byte(nil), s.ProtState...)
	c.Mailbox = make([]*transport.Msg, len(s.Mailbox))
	for i, m := range s.Mailbox {
		mm := *m
		mm.Data = append([]byte(nil), m.Data...)
		c.Mailbox[i] = &mm
	}
	return &c
}

// EncodeState gob-encodes an application state value.
func EncodeState(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("checkpoint: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState gob-decodes into the application state pointer.
func DecodeState(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("checkpoint: decode state: %w", err)
	}
	return nil
}

// Store is stable storage for snapshots.
//
// Restart consistency: a coordinated checkpoint is only usable once every
// member of the coordination scope has completed it. A failure can land
// while some members have saved sequence N and others are still writing, so
// the runtime restores the whole scope from the *minimum* completed
// sequence; stores therefore retain a small history per rank, not just the
// latest snapshot.
type Store interface {
	// Save persists the snapshot and returns the virtual time at which the
	// write completes, given it was issued at the process clock `at`.
	Save(s *Snapshot, at vtime.Time) (vtime.Time, error)
	// LatestSeq reports the newest snapshot sequence of the rank's
	// current save streak (0 = none). A save at or below the previous
	// latest restarts the streak — that is how a store pinned across
	// several runs reports the current run, not an earlier one.
	LatestSeq(rank int) int
	// Load returns the snapshot of rank with the given sequence. The
	// returned time is when the read completes if issued at `at`.
	Load(rank, seq int, at vtime.Time) (*Snapshot, vtime.Time, bool)
	// Stats reports aggregate store activity.
	Stats() StoreStats
}

// StoreStats aggregates store activity.
type StoreStats struct {
	Saves      int64
	SavedBytes int64
	Loads      int64
	// MaxQueue is the largest virtual-time backlog observed at a save,
	// i.e. how long a checkpoint had to wait for the shared link.
	MaxQueue vtime.Duration
}

// historyKeep is how many snapshot generations a store retains per rank.
// Two suffice for the min-sequence restore rule (a member can lag its scope
// by at most one checkpoint); three adds slack for diagnostics.
const historyKeep = 3

// MemStore is an in-memory stable store with a shared-bandwidth model.
// The zero value is unusable; use NewMemStore.
type MemStore struct {
	mu sync.Mutex
	// snaps[rank][seq] holds the retained generations.
	snaps map[int]map[int]*Snapshot
	// latest[rank] is the newest completed sequence.
	latest map[int]int
	// bytesPerSec is the aggregate write bandwidth shared by all writers;
	// zero disables timing.
	bytesPerSec float64
	readBPS     float64
	busyUntil   vtime.Time
	stats       StoreStats
}

// NewMemStore builds a store with the given aggregate write and read
// bandwidths in bytes/second (zero disables the cost model).
func NewMemStore(writeBPS, readBPS float64) *MemStore {
	return &MemStore{
		snaps:       make(map[int]map[int]*Snapshot),
		latest:      make(map[int]int),
		bytesPerSec: writeBPS,
		readBPS:     readBPS,
	}
}

// Save implements Store. Concurrent saves serialize on the shared link: a
// save issued at time t starts at max(t, busyUntil), reproducing I/O bursts.
func (st *MemStore) Save(s *Snapshot, at vtime.Time) (vtime.Time, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cp := s.Clone()
	gen := st.snaps[cp.Rank]
	if gen == nil {
		gen = make(map[int]*Snapshot)
		st.snaps[cp.Rank] = gen
	}
	gen[cp.Seq] = cp
	// latest tracks the newest sequence of the current save streak. A
	// rank's saves are strictly increasing within one run, so a save at or
	// below the recorded latest means the store is being reused by a new
	// run whose sequence space restarted (engine WithStore pinning); the
	// streak resets with it, or the GC below would prune the new run's
	// snapshots against the old run's high-water mark. The old run's
	// higher-sequence leftovers linger unpruned, which is harmless: the
	// runtime only restores sequences the current run completed.
	st.latest[cp.Rank] = cp.Seq
	for seq := range gen {
		if seq <= st.latest[cp.Rank]-historyKeep {
			delete(gen, seq)
		}
	}
	st.stats.Saves++
	st.stats.SavedBytes += cp.CostBytes()
	if st.bytesPerSec <= 0 {
		return at, nil
	}
	start := at
	if st.busyUntil > start {
		if q := st.busyUntil.Sub(at); q > st.stats.MaxQueue {
			st.stats.MaxQueue = q
		}
		start = st.busyUntil
	}
	dur := vtime.Duration(float64(cp.CostBytes()) / st.bytesPerSec * 1e9)
	end := start.Add(dur)
	st.busyUntil = end
	return end, nil
}

// LatestSeq implements Store.
func (st *MemStore) LatestSeq(rank int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.latest[rank]
}

// Load implements Store.
func (st *MemStore) Load(rank, seq int, at vtime.Time) (*Snapshot, vtime.Time, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.snaps[rank][seq]
	if !ok {
		return nil, at, false
	}
	st.stats.Loads++
	end := at
	if st.readBPS > 0 {
		end = at.Add(vtime.Duration(float64(s.CostBytes()) / st.readBPS * 1e9))
	}
	return s.Clone(), end, true
}

// Stats implements Store.
func (st *MemStore) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}
