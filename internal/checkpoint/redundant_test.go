package checkpoint

// Unit tests of the redundancy backends: erasure-coded and replicated
// stores surviving shard loss and corruption up to their redundancy, the
// fault-injection wrapper's kill/corrupt/degrade semantics, and the
// modeled-cost accounting E6 compares.

import (
	"bytes"
	"reflect"
	"testing"

	"hydee/internal/vtime"
)

// TestECStoreRoundTrip: a snapshot saved through the EC store loads back
// identically with all shards healthy.
func TestECStoreRoundTrip(t *testing.T) {
	st, err := NewECStore(4, 2, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := codecSnap(3, 1)
	if _, err := st.Save(s, 10); err != nil {
		t.Fatal(err)
	}
	got, _, ok := st.Load(3, 1, 20)
	if !ok {
		t.Fatal("load failed with all shards healthy")
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("snapshot changed through the EC store:\n  in  %+v\n  out %+v", s, got)
	}
	if st.LatestSeq(3) != 1 {
		t.Errorf("LatestSeq = %d, want 1", st.LatestSeq(3))
	}
	if st.DegradedLoads() != 0 {
		t.Errorf("healthy load counted as degraded")
	}
}

// TestECStoreSurvivesShardLoss: with k=4, m=2, loads survive any loss of
// up to 2 shards (degraded-counted) and fail with 3 shards gone.
func TestECStoreSurvivesShardLoss(t *testing.T) {
	mk := func(kill ...int) (*ECStore, Store) {
		t.Helper()
		ec, err := NewECStore(4, 2, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		faults := make([]ShardFault, len(kill))
		for i, sh := range kill {
			faults[i] = ShardFault{Shard: sh, AtVT: 500, Kind: FaultKill}
		}
		fs, err := NewFaultyStore(ec, faults...)
		if err != nil {
			t.Fatal(err)
		}
		return ec, fs
	}
	s := codecSnap(0, 1)
	for _, tc := range []struct {
		kill []int
		// degraded is 0 when the killed shards sit past the probe
		// window (parity never needed), 1 when the load had to route
		// around a loss.
		degraded int64
	}{
		{[]int{0}, 1}, {[]int{5}, 0}, {[]int{0, 1}, 1}, {[]int{2, 4}, 1},
	} {
		ec, fs := mk(tc.kill...)
		if _, err := fs.Save(s, 10); err != nil { // healthy: before the fault VT
			t.Fatal(err)
		}
		got, _, ok := fs.Load(0, 1, 1000) // after the fault VT
		if !ok {
			t.Fatalf("kill %v: load failed, want degraded success", tc.kill)
		}
		if !bytes.Equal(got.AppState, s.AppState) {
			t.Fatalf("kill %v: reconstructed snapshot corrupted", tc.kill)
		}
		if ec.DegradedLoads() != tc.degraded {
			t.Errorf("kill %v: DegradedLoads = %d, want %d", tc.kill, ec.DegradedLoads(), tc.degraded)
		}
	}
	_, fs := mk(0, 1, 2)
	if _, err := fs.Save(s, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := fs.Load(0, 1, 1000); ok {
		t.Fatal("load survived 3 lost shards with m=2")
	}
}

// TestECStoreDetectsCorruption: a corrupting shard is detected by the
// fragment checksum and routed around like a lost shard.
func TestECStoreDetectsCorruption(t *testing.T) {
	ec, err := NewECStore(2, 1, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFaultyStore(ec, ShardFault{Shard: 0, AtVT: 500, Kind: FaultCorrupt})
	if err != nil {
		t.Fatal(err)
	}
	s := codecSnap(0, 1)
	if _, err := fs.Save(s, 10); err != nil {
		t.Fatal(err)
	}
	got, _, ok := fs.Load(0, 1, 1000)
	if !ok {
		t.Fatal("load failed, want checksum-detected failover")
	}
	if !bytes.Equal(got.AppState, s.AppState) {
		t.Fatal("corrupted fragment leaked into the reconstruction")
	}
	if ec.DegradedLoads() != 1 {
		t.Errorf("DegradedLoads = %d, want 1", ec.DegradedLoads())
	}
}

// TestECStoreCostModel: physical traffic reflects the (k+m)/k overhead
// while logical counters count snapshots.
func TestECStoreCostModel(t *testing.T) {
	ec, err := NewECStore(4, 2, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := &Snapshot{Rank: 0, Seq: 1, ModelBytes: 4000}
	if _, err := ec.Save(s, 0); err != nil {
		t.Fatal(err)
	}
	st := ec.Stats()
	if st.Saves != 1 || st.Loads != 0 {
		t.Errorf("logical counters: %+v", st)
	}
	want := int64(6 * (1000 + fragmentEnvelope)) // 6 fragments of cost/k + envelope
	if st.SavedBytes != want {
		t.Errorf("SavedBytes = %d, want %d", st.SavedBytes, want)
	}
	shardStats := ec.ShardStats()
	if len(shardStats) != 6 {
		t.Fatalf("ShardStats length %d", len(shardStats))
	}
	for i, ss := range shardStats {
		if ss.Saves != 1 {
			t.Errorf("shard %d got %d fragment writes, want 1", i, ss.Saves)
		}
	}
}

// TestECStoreBandwidthContention: fragment writes charge their shards'
// bandwidth; a second rank in the same placement group queues behind the
// first.
func TestECStoreBandwidthContention(t *testing.T) {
	// One placement group: both ranks share base shard 0.
	ec, err := NewECStore(2, 1, 1e9, 1e9, func(int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	s1 := &Snapshot{Rank: 0, Seq: 1, ModelBytes: 100e6}
	s2 := &Snapshot{Rank: 1, Seq: 1, ModelBytes: 100e6}
	end1, err := ec.Save(s1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end1 <= 0 {
		t.Fatal("bandwidth model not charged")
	}
	end2, err := ec.Save(s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end2 <= end1 {
		t.Errorf("second save (%v) did not queue behind the first (%v)", end2, end1)
	}
}

// TestReplicatedStoreFailover: reads fail over from a dead home replica
// and survive anything short of losing all replicas.
func TestReplicatedStoreFailover(t *testing.T) {
	rep, err := NewReplicatedStore(3, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0's home replica is 0; kill it and its first fallback.
	fs, err := NewFaultyStore(rep,
		ShardFault{Shard: 0, AtVT: 500, Kind: FaultKill},
		ShardFault{Shard: 1, AtVT: 500, Kind: FaultCorrupt},
	)
	if err != nil {
		t.Fatal(err)
	}
	s := codecSnap(0, 1)
	if _, err := fs.Save(s, 10); err != nil {
		t.Fatal(err)
	}
	got, _, ok := fs.Load(0, 1, 1000)
	if !ok {
		t.Fatal("load failed with one healthy replica left")
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("snapshot changed through replica failover")
	}
	if rep.DegradedLoads() != 2 {
		t.Errorf("DegradedLoads = %d, want 2 skipped replicas", rep.DegradedLoads())
	}
}

// TestReplicatedStoreAllReplicasLost: losing all r replicas is a lost
// checkpoint.
func TestReplicatedStoreAllReplicasLost(t *testing.T) {
	rep, err := NewReplicatedStore(2, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFaultyStore(rep,
		ShardFault{Shard: 0, AtVT: 500, Kind: FaultKill},
		ShardFault{Shard: 1, AtVT: 500, Kind: FaultKill},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Save(codecSnap(0, 1), 10); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := fs.Load(0, 1, 1000); ok {
		t.Fatal("load survived the loss of every replica")
	}
}

// TestReplicatedStoreCostModel: r full copies show up in the physical
// volume.
func TestReplicatedStoreCostModel(t *testing.T) {
	rep, err := NewReplicatedStore(3, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := &Snapshot{Rank: 1, Seq: 1, ModelBytes: 5000}
	if _, err := rep.Save(s, 0); err != nil {
		t.Fatal(err)
	}
	st := rep.Stats()
	if st.Saves != 1 {
		t.Errorf("logical Saves = %d, want 1", st.Saves)
	}
	if want := int64(3 * (5000 + fragmentEnvelope)); st.SavedBytes != want {
		t.Errorf("SavedBytes = %d, want %d", st.SavedBytes, want)
	}
}

// TestReplicatedValidation: r < 2 is rejected.
func TestReplicatedValidation(t *testing.T) {
	if _, err := NewReplicatedStore(1, 0, 0, nil); err == nil {
		t.Error("r=1 accepted")
	}
	if _, err := NewReplicatedOver(nil, NewMemStore(0, 0)); err == nil {
		t.Error("single backend accepted")
	}
}

// TestFaultyStoreValidation: out-of-range shards, non-positive fault
// times and bad degrade factors are construction errors.
func TestFaultyStoreValidation(t *testing.T) {
	sharded := NewShardedStore(4, 0, 0, nil)
	cases := []ShardFault{
		{Shard: 4, AtVT: 10, Kind: FaultKill},
		{Shard: -1, AtVT: 10, Kind: FaultKill},
		{Shard: 0, AtVT: 0, Kind: FaultKill},
		{Shard: 0, AtVT: 10, Kind: FaultDegrade, Factor: 1},
		{Shard: 0, AtVT: 10, Kind: FaultKind(99)},
	}
	for _, f := range cases {
		if _, err := NewFaultyStore(sharded, f); err == nil {
			t.Errorf("fault %+v accepted", f)
		}
	}
	// A plain store is one shard: index 1 is out of range.
	if _, err := NewFaultyStore(NewMemStore(0, 0), ShardFault{Shard: 1, AtVT: 10, Kind: FaultKill}); err == nil {
		t.Error("shard 1 of a non-composite store accepted")
	}
}

// TestFaultyStoreKillIsAnOrderedEvent: operations issued before the
// fault's virtual time are healthy, operations at or after it see the
// dead shard — a pure function of issue time, like a rank kill.
func TestFaultyStoreKillIsAnOrderedEvent(t *testing.T) {
	fs, err := NewFaultyStore(NewMemStore(0, 0), ShardFault{Shard: 0, AtVT: 100, Kind: FaultKill})
	if err != nil {
		t.Fatal(err)
	}
	s := codecSnap(0, 1)
	if _, err := fs.Save(s, 50); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := fs.Load(0, 1, 99); !ok {
		t.Fatal("pre-fault load refused")
	}
	if _, _, ok := fs.Load(0, 1, 100); ok {
		t.Fatal("load at the fault time served from a dead shard")
	}
	// Writes at or after the kill are dropped, not errored: the dropped
	// sequence is unloadable even through the healthy pre-fault window.
	if _, err := fs.Save(&Snapshot{Rank: 0, Seq: 2}, 200); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := fs.Load(0, 2, 99); ok {
		t.Fatal("dropped write became loadable")
	}
	stats := fs.FaultStats()
	if stats[0].LostWrites != 1 || stats[0].LostReads != 1 {
		t.Errorf("fault stats %+v, want 1 lost write / 1 lost read", stats[0])
	}
}

// TestFaultyStoreDegrade: a degraded shard charges Factor× the write
// cost and stretches reads.
func TestFaultyStoreDegrade(t *testing.T) {
	mk := func(faults ...ShardFault) Store {
		t.Helper()
		fs, err := NewFaultyStore(NewMemStore(1e6, 1e6), faults...)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	s := &Snapshot{Rank: 0, Seq: 1, ModelBytes: 1e6}
	healthy := mk()
	degradedWrites := mk(ShardFault{Shard: 0, AtVT: 1, Kind: FaultDegrade, Factor: 2})
	hEnd, err := healthy.Save(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	dEnd, err := degradedWrites.Save(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if want := vtime.Time(10).Add(2 * hEnd.Sub(10)); dEnd != want {
		t.Errorf("degraded save end %v, want %v (healthy %v)", dEnd, want, hEnd)
	}
	// The read stretch, measured on a snapshot written while the shard
	// was still healthy (the E6 scenario: faults activate at recovery).
	degradedReads := mk(ShardFault{Shard: 0, AtVT: 1e8, Kind: FaultDegrade, Factor: 2})
	if _, err := degradedReads.Save(s, 10); err != nil {
		t.Fatal(err)
	}
	_, hREnd, _ := healthy.Load(0, 1, 1e9)
	_, dREnd, _ := degradedReads.Load(0, 1, 1e9)
	if dREnd.Sub(1e9) != 2*hREnd.Sub(1e9) {
		t.Errorf("degraded read took %v, want 2× healthy %v", dREnd.Sub(1e9), hREnd.Sub(1e9))
	}
}

// TestFaultyStoreCorruptUndetectedOnPlainBackend documents the
// failure-semantics table's sharp edge: a plain store has no checksums,
// so a corrupt read returns damaged state as if it were fine.
func TestFaultyStoreCorruptUndetectedOnPlainBackend(t *testing.T) {
	fs, err := NewFaultyStore(NewMemStore(0, 0), ShardFault{Shard: 0, AtVT: 100, Kind: FaultCorrupt})
	if err != nil {
		t.Fatal(err)
	}
	s := codecSnap(0, 1)
	if _, err := fs.Save(s, 10); err != nil {
		t.Fatal(err)
	}
	got, _, ok := fs.Load(0, 1, 200)
	if !ok {
		t.Fatal("corrupt read refused; FaultCorrupt degrades data, not availability")
	}
	if bytes.Equal(got.AppState, s.AppState) {
		t.Fatal("corruption did not damage the returned snapshot")
	}
	if fs.FaultStats()[0].CorruptReads != 1 {
		t.Errorf("CorruptReads = %d, want 1", fs.FaultStats()[0].CorruptReads)
	}
}
