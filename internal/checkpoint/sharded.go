package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hydee/internal/vtime"
)

// ShardedStore distributes snapshots over several independent backends.
// Each shard models its own bandwidth-contention window, so checkpoints
// placed on different shards never queue behind each other — the
// host-side parallel checkpoint-storage layout (one storage target per
// cluster) that relieves the I/O bursts of experiment E5.
//
// Placement is static: a rank's shard is fixed for the whole run, so a
// rank's save and restore always hit the same backend. Determinism
// follows from the shards': every save is admitted in virtual-time order
// (the runtime brackets writes with Network.AwaitTurn), and routing by
// rank is a pure function, so the per-shard queues build up identically
// on every run.
type ShardedStore struct {
	place  func(rank int) int
	shards []Store
}

// NewShardedStore builds a store of n independent in-memory shards, each
// with its own write/read bandwidth of writeBPS/readBPS bytes per second
// (zero disables the cost model). place maps a rank to its shard and may
// return any int — it is reduced modulo n; nil places ranks round-robin
// (rank modulo n). Per-cluster placement is obtained by passing a
// function of the topology's cluster assignment.
func NewShardedStore(n int, writeBPS, readBPS float64, place func(rank int) int) *ShardedStore {
	if n < 1 {
		n = 1
	}
	shards := make([]Store, n)
	for i := range shards {
		shards[i] = NewMemStore(writeBPS, readBPS)
	}
	return NewShardedOver(place, shards...)
}

// NewShardedOver shards over caller-supplied backends (mixing memory- and
// file-backed shards is fine). It panics on zero shards — a sharded store
// with nothing behind it is a programming error, not a runtime condition.
// Persistent backends recover their own contents on construction (a
// FileStore rebuilds its latest-sequence index from the files it finds),
// so a sharded store reopened over the same backends resumes where it
// left off; NewShardedFileStore packages that into a directory-layout
// convention.
func NewShardedOver(place func(rank int) int, shards ...Store) *ShardedStore {
	if len(shards) == 0 {
		panic("checkpoint: NewShardedOver needs at least one shard")
	}
	return &ShardedStore{place: place, shards: shards}
}

// shardDirFmt is the directory-layout convention of a file-backed sharded
// store: shard i lives in <dir>/shard-<i> (three digits, so listings sort
// numerically up to 1000 shards).
const shardDirFmt = "shard-%03d"

// NewShardedFileStore builds (or reopens) a sharded store persisted under
// dir with one FileStore per shard, laid out as dir/shard-000,
// dir/shard-001, ... — the durable variant of NewShardedStore. On reopen,
// n may be zero to infer the shard count from the existing layout; a
// non-zero n that contradicts the directory's shard count is an error
// (placement is static, so re-sharding silently would route ranks to the
// wrong snapshots). Each shard recovers its latest-sequence index from
// its files, so restarts and GC resume correctly across reopens.
func NewShardedFileStore(dir string, n int, writeBPS, readBPS float64, place func(rank int) int) (*ShardedStore, error) {
	existing, err := shardDirs(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case n < 1 && len(existing) == 0:
		return nil, fmt.Errorf("checkpoint: sharded file store %s: no existing shards and no shard count given", dir)
	case n < 1:
		n = len(existing)
	case len(existing) > 0 && len(existing) != n:
		return nil, fmt.Errorf("checkpoint: sharded file store %s holds %d shards, asked for %d (placement is static; reopen with the original count)",
			dir, len(existing), n)
	}
	shards := make([]Store, n)
	for i := range shards {
		st, err := NewFileStore(filepath.Join(dir, fmt.Sprintf(shardDirFmt, i)), writeBPS, readBPS)
		if err != nil {
			return nil, err
		}
		shards[i] = st
	}
	return NewShardedOver(place, shards...), nil
}

// shardDirs lists the shard subdirectories present under dir, verifying
// they form the contiguous shard-000..shard-(k-1) convention.
func shardDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for i, name := range names {
		if want := fmt.Sprintf(shardDirFmt, i); name != want {
			return nil, fmt.Errorf("checkpoint: sharded file store %s: found %q, want contiguous %q", dir, name, want)
		}
	}
	return names, nil
}

// shardOf resolves the rank's shard index.
func (st *ShardedStore) shardOf(rank int) int {
	i := rank
	if st.place != nil {
		i = st.place(rank)
	}
	i %= len(st.shards)
	if i < 0 {
		i += len(st.shards)
	}
	return i
}

// NumShards reports the shard count.
func (st *ShardedStore) NumShards() int { return len(st.shards) }

// swapShard replaces shard i through wrap — the fault-injection hook
// (NewFaultyStore). Must be called before the store carries traffic.
func (st *ShardedStore) swapShard(i int, wrap func(Store) Store) {
	st.shards[i] = wrap(st.shards[i])
}

// Save implements Store: the snapshot goes to its rank's shard and only
// contends with that shard's writers.
func (st *ShardedStore) Save(s *Snapshot, at vtime.Time) (vtime.Time, error) {
	return st.shards[st.shardOf(s.Rank)].Save(s, at)
}

// LatestSeq implements Store.
func (st *ShardedStore) LatestSeq(rank int) int {
	return st.shards[st.shardOf(rank)].LatestSeq(rank)
}

// Load implements Store.
func (st *ShardedStore) Load(rank, seq int, at vtime.Time) (*Snapshot, vtime.Time, bool) {
	return st.shards[st.shardOf(rank)].Load(rank, seq, at)
}

// Stats implements Store: counters sum across shards; MaxQueue is the
// worst backlog any single shard saw (the quantity E5 compares).
func (st *ShardedStore) Stats() StoreStats {
	var agg StoreStats
	for _, sh := range st.shards {
		s := sh.Stats()
		agg.Saves += s.Saves
		agg.SavedBytes += s.SavedBytes
		agg.Loads += s.Loads
		if s.MaxQueue > agg.MaxQueue {
			agg.MaxQueue = s.MaxQueue
		}
	}
	return agg
}

// ShardStats reports per-shard activity, indexed by shard.
func (st *ShardedStore) ShardStats() []StoreStats {
	out := make([]StoreStats, len(st.shards))
	for i, sh := range st.shards {
		out[i] = sh.Stats()
	}
	return out
}
