package checkpoint

import (
	"bytes"
	"reflect"
	"testing"

	"hydee/internal/transport"
)

// codecSnap builds a representative snapshot with mailbox traffic.
func codecSnap(rank, seq int) *Snapshot {
	return &Snapshot{
		Rank:        rank,
		Seq:         seq,
		TakenVT:     123456789,
		CkptCallIdx: 7,
		CollSeq:     42,
		AppState:    []byte{0x01, 0x02, 0xFF, 0x00, 0x7F},
		ProtState:   []byte("protocol table"),
		Mailbox: []*transport.Msg{
			{
				Src: 3, Dst: rank, Kind: transport.App, Tag: 9,
				Date: -5, Phase: 2, Inc: 1, IncSeen: 1,
				Epoch: seq - 1, Round: 0, WireLen: 4096, PiggyLen: 16,
				Data: []byte("payload"), SendVT: 1000, ArriveVT: 2000,
			},
			{Src: 5, Dst: rank, Kind: transport.App, Data: nil, ArriveVT: 2500},
		},
		ModelBytes: 1 << 20,
	}
}

// TestSnapshotCodecRoundTrip: every exported field, mailbox included,
// survives encode → decode.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := codecSnap(2, 3)
	blob, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed the snapshot:\n  in  %+v\n  out %+v", s, got)
	}
	// Empty-mailbox, empty-state snapshots round-trip too.
	min := &Snapshot{Rank: 1, Seq: 1}
	blob, err = EncodeSnapshot(min)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != 1 || got.Seq != 1 || len(got.Mailbox) != 0 {
		t.Fatalf("minimal snapshot round trip: %+v", got)
	}
}

// TestSnapshotCodecDeterministic: encoding is a pure function — no
// encoder history, no map iteration.
func TestSnapshotCodecDeterministic(t *testing.T) {
	a, err := EncodeSnapshot(codecSnap(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSnapshot(codecSnap(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of equal snapshots differ")
	}
}

// TestSnapshotCodecRejectsCtl: control messages never belong in a
// mailbox capture; encoding one must fail loudly.
func TestSnapshotCodecRejectsCtl(t *testing.T) {
	s := codecSnap(0, 1)
	s.Mailbox[0].CtlBody = struct{ X int }{1}
	if _, err := EncodeSnapshot(s); err == nil {
		t.Fatal("snapshot with a control-message mailbox encoded without error")
	}
}

// TestSnapshotCodecRejectsDamage: garbage, truncation and trailing
// bytes all fail instead of misdecoding.
func TestSnapshotCodecRejectsDamage(t *testing.T) {
	blob, err := EncodeSnapshot(codecSnap(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot([]byte("not a snapshot")); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := DecodeSnapshot(blob[:len(blob)/2]); err == nil {
		t.Error("truncated blob decoded")
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestFragmentChecksum: a marshaled fragment parses back exactly, and
// any single flipped byte is detected.
func TestFragmentChecksum(t *testing.T) {
	f := &fragment{K: 4, M: 2, Index: 3, BlobLen: 999, Payload: []byte("fragment payload bytes")}
	b := f.marshal()
	got, ok := parseFragment(b)
	if !ok {
		t.Fatal("clean fragment rejected")
	}
	if got.K != f.K || got.M != f.M || got.Index != f.Index || got.BlobLen != f.BlobLen || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("fragment fields changed: %+v vs %+v", got, f)
	}
	for i := range b {
		dam := append([]byte(nil), b...)
		dam[i] ^= 0x40
		if _, ok := parseFragment(dam); ok {
			t.Fatalf("flipped byte %d went undetected", i)
		}
	}
	if _, ok := parseFragment([]byte("short")); ok {
		t.Error("short input accepted")
	}
}
