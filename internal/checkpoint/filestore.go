package checkpoint

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"hydee/internal/vtime"
)

// FileStore persists snapshots as gob files in a directory, one file per
// (rank, sequence), with the same shared-bandwidth timing model as
// MemStore. It demonstrates that snapshots survive the process — what the
// paper means by "reliable storage" for checkpoints — and is used by tests
// that restart from real files.
type FileStore struct {
	dir string

	mu          sync.Mutex
	latest      map[int]int
	bytesPerSec float64
	readBPS     float64
	busyUntil   vtime.Time
	stats       StoreStats
}

// NewFileStore creates (if needed) dir and returns a store over it.
func NewFileStore(dir string, writeBPS, readBPS float64) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	st := &FileStore{
		dir:         dir,
		latest:      make(map[int]int),
		bytesPerSec: writeBPS,
		readBPS:     readBPS,
	}
	// Recover the latest-sequence index from existing files so a store
	// reopened over an old directory resumes correctly.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range entries {
		var rank, seq int
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d-%d.gob", &rank, &seq); err == nil {
			if seq > st.latest[rank] {
				st.latest[rank] = seq
			}
		}
	}
	return st, nil
}

func (st *FileStore) path(rank, seq int) string {
	return filepath.Join(st.dir, fmt.Sprintf("ckpt-%d-%d.gob", rank, seq))
}

// Save implements Store.
func (st *FileStore) Save(s *Snapshot, at vtime.Time) (vtime.Time, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f, err := os.Create(st.path(s.Rank, s.Seq))
	if err != nil {
		return at, fmt.Errorf("checkpoint: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(s); err != nil {
		f.Close()
		return at, fmt.Errorf("checkpoint: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return at, fmt.Errorf("checkpoint: %w", err)
	}
	// Reset the streak on sequence restart, like MemStore: a reused store
	// must report the current run's latest, not an earlier run's.
	st.latest[s.Rank] = s.Seq
	// Prune old generations like MemStore.
	for seq := s.Seq - historyKeep; seq > 0; seq-- {
		p := st.path(s.Rank, seq)
		if _, err := os.Stat(p); err != nil {
			break
		}
		_ = os.Remove(p)
	}
	st.stats.Saves++
	st.stats.SavedBytes += s.CostBytes()
	if st.bytesPerSec <= 0 {
		return at, nil
	}
	start := at
	if st.busyUntil > start {
		if q := st.busyUntil.Sub(at); q > st.stats.MaxQueue {
			st.stats.MaxQueue = q
		}
		start = st.busyUntil
	}
	end := start.Add(vtime.Duration(float64(s.CostBytes()) / st.bytesPerSec * 1e9))
	st.busyUntil = end
	return end, nil
}

// LatestSeq implements Store.
func (st *FileStore) LatestSeq(rank int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.latest[rank]
}

// Load implements Store.
func (st *FileStore) Load(rank, seq int, at vtime.Time) (*Snapshot, vtime.Time, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f, err := os.Open(st.path(rank, seq))
	if err != nil {
		return nil, at, false
	}
	defer f.Close()
	var s Snapshot
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		return nil, at, false
	}
	st.stats.Loads++
	end := at
	if st.readBPS > 0 {
		end = at.Add(vtime.Duration(float64(s.CostBytes()) / st.readBPS * 1e9))
	}
	return &s, end, true
}

// Stats implements Store.
func (st *FileStore) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}
