package checkpoint

import (
	"fmt"
	"sync"

	"hydee/internal/vtime"
)

// ReplicatedStore keeps r full copies of every snapshot on r independent
// replica backends — the FTHP-MPI-style full-replication end of the
// redundancy spectrum: r× storage cost, survival of up to r-1 replica
// losses, and no reconstruction work on the read path.
//
// Writes fan out to all r replicas in parallel at the save's admission
// time and complete when the slowest replica does. Reads are
// first-healthy-replica: the rank's home replica (place(rank) mod r) is
// probed first and failed probes charge their read time before the next
// replica is tried, so a degraded read is visibly slower, not free.
// Replica blobs are self-verifying (checksummed containers, see
// fragment), so a corrupted replica is detected and skipped rather than
// restored from.
type ReplicatedStore struct {
	r        int
	place    func(rank int) int
	replicas []Store

	mu      sync.Mutex
	logical StoreStats // Saves/Loads count snapshots, not replica writes
	// failovers counts replica probes that had to be skipped on
	// successful Loads — the survived-shard-loss signal E6 reports.
	failovers int64
}

// NewReplicatedStore builds an r-way replicated store over r fresh
// in-memory replicas, each with its own write/read bandwidth of
// writeBPS/readBPS bytes per second (zero disables the cost model).
// r must be at least 2 — one replica is just a slower MemStore. place
// maps a rank to the replica its reads try first (reduced modulo r);
// nil spreads home replicas round-robin by rank.
func NewReplicatedStore(r int, writeBPS, readBPS float64, place func(rank int) int) (*ReplicatedStore, error) {
	if r < 2 {
		return nil, fmt.Errorf("checkpoint: replicated store needs r >= 2 replicas (got %d)", r)
	}
	replicas := make([]Store, r)
	for i := range replicas {
		replicas[i] = NewMemStore(writeBPS, readBPS)
	}
	return &ReplicatedStore{r: r, place: place, replicas: replicas}, nil
}

// NewReplicatedOver replicates over caller-supplied backends (at
// least 2).
func NewReplicatedOver(place func(rank int) int, replicas ...Store) (*ReplicatedStore, error) {
	if len(replicas) < 2 {
		return nil, fmt.Errorf("checkpoint: replicated store needs >= 2 replicas, got %d", len(replicas))
	}
	return &ReplicatedStore{r: len(replicas), place: place, replicas: replicas}, nil
}

// homeReplica resolves the replica a rank's reads try first.
func (st *ReplicatedStore) homeReplica(rank int) int {
	i := rank
	if st.place != nil {
		i = st.place(rank)
	}
	i %= st.r
	if i < 0 {
		i += st.r
	}
	return i
}

// NumShards reports the replica count (the fault-injection plane
// addresses replicas as shards).
func (st *ReplicatedStore) NumShards() int { return st.r }

// swapShard replaces replica i through wrap — the fault-injection hook
// (NewFaultyStore). Must be called before the store carries traffic.
func (st *ReplicatedStore) swapShard(i int, wrap func(Store) Store) {
	st.replicas[i] = wrap(st.replicas[i])
}

// Save implements Store: the snapshot is serialized once and the full
// blob written to every replica in parallel; the save completes when
// the slowest replica does. Each replica write is charged the full
// snapshot cost, so aggregate traffic reflects the r× overhead.
func (st *ReplicatedStore) Save(s *Snapshot, at vtime.Time) (vtime.Time, error) {
	blob, err := EncodeSnapshot(s)
	if err != nil {
		return at, err
	}
	end := at
	for i, rep := range st.replicas {
		fs := &Snapshot{
			Rank:    s.Rank,
			Seq:     s.Seq,
			TakenVT: s.TakenVT,
			AppState: (&fragment{
				K: 1, M: st.r - 1, Index: i,
				BlobLen: len(blob), Payload: blob,
			}).marshal(),
			ModelBytes: s.CostBytes() + fragmentEnvelope,
		}
		e, err := rep.Save(fs, at)
		if err != nil {
			return at, err
		}
		if e > end {
			end = e
		}
	}
	st.mu.Lock()
	st.logical.Saves++
	st.mu.Unlock()
	return end, nil
}

// LatestSeq implements Store, delegating to the rank's home replica
// (every replica receives every save).
func (st *ReplicatedStore) LatestSeq(rank int) int {
	return st.replicas[st.homeReplica(rank)].LatestSeq(rank)
}

// Load implements Store: replicas are probed from the rank's home
// replica onward; the first one whose blob verifies wins. A failed
// probe's read time is charged before the next replica is tried. All r
// replicas unhealthy is a lost checkpoint (ok=false).
func (st *ReplicatedStore) Load(rank, seq int, at vtime.Time) (*Snapshot, vtime.Time, bool) {
	base := st.homeReplica(rank)
	cur := at
	for i := 0; i < st.r; i++ {
		idx := (base + i) % st.r
		fs, e, ok := st.replicas[idx].Load(rank, seq, cur)
		if ok {
			if f, fok := parseFragment(fs.AppState); fok && f.Index == idx {
				if snap, err := DecodeSnapshot(f.Payload); err == nil {
					st.mu.Lock()
					st.logical.Loads++
					st.failovers += int64(i)
					st.mu.Unlock()
					return snap, e, true
				}
			}
		}
		if e > cur {
			cur = e
		}
	}
	return nil, at, false
}

// DegradedLoads reports how many replica probes successful Loads had to
// skip — nonzero means reads survived replica loss or corruption.
func (st *ReplicatedStore) DegradedLoads() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.failovers
}

// Stats implements Store. Saves and Loads count logical snapshot
// operations; SavedBytes sums the physical replica traffic, so the r×
// redundancy overhead is visible in the volume E6 compares. MaxQueue is
// the worst backlog any single replica saw.
func (st *ReplicatedStore) Stats() StoreStats {
	st.mu.Lock()
	agg := st.logical
	st.mu.Unlock()
	for _, rep := range st.replicas {
		s := rep.Stats()
		agg.SavedBytes += s.SavedBytes
		if s.MaxQueue > agg.MaxQueue {
			agg.MaxQueue = s.MaxQueue
		}
	}
	return agg
}

// ShardStats reports per-replica physical activity, indexed by replica.
func (st *ReplicatedStore) ShardStats() []StoreStats {
	out := make([]StoreStats, len(st.replicas))
	for i, rep := range st.replicas {
		out[i] = rep.Stats()
	}
	return out
}
