package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hydee/internal/vtime"
)

func shardSnap(rank, seq int, bytes int64) *Snapshot {
	return &Snapshot{Rank: rank, Seq: seq, ModelBytes: bytes}
}

func TestShardedRoutingAndStats(t *testing.T) {
	// Per-cluster placement: ranks 0,1 -> shard 0; ranks 2,3 -> shard 1.
	cluster := []int{0, 0, 1, 1}
	st := NewShardedStore(2, 0, 0, func(r int) int { return cluster[r] })
	for r := 0; r < 4; r++ {
		if _, err := st.Save(shardSnap(r, 1, 100), 0); err != nil {
			t.Fatal(err)
		}
	}
	per := st.ShardStats()
	if per[0].Saves != 2 || per[1].Saves != 2 {
		t.Errorf("per-shard saves = %d/%d, want 2/2", per[0].Saves, per[1].Saves)
	}
	agg := st.Stats()
	if agg.Saves != 4 || agg.SavedBytes != 400 {
		t.Errorf("aggregate stats = %+v", agg)
	}
	for r := 0; r < 4; r++ {
		if st.LatestSeq(r) != 1 {
			t.Errorf("rank %d: LatestSeq = %d, want 1", r, st.LatestSeq(r))
		}
		if s, _, ok := st.Load(r, 1, 0); !ok || s.Rank != r {
			t.Errorf("rank %d: Load failed (ok=%v)", r, ok)
		}
	}
}

func TestShardedIndependentContention(t *testing.T) {
	// 1 byte/sec per shard: a 100-byte write takes 100s of virtual time.
	// Two writes at t=0 on the same shard queue; on different shards they
	// finish simultaneously.
	shared := NewMemStore(1, 0)
	for _, rank := range []int{0, 1} {
		if end, err := shared.Save(shardSnap(rank, 1, 100), 0); err != nil {
			t.Fatal(err)
		} else if rank == 1 && end != vtime.Time(200e9) {
			t.Errorf("shared store: second write ends at %v, want 200s (queued)", end)
		}
	}
	sharded := NewShardedStore(2, 1, 0, nil) // rank % 2 placement
	for _, rank := range []int{0, 1} {
		end, err := sharded.Save(shardSnap(rank, 1, 100), 0)
		if err != nil {
			t.Fatal(err)
		}
		if end != vtime.Time(100e9) {
			t.Errorf("sharded store: rank %d write ends at %v, want 100s (no cross-shard queue)", rank, end)
		}
	}
	if q := sharded.Stats().MaxQueue; q != 0 {
		t.Errorf("sharded MaxQueue = %v, want 0", q)
	}
	if q := shared.Stats().MaxQueue; q != vtime.Duration(100e9) {
		t.Errorf("shared MaxQueue = %v, want 100s", q)
	}
}

func TestShardedPlacementNormalization(t *testing.T) {
	st := NewShardedStore(3, 0, 0, func(r int) int { return -1 - r })
	// Any placement value must reduce to a valid shard (including
	// negatives), and routing must be stable across Save/Load/LatestSeq.
	for r := 0; r < 7; r++ {
		if _, err := st.Save(shardSnap(r, 2, 1), 0); err != nil {
			t.Fatal(err)
		}
		if st.LatestSeq(r) != 2 {
			t.Errorf("rank %d not routed back to its shard", r)
		}
	}
	if st.NumShards() != 3 {
		t.Errorf("NumShards = %d", st.NumShards())
	}
}

// TestSequenceRestartSurvivesGC covers store reuse across runs (engine
// WithStore pinning): after a run drove the sequence high, a new run's
// restarted low sequences must not be pruned against the old run's
// high-water mark — the GC threshold follows the current save streak.
func TestSequenceRestartSurvivesGC(t *testing.T) {
	for name, st := range map[string]Store{
		"mem":     NewMemStore(0, 0),
		"sharded": NewShardedStore(2, 0, 0, nil),
	} {
		// Run 1 checkpoints up to sequence 10.
		for seq := 1; seq <= 10; seq++ {
			if _, err := st.Save(shardSnap(0, seq, 1), 0); err != nil {
				t.Fatal(err)
			}
		}
		// Run 2 reuses the store and restarts at sequence 1.
		for seq := 1; seq <= 2; seq++ {
			if _, err := st.Save(shardSnap(0, seq, 1), 0); err != nil {
				t.Fatal(err)
			}
			if got := st.LatestSeq(0); got != seq {
				t.Errorf("%s: LatestSeq = %d after restart save %d, want the current streak", name, got, seq)
			}
			if _, _, ok := st.Load(0, seq, 0); !ok {
				t.Errorf("%s: restarted seq %d pruned against the old run's high-water mark", name, seq)
			}
		}
	}
}

func TestFileStoreSequenceRestart(t *testing.T) {
	st, err := NewFileStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 10; seq++ {
		if _, err := st.Save(shardSnap(0, seq, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Save(shardSnap(0, 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	if got := st.LatestSeq(0); got != 1 {
		t.Errorf("LatestSeq = %d after sequence restart, want 1", got)
	}
	if _, _, ok := st.Load(0, 1, 0); !ok {
		t.Error("restarted seq 1 not loadable")
	}
}

func TestShardedOverMixedBackends(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := NewShardedOver(nil, NewMemStore(0, 0), fs)
	for r := 0; r < 2; r++ {
		snap := shardSnap(r, 1, 0)
		snap.AppState = []byte{byte(r)}
		if _, err := st.Save(snap, 0); err != nil {
			t.Fatal(err)
		}
	}
	s, _, ok := st.Load(1, 1, 0)
	if !ok || len(s.AppState) != 1 || s.AppState[0] != 1 {
		t.Fatalf("file-backed shard load: ok=%v snap=%+v", ok, s)
	}
}

// TestShardedFileStoreReopenRoundTrip checks the durable layout: snapshots
// saved through a sharded file store survive a reopen — with the shard
// count inferred from the shard-NNN directories — and route back to the
// same shards.
func TestShardedFileStoreReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	place := func(rank int) int { return rank % 3 }
	st, err := NewShardedFileStore(dir, 3, 0, 0, place)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		for seq := 1; seq <= 2; seq++ {
			snap := shardSnap(r, seq, 0)
			snap.AppState = []byte{byte(r), byte(seq)}
			if _, err := st.Save(snap, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%03d", i))); err != nil {
			t.Fatalf("layout convention: %v", err)
		}
	}

	// Reopen with the count inferred from the layout.
	re, err := NewShardedFileStore(dir, 0, 0, 0, place)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumShards() != 3 {
		t.Fatalf("reopen inferred %d shards, want 3", re.NumShards())
	}
	for r := 0; r < 6; r++ {
		if got := re.LatestSeq(r); got != 2 {
			t.Errorf("rank %d: LatestSeq after reopen = %d, want 2", r, got)
		}
		s, _, ok := re.Load(r, 2, 0)
		if !ok || len(s.AppState) != 2 || s.AppState[0] != byte(r) {
			t.Errorf("rank %d: reopen load: ok=%v snap=%+v", r, ok, s)
		}
	}

	// A contradicting shard count must be rejected: placement is static.
	if _, err := NewShardedFileStore(dir, 5, 0, 0, place); err == nil {
		t.Error("reopen with a different shard count accepted")
	}
	// A fresh directory without a count is meaningless.
	if _, err := NewShardedFileStore(t.TempDir(), 0, 0, 0, nil); err == nil {
		t.Error("empty dir with no shard count accepted")
	}
}
