package checkpoint

// Deterministic binary serialization of snapshots, and the self-verifying
// fragment container the redundant stores (ECStore, ReplicatedStore) keep
// on their shards. gob is deliberately not used here: gob's type-descriptor
// stream depends on encoder history, while redundancy needs every fragment
// of one snapshot to be a pure function of the snapshot alone so encode →
// split → reconstruct → decode is byte-stable across runs.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"hydee/internal/transport"
	"hydee/internal/vtime"
)

// snapMagic/fragMagic version the two on-shard formats; bump on layout
// changes so stale persisted fragments are rejected, not misdecoded.
const (
	snapMagic = "HYSN1"
	fragMagic = "HYFR1"
)

// EncodeSnapshot serializes a snapshot into a deterministic byte blob:
// equal snapshots encode to equal bytes, independent of encoder history.
// Mailbox messages must be application messages — a control message
// (CtlBody != nil) never survives into a mailbox capture, and encoding
// one is an error rather than a silent drop.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	b := make([]byte, 0, 64+len(s.AppState)+len(s.ProtState))
	b = append(b, snapMagic...)
	b = binary.AppendVarint(b, int64(s.Rank))
	b = binary.AppendVarint(b, int64(s.Seq))
	b = binary.AppendVarint(b, int64(s.TakenVT))
	b = binary.AppendVarint(b, int64(s.CkptCallIdx))
	b = binary.AppendVarint(b, s.CollSeq)
	b = binary.AppendVarint(b, s.ModelBytes)
	b = appendBytes(b, s.AppState)
	b = appendBytes(b, s.ProtState)
	b = binary.AppendUvarint(b, uint64(len(s.Mailbox)))
	for i, m := range s.Mailbox {
		if m.CtlBody != nil {
			return nil, fmt.Errorf("checkpoint: encode snapshot rank %d seq %d: mailbox message %d carries a control body", s.Rank, s.Seq, i)
		}
		b = binary.AppendVarint(b, int64(m.Src))
		b = binary.AppendVarint(b, int64(m.Dst))
		b = binary.AppendVarint(b, int64(m.Kind))
		b = binary.AppendVarint(b, int64(m.Tag))
		b = binary.AppendVarint(b, m.Date)
		b = binary.AppendVarint(b, int64(m.Phase))
		b = binary.AppendVarint(b, int64(m.Inc))
		b = binary.AppendVarint(b, int64(m.IncSeen))
		b = binary.AppendVarint(b, int64(m.Epoch))
		b = binary.AppendVarint(b, int64(m.Round))
		b = binary.AppendVarint(b, int64(m.WireLen))
		b = binary.AppendVarint(b, int64(m.PiggyLen))
		b = appendBytes(b, m.Data)
		b = binary.AppendVarint(b, int64(m.SendVT))
		b = binary.AppendVarint(b, int64(m.ArriveVT))
	}
	return b, nil
}

// DecodeSnapshot reverses EncodeSnapshot. The returned snapshot shares
// nothing with the input slice's backing beyond fresh copies.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	d := &decoder{b: b}
	if !d.literal(snapMagic) {
		return nil, fmt.Errorf("checkpoint: snapshot blob lacks %q header", snapMagic)
	}
	s := &Snapshot{}
	s.Rank = int(d.varint())
	s.Seq = int(d.varint())
	s.TakenVT = vtime.Time(d.varint())
	s.CkptCallIdx = int(d.varint())
	s.CollSeq = d.varint()
	s.ModelBytes = d.varint()
	s.AppState = d.bytes()
	s.ProtState = d.bytes()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(b)) {
		return nil, fmt.Errorf("checkpoint: snapshot blob claims %d mailbox messages in %d bytes", n, len(b))
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m := &transport.Msg{}
		m.Src = int(d.varint())
		m.Dst = int(d.varint())
		m.Kind = transport.Kind(d.varint())
		m.Tag = int(d.varint())
		m.Date = d.varint()
		m.Phase = int(d.varint())
		m.Inc = int32(d.varint())
		m.IncSeen = int32(d.varint())
		m.Epoch = int(d.varint())
		m.Round = int(d.varint())
		m.WireLen = int(d.varint())
		m.PiggyLen = int(d.varint())
		m.Data = d.bytes()
		m.SendVT = vtime.Time(d.varint())
		m.ArriveVT = vtime.Time(d.varint())
		s.Mailbox = append(s.Mailbox, m)
	}
	if d.err != nil {
		return nil, fmt.Errorf("checkpoint: decode snapshot: %w", d.err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("checkpoint: decode snapshot: %d trailing bytes", len(d.b))
	}
	return s, nil
}

// fragment is the unit the redundant stores place on one shard: either
// one erasure-coded piece of a snapshot blob (ECStore, K data of K+M
// total) or one full replica of it (ReplicatedStore, K=1). BlobLen is
// the pre-padding blob length reconstruction must trim back to, and the
// trailing FNV-64a checksum makes corruption detectable: a fragment
// that fails verification counts as erased, which the code tolerates up
// to its redundancy.
type fragment struct {
	K, M, Index int
	// BlobLen is the length of the whole encoded snapshot the fragment
	// belongs to.
	BlobLen int
	Payload []byte
}

// marshal renders the fragment with its checksum trailer.
func (f *fragment) marshal() []byte {
	b := make([]byte, 0, 32+len(f.Payload))
	b = append(b, fragMagic...)
	b = binary.AppendUvarint(b, uint64(f.K))
	b = binary.AppendUvarint(b, uint64(f.M))
	b = binary.AppendUvarint(b, uint64(f.Index))
	b = binary.AppendUvarint(b, uint64(f.BlobLen))
	b = appendBytes(b, f.Payload)
	h := fnv.New64a()
	h.Write(b)
	return h.Sum(b)
}

// parseFragment decodes and verifies a marshaled fragment. ok is false
// for anything malformed or checksum-damaged — the caller treats such a
// shard as lost.
func parseFragment(b []byte) (fragment, bool) {
	if len(b) < 8 {
		return fragment{}, false
	}
	body, sum := b[:len(b)-8], b[len(b)-8:]
	h := fnv.New64a()
	h.Write(body)
	if string(h.Sum(nil)) != string(sum) {
		return fragment{}, false
	}
	d := &decoder{b: body}
	if !d.literal(fragMagic) {
		return fragment{}, false
	}
	var f fragment
	f.K = int(d.uvarint())
	f.M = int(d.uvarint())
	f.Index = int(d.uvarint())
	f.BlobLen = int(d.uvarint())
	f.Payload = d.bytes()
	if d.err != nil || len(d.b) != 0 || f.K < 1 || f.M < 0 || f.Index < 0 || f.BlobLen < 0 {
		return fragment{}, false
	}
	return f, true
}

// appendBytes writes a length-prefixed byte string.
func appendBytes(b, s []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decoder is a cursor over an encoded blob; the first error sticks and
// poisons every later read, so call sites stay linear.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated or malformed field")
	}
}

func (d *decoder) literal(s string) bool {
	if d.err != nil || len(d.b) < len(s) || string(d.b[:len(s)]) != s {
		d.fail()
		return false
	}
	d.b = d.b[len(s):]
	return true
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	out := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return out
}
