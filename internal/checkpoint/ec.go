package checkpoint

import (
	"fmt"
	"sync"

	"hydee/internal/erasure"
	"hydee/internal/vtime"
)

// fragmentEnvelope is the modeled per-fragment metadata overhead (header,
// checksum, placement record) charged on top of the payload share.
const fragmentEnvelope = 64

// ECStore stores each snapshot erasure-coded across k+m shards: the
// snapshot is serialized to a deterministic blob, split into k data plus
// m parity fragments (see internal/erasure), and fragment i of rank r
// lands on shard (place(r)+i) mod (k+m). Any k surviving fragments
// reconstruct the snapshot on Load, so the store tolerates the loss or
// corruption of up to m shards per placement group at a storage cost of
// (k+m)/k — between ShardedStore (no redundancy) and ReplicatedStore
// (r× cost).
//
// Each shard models its own bandwidth-contention window exactly like
// ShardedStore's: one logical Save issues its k+m fragment writes in
// parallel at the save's admission time and completes when the slowest
// shard does. Determinism follows the sharded store's argument — saves
// are admitted in virtual-time order (Network.AwaitTurn), placement and
// encoding are pure functions — extended by the codec's determinism:
// fragments are byte-stable, so per-shard queues and reconstructed
// snapshots reproduce exactly.
type ECStore struct {
	code   *erasure.Code
	place  func(rank int) int
	shards []Store

	mu      sync.Mutex
	logical StoreStats // Saves/Loads count snapshots, not fragments
	// degraded counts Loads that succeeded despite at least one missing
	// or corrupt fragment — the survived-shard-loss signal E6 reports.
	degraded int64
}

// NewECStore builds a k-of-(k+m) erasure-coded store over k+m fresh
// in-memory shards, each with its own write/read bandwidth of
// writeBPS/readBPS bytes per second (zero disables the cost model).
// place maps a rank to the base shard of its fragment group and may
// return any int (reduced modulo k+m); nil places ranks round-robin.
// Per-cluster placement is obtained via ClusterPlacement, exactly as
// with ShardedStore.
func NewECStore(k, m int, writeBPS, readBPS float64, place func(rank int) int) (*ECStore, error) {
	code, err := erasure.New(k, m)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	shards := make([]Store, code.N())
	for i := range shards {
		shards[i] = NewMemStore(writeBPS, readBPS)
	}
	return &ECStore{code: code, place: place, shards: shards}, nil
}

// NewECOver erasure-codes over caller-supplied shard backends; exactly
// k+m shards are required.
func NewECOver(k, m int, place func(rank int) int, shards ...Store) (*ECStore, error) {
	code, err := erasure.New(k, m)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if len(shards) != code.N() {
		return nil, fmt.Errorf("checkpoint: ec store wants %d shards for %d+%d, got %d", code.N(), k, m, len(shards))
	}
	return &ECStore{code: code, place: place, shards: shards}, nil
}

// baseShard resolves the rank's fragment-0 shard.
func (st *ECStore) baseShard(rank int) int {
	i := rank
	if st.place != nil {
		i = st.place(rank)
	}
	i %= len(st.shards)
	if i < 0 {
		i += len(st.shards)
	}
	return i
}

// NumShards reports the shard count k+m.
func (st *ECStore) NumShards() int { return len(st.shards) }

// swapShard replaces shard i through wrap — the fault-injection hook
// (NewFaultyStore). Must be called before the store carries traffic.
func (st *ECStore) swapShard(i int, wrap func(Store) Store) {
	st.shards[i] = wrap(st.shards[i])
}

// Save implements Store: the snapshot is encoded, split, and written as
// k+m fragments to consecutive shards in parallel; the save completes
// when the slowest fragment write does. The modeled cost per fragment is
// the snapshot's CostBytes()/k share plus a fixed envelope, so the
// aggregate traffic reflects the (k+m)/k redundancy overhead.
func (st *ECStore) Save(s *Snapshot, at vtime.Time) (vtime.Time, error) {
	blob, err := EncodeSnapshot(s)
	if err != nil {
		return at, err
	}
	frags := st.code.Split(blob)
	k, n := st.code.K(), st.code.N()
	fragCost := (s.CostBytes()+int64(k)-1)/int64(k) + fragmentEnvelope
	base := st.baseShard(s.Rank)
	end := at
	for i, payload := range frags {
		fs := &Snapshot{
			Rank:    s.Rank,
			Seq:     s.Seq,
			TakenVT: s.TakenVT,
			AppState: (&fragment{
				K: k, M: st.code.M(), Index: i,
				BlobLen: len(blob), Payload: payload,
			}).marshal(),
			ModelBytes: fragCost,
		}
		e, err := st.shards[(base+i)%n].Save(fs, at)
		if err != nil {
			return at, err
		}
		if e > end {
			end = e
		}
	}
	st.mu.Lock()
	st.logical.Saves++
	st.mu.Unlock()
	return end, nil
}

// LatestSeq implements Store, delegating to the rank's fragment-0 shard
// (every fragment write of a save carries the same sequence).
func (st *ECStore) LatestSeq(rank int) int {
	return st.shards[st.baseShard(rank)].LatestSeq(rank)
}

// Load implements Store: fragments are probed in index order until k
// verify (present, checksum-clean, consistent geometry), then the blob
// is reconstructed and decoded. Fewer than k healthy fragments is a
// lost checkpoint (ok=false). The returned completion time covers every
// fragment read attempted, healthy or not.
func (st *ECStore) Load(rank, seq int, at vtime.Time) (*Snapshot, vtime.Time, bool) {
	k, n := st.code.K(), st.code.N()
	base := st.baseShard(rank)
	pieces := make([][]byte, n)
	blobLen := -1
	valid, probed := 0, 0
	end := at
	for i := 0; i < n && valid < k; i++ {
		fs, e, ok := st.shards[(base+i)%n].Load(rank, seq, at)
		probed++
		if e > end {
			end = e
		}
		if !ok {
			continue
		}
		f, ok := parseFragment(fs.AppState)
		if !ok || f.K != k || f.M != st.code.M() || f.Index != i {
			continue
		}
		if blobLen == -1 {
			blobLen = f.BlobLen
		} else if f.BlobLen != blobLen {
			continue
		}
		pieces[i] = f.Payload
		valid++
	}
	if valid < k {
		return nil, at, false
	}
	img, err := st.code.Reconstruct(pieces)
	if err != nil || blobLen > len(img) {
		return nil, at, false
	}
	snap, err := DecodeSnapshot(img[:blobLen])
	if err != nil {
		return nil, at, false
	}
	st.mu.Lock()
	st.logical.Loads++
	if probed > k {
		st.degraded++
	}
	st.mu.Unlock()
	return snap, end, true
}

// DegradedLoads reports how many Loads succeeded through the redundant
// path — reconstructions that had to route around at least one missing
// or corrupt fragment.
func (st *ECStore) DegradedLoads() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.degraded
}

// Stats implements Store. Saves and Loads count logical snapshot
// operations; SavedBytes sums the physical fragment traffic across
// shards, so the (k+m)/k redundancy overhead is visible in the volume
// E6 compares. MaxQueue is the worst backlog any single shard saw.
func (st *ECStore) Stats() StoreStats {
	st.mu.Lock()
	agg := st.logical
	st.mu.Unlock()
	for _, sh := range st.shards {
		s := sh.Stats()
		agg.SavedBytes += s.SavedBytes
		if s.MaxQueue > agg.MaxQueue {
			agg.MaxQueue = s.MaxQueue
		}
	}
	return agg
}

// ShardStats reports per-shard physical activity, indexed by shard.
func (st *ECStore) ShardStats() []StoreStats {
	out := make([]StoreStats, len(st.shards))
	for i, sh := range st.shards {
		out[i] = sh.Stats()
	}
	return out
}
