package checkpoint

import (
	"testing"
	"testing/quick"

	"hydee/internal/transport"
	"hydee/internal/vtime"
)

type demoState struct {
	Iter int
	V    []float64
}

func TestEncodeDecodeState(t *testing.T) {
	in := &demoState{Iter: 7, V: []float64{1.5, -2.25, 3}}
	b, err := EncodeState(in)
	if err != nil {
		t.Fatal(err)
	}
	var out demoState
	if err := DecodeState(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Iter != 7 || len(out.V) != 3 || out.V[1] != -2.25 {
		t.Fatalf("round trip broken: %+v", out)
	}
}

func TestDecodeGarbage(t *testing.T) {
	var out demoState
	if err := DecodeState([]byte{1, 2, 3}, &out); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestSnapshotCloneIsDeep(t *testing.T) {
	s := &Snapshot{
		Rank:     1,
		Seq:      2,
		AppState: []byte{1, 2, 3},
		Mailbox:  []*transport.Msg{{Src: 0, Data: []byte{9}}},
	}
	c := s.Clone()
	s.AppState[0] = 99
	s.Mailbox[0].Data[0] = 99
	if c.AppState[0] != 1 || c.Mailbox[0].Data[0] != 9 {
		t.Fatal("clone shares memory with the original")
	}
}

func TestCostBytes(t *testing.T) {
	s := &Snapshot{AppState: make([]byte, 100)}
	if s.CostBytes() != s.EncodedSize() {
		t.Fatal("default cost should be the encoded size")
	}
	s.ModelBytes = 5_000_000
	if s.CostBytes() != 5_000_000 {
		t.Fatal("ModelBytes should win")
	}
}

func TestStoreHistoryAndMinSeqRestore(t *testing.T) {
	st := NewMemStore(0, 0)
	for seq := 1; seq <= 5; seq++ {
		if _, err := st.Save(&Snapshot{Rank: 3, Seq: seq}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if st.LatestSeq(3) != 5 {
		t.Fatalf("latest %d", st.LatestSeq(3))
	}
	// historyKeep generations retained: 3,4,5 stay, 1,2 pruned.
	if _, _, ok := st.Load(3, 2, 0); ok {
		t.Fatal("ancient snapshot not pruned")
	}
	for seq := 3; seq <= 5; seq++ {
		if _, _, ok := st.Load(3, seq, 0); !ok {
			t.Fatalf("generation %d missing", seq)
		}
	}
	if st.LatestSeq(99) != 0 {
		t.Fatal("unknown rank should report 0")
	}
}

func TestStoreSaveIsolation(t *testing.T) {
	st := NewMemStore(0, 0)
	s := &Snapshot{Rank: 0, Seq: 1, AppState: []byte{1}}
	if _, err := st.Save(s, 0); err != nil {
		t.Fatal(err)
	}
	s.AppState[0] = 77 // mutate after save
	got, _, ok := st.Load(0, 1, 0)
	if !ok || got.AppState[0] != 1 {
		t.Fatal("store did not clone on save")
	}
	got.AppState[0] = 88 // mutate loaded copy
	got2, _, _ := st.Load(0, 1, 0)
	if got2.AppState[0] != 1 {
		t.Fatal("store did not clone on load")
	}
}

func TestStoreBurstContention(t *testing.T) {
	// 1 GB/s shared link; two 100 MB checkpoints issued at t=0 serialize:
	// the second completes at 200ms and the queue peak is 100ms.
	st := NewMemStore(1e9, 1e9)
	end1, err := st.Save(&Snapshot{Rank: 0, Seq: 1, ModelBytes: 100e6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	end2, err := st.Save(&Snapshot{Rank: 1, Seq: 1, ModelBytes: 100e6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end1 != vtime.Time(100*vtime.Millisecond) {
		t.Fatalf("first write end %v", end1)
	}
	if end2 != vtime.Time(200*vtime.Millisecond) {
		t.Fatalf("second write end %v (no burst serialization)", end2)
	}
	if q := st.Stats().MaxQueue; q != 100*vtime.Millisecond {
		t.Fatalf("max queue %v", q)
	}
	// A staggered writer sees no queue.
	end3, _ := st.Save(&Snapshot{Rank: 2, Seq: 1, ModelBytes: 100e6}, end2)
	if end3 != end2.Add(100*vtime.Millisecond) {
		t.Fatalf("staggered write end %v", end3)
	}
	// Reads are timed too.
	_, rend, ok := st.Load(0, 1, 0)
	if !ok || rend != vtime.Time(100*vtime.Millisecond) {
		t.Fatalf("read timing %v %v", rend, ok)
	}
}

func TestStoreStats(t *testing.T) {
	st := NewMemStore(0, 0)
	_, _ = st.Save(&Snapshot{Rank: 0, Seq: 1, ModelBytes: 10}, 0)
	_, _, _ = st.Load(0, 1, 0)
	s := st.Stats()
	if s.Saves != 1 || s.Loads != 1 || s.SavedBytes != 10 {
		t.Fatalf("stats: %+v", s)
	}
}

// Property: after any sequence of saves, LatestSeq equals the most
// recently saved sequence — the current save streak; within one run a
// rank's sequences are monotone, and a save at or below the previous
// latest means a new run reuses the store — and that snapshot is always
// loadable.
func TestStoreProperties(t *testing.T) {
	f := func(seqs []uint8) bool {
		st := NewMemStore(0, 0)
		last := 0
		for _, s := range seqs {
			seq := int(s%50) + 1
			if _, err := st.Save(&Snapshot{Rank: 1, Seq: seq}, 0); err != nil {
				return false
			}
			last = seq
		}
		if st.LatestSeq(1) != last {
			return false
		}
		if last == 0 {
			return true
		}
		_, _, ok := st.Load(1, last, 0)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
