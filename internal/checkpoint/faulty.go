package checkpoint

import (
	"fmt"
	"sync"

	"hydee/internal/vtime"
)

// Storage fault injection: FaultyStore makes shards of a checkpoint
// store fail at a scheduled virtual time, the storage-side counterpart
// of rank kills. A fault is a pure predicate on the virtual time a store
// operation is issued at — and the runtime already orders every save
// through Network.AwaitTurn and issues restore loads at the recovery
// round's deterministic start time — so fault activation is totally
// ordered against all other store traffic on the same virtual-time event
// plane as rank failures, and faulted runs stay byte-reproducible.

// FaultKind selects what happens to a faulted shard.
type FaultKind int

const (
	// FaultKill makes the shard unavailable from AtVT on: writes issued
	// at or after AtVT are silently dropped, reads fail. Data written
	// before the kill is NOT recoverable through this shard — the model
	// is a lost storage target, not a transient outage.
	FaultKill FaultKind = iota
	// FaultCorrupt flips bytes in every snapshot read from the shard at
	// or after AtVT. Self-verifying backends (ec, replica) detect the
	// damage and treat the shard as lost; plain backends return the
	// corrupted snapshot undetected (see the DESIGN.md failure-semantics
	// table).
	FaultCorrupt
	// FaultDegrade multiplies the shard's modeled write cost and read
	// duration by Factor from AtVT on — a slow disk, not a dead one.
	// The write-cost inflation persists in the stored snapshot's modeled
	// size (that is what keeps the shard's contention window honest), so
	// a snapshot both written and read through a degraded shard pays the
	// factor on each pass: a stress knob, not a calibrated disk model.
	FaultDegrade
)

// String names the fault kind for formatted sweep output.
func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultCorrupt:
		return "corrupt"
	case FaultDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("faultkind(%d)", int(k))
	}
}

// ShardFault schedules one fault on one shard.
type ShardFault struct {
	// Shard indexes the target: a shard of ShardedStore/ECStore, a
	// replica of ReplicatedStore, or 0 for a non-composite store (the
	// whole store is one shard).
	Shard int
	// AtVT is the virtual time the fault takes effect; operations issued
	// at or after it see the fault. Must be positive.
	AtVT vtime.Time
	// Kind selects kill, corrupt or degrade.
	Kind FaultKind
	// Factor is the slowdown multiplier of FaultDegrade (> 1); ignored
	// by the other kinds.
	Factor float64
}

// FaultStats counts the operations one faulted shard absorbed.
type FaultStats struct {
	// LostWrites is saves dropped by a killed shard.
	LostWrites int64
	// LostReads is loads refused by a killed shard.
	LostReads int64
	// CorruptReads is loads that returned damaged snapshots.
	CorruptReads int64
}

// FaultyStore wraps a store so scheduled ShardFaults apply to its
// shards. For composite inners (ShardedStore, ECStore, ReplicatedStore)
// each fault targets one shard/replica; any other store is treated as a
// single shard 0. The wrapper must be installed before the store carries
// traffic (it rewires the composite's shard slots at construction).
type FaultyStore struct {
	inner  Store
	shards []*faultyShard
}

// shardSwapper is implemented by composite stores whose shard backends
// the fault plane can rewire.
type shardSwapper interface {
	NumShards() int
	swapShard(i int, wrap func(Store) Store)
}

// NewFaultyStore wraps inner with the given fault schedule. Shard
// indices are validated against the inner store's shard count, AtVT
// must be positive, and FaultDegrade needs Factor > 1.
func NewFaultyStore(inner Store, faults ...ShardFault) (*FaultyStore, error) {
	n := 1
	sw, composite := inner.(shardSwapper)
	if composite {
		n = sw.NumShards()
	}
	for _, f := range faults {
		if f.Shard < 0 || f.Shard >= n {
			return nil, fmt.Errorf("checkpoint: shard fault targets shard %d of a %d-shard store", f.Shard, n)
		}
		if f.AtVT <= 0 {
			return nil, fmt.Errorf("checkpoint: shard fault on shard %d: virtual time %v must be positive", f.Shard, f.AtVT)
		}
		switch f.Kind {
		case FaultKill, FaultCorrupt:
		case FaultDegrade:
			if f.Factor <= 1 {
				return nil, fmt.Errorf("checkpoint: degrade fault on shard %d: factor %g must be > 1", f.Shard, f.Factor)
			}
		default:
			return nil, fmt.Errorf("checkpoint: unknown fault kind %v", f.Kind)
		}
	}
	st := &FaultyStore{shards: make([]*faultyShard, n)}
	wrap := func(i int) func(Store) Store {
		return func(s Store) Store {
			sh := &faultyShard{inner: s}
			for _, f := range faults {
				if f.Shard == i {
					sh.faults = append(sh.faults, f)
				}
			}
			st.shards[i] = sh
			return sh
		}
	}
	if composite {
		for i := 0; i < n; i++ {
			sw.swapShard(i, wrap(i))
		}
		st.inner = inner
	} else {
		st.inner = wrap(0)(inner)
	}
	return st, nil
}

// Save implements Store.
func (st *FaultyStore) Save(s *Snapshot, at vtime.Time) (vtime.Time, error) {
	return st.inner.Save(s, at)
}

// LatestSeq implements Store. Sequence tracking is structural metadata,
// not shard payload, so it reflects saves the fault plane dropped; the
// runtime restores from its own completed-sequence records, and a load
// of a dropped sequence fails like any other lost checkpoint.
func (st *FaultyStore) LatestSeq(rank int) int { return st.inner.LatestSeq(rank) }

// Load implements Store.
func (st *FaultyStore) Load(rank, seq int, at vtime.Time) (*Snapshot, vtime.Time, bool) {
	return st.inner.Load(rank, seq, at)
}

// Stats implements Store, delegating to the wrapped store.
func (st *FaultyStore) Stats() StoreStats { return st.inner.Stats() }

// FaultStats reports per-shard fault activity, indexed like the fault
// schedule's Shard field.
func (st *FaultyStore) FaultStats() []FaultStats {
	out := make([]FaultStats, len(st.shards))
	for i, sh := range st.shards {
		out[i] = sh.statsSnapshot()
	}
	return out
}

// faultyShard applies one shard's fault schedule around an inner store.
type faultyShard struct {
	inner  Store
	faults []ShardFault

	mu    sync.Mutex
	stats FaultStats
}

// mode evaluates the fault schedule at the operation's issue time — a
// pure function of `at`, which is what keeps injection deterministic.
func (sh *faultyShard) mode(at vtime.Time) (killed, corrupt bool, slow float64) {
	slow = 1
	for _, f := range sh.faults {
		if f.AtVT > at {
			continue
		}
		switch f.Kind {
		case FaultKill:
			killed = true
		case FaultCorrupt:
			corrupt = true
		case FaultDegrade:
			slow *= f.Factor
		}
	}
	return killed, corrupt, slow
}

// Save implements Store: killed shards drop the write (counted, no
// error — a lost storage target fails silently, it does not abort the
// writer), degraded shards charge Factor× the modeled cost.
func (sh *faultyShard) Save(s *Snapshot, at vtime.Time) (vtime.Time, error) {
	killed, _, slow := sh.mode(at)
	if killed {
		sh.mu.Lock()
		sh.stats.LostWrites++
		sh.mu.Unlock()
		return at, nil
	}
	if slow != 1 {
		cp := *s
		cp.ModelBytes = int64(float64(s.CostBytes()) * slow)
		return sh.inner.Save(&cp, at)
	}
	return sh.inner.Save(s, at)
}

// LatestSeq implements Store (see FaultyStore.LatestSeq).
func (sh *faultyShard) LatestSeq(rank int) int { return sh.inner.LatestSeq(rank) }

// Load implements Store: killed shards refuse the read, corrupt shards
// damage the returned clone (detectable only by self-verifying
// backends), degraded shards stretch the read duration.
func (sh *faultyShard) Load(rank, seq int, at vtime.Time) (*Snapshot, vtime.Time, bool) {
	killed, corrupt, slow := sh.mode(at)
	if killed {
		sh.mu.Lock()
		sh.stats.LostReads++
		sh.mu.Unlock()
		return nil, at, false
	}
	s, end, ok := sh.inner.Load(rank, seq, at)
	if !ok {
		return nil, end, false
	}
	if slow != 1 {
		end = at.Add(vtime.Duration(float64(end.Sub(at)) * slow))
	}
	if corrupt {
		if len(s.AppState) > 0 {
			s.AppState[0] ^= 0xA5
		} else {
			s.AppState = []byte{0xA5}
		}
		sh.mu.Lock()
		sh.stats.CorruptReads++
		sh.mu.Unlock()
	}
	return s, end, true
}

// Stats implements Store.
func (sh *faultyShard) Stats() StoreStats { return sh.inner.Stats() }

func (sh *faultyShard) statsSnapshot() FaultStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stats
}
