// Package netmodel provides analytic network cost models for the simulated
// message-passing runtime.
//
// The paper evaluates HydEE on a Myrinet/MX 10G network. Its two failure-free
// costs are (a) the protocol data (date + phase) piggybacked on every
// message, which can push a small message across one of MX's native latency
// plateaus, and (b) the sender-side memcpy that logs inter-cluster payloads,
// which overlaps with transmission (Bosilca et al., EuroMPI'10) and is
// therefore almost free. Both mechanisms are modeled explicitly so the
// NetPIPE experiment (Figure 5) reproduces the paper's two degradation
// peaks and the equality of the logging and no-logging curves.
//
// The model follows LogGP: a send costs a CPU overhead o_s, the wire costs
// L(n) = step-latency(n) + n/BW, and a receive costs o_r. Latency plateaus
// are expressed as a step table, matching the observation in §V-C that
// "the native latency of MPICH2 is around 3.3µs for messages size 1 to 32
// bytes and then jumps to 4µs".
package netmodel

import (
	"fmt"
	"sort"

	"hydee/internal/vtime"
)

// Model computes virtual-time costs of communication operations.
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// SendOverhead is the CPU time the sender spends handing wireBytes to
	// the NIC (returns before the wire transfer completes).
	SendOverhead(wireBytes int) vtime.Duration
	// Latency is the end-to-end wire time for a message of wireBytes: the
	// receiver may complete the matching receive at sendTime+Latency.
	Latency(wireBytes int) vtime.Duration
	// RecvOverhead is the CPU time the receiver spends delivering
	// wireBytes to the application.
	RecvOverhead(wireBytes int) vtime.Duration
	// CopyCost is the CPU time to memcpy n bytes into a log buffer when
	// the copy is overlapped with a transmission of the same n bytes
	// (sender-based logging). Overlap hides the copy up to the wire time.
	CopyCost(n int, overlapped bool) vtime.Duration
}

// LatencyStep is one plateau of the native latency curve: messages of at
// most MaxBytes wire bytes observe Lat of base latency.
type LatencyStep struct {
	MaxBytes int
	Lat      vtime.Duration
}

// LogGP is a configurable LogGP-style model with a stepped base latency.
type LogGP struct {
	// ModelName is reported by Name.
	ModelName string
	// Steps is the plateau table, sorted by MaxBytes ascending. Messages
	// larger than the last step use RendezvousLat as base latency.
	Steps []LatencyStep
	// RendezvousLat is the base latency for messages above the last step
	// (rendezvous protocol handshake included).
	RendezvousLat vtime.Duration
	// BytesPerSec is the asymptotic wire bandwidth.
	BytesPerSec float64
	// SendOv and RecvOv are fixed per-message CPU overheads.
	SendOv, RecvOv vtime.Duration
	// SendPerByte adds a per-byte CPU cost on the sender (PIO copies of
	// eager data); applied below EagerMax only.
	SendPerByte float64 // ns per byte
	// EagerMax is the largest eager message; at most the last step size.
	EagerMax int
	// MemBytesPerSec is the memcpy bandwidth used by CopyCost.
	MemBytesPerSec float64
	// OverlapResidual is the fraction of the memcpy time still visible
	// when the copy overlaps a transmission (cache pollution, memory bus
	// contention). 0 reproduces the ideal result of Bosilca et al.
	OverlapResidual float64
}

// Name implements Model.
func (m *LogGP) Name() string { return m.ModelName }

// SendOverhead implements Model.
func (m *LogGP) SendOverhead(wireBytes int) vtime.Duration {
	d := m.SendOv
	if wireBytes <= m.EagerMax {
		d += vtime.Duration(float64(wireBytes) * m.SendPerByte)
	}
	return d
}

// Latency implements Model.
func (m *LogGP) Latency(wireBytes int) vtime.Duration {
	base := m.RendezvousLat
	// The table is short (a handful of plateaus); linear scan beats the
	// allocation cost of sort.Search closures on the hot path.
	for _, s := range m.Steps {
		if wireBytes <= s.MaxBytes {
			base = s.Lat
			break
		}
	}
	bw := vtime.Duration(float64(wireBytes) / m.BytesPerSec * 1e9)
	return base + bw
}

// RecvOverhead implements Model.
func (m *LogGP) RecvOverhead(wireBytes int) vtime.Duration { return m.RecvOv }

// CopyCost implements Model.
func (m *LogGP) CopyCost(n int, overlapped bool) vtime.Duration {
	if m.MemBytesPerSec <= 0 {
		return 0
	}
	copyTime := float64(n) / m.MemBytesPerSec * 1e9
	if !overlapped {
		return vtime.Duration(copyTime)
	}
	// The copy proceeds while the NIC drains the same bytes; because the
	// memory bus is faster than the wire the copy finishes first and only
	// a residual fraction (contention) remains visible to the CPU.
	wireTime := float64(n) / m.BytesPerSec * 1e9
	hidden := copyTime
	if hidden > wireTime {
		hidden = wireTime
	}
	visible := copyTime - hidden + m.OverlapResidual*hidden
	return vtime.Duration(visible)
}

// Validate checks internal consistency of the model configuration.
func (m *LogGP) Validate() error {
	if m.BytesPerSec <= 0 {
		return fmt.Errorf("netmodel %q: BytesPerSec must be positive", m.ModelName)
	}
	if !sort.SliceIsSorted(m.Steps, func(i, j int) bool {
		return m.Steps[i].MaxBytes < m.Steps[j].MaxBytes
	}) {
		return fmt.Errorf("netmodel %q: latency steps not sorted", m.ModelName)
	}
	for i := 1; i < len(m.Steps); i++ {
		if m.Steps[i].Lat < m.Steps[i-1].Lat {
			return fmt.Errorf("netmodel %q: latency steps not monotone", m.ModelName)
		}
	}
	return nil
}

// Myrinet10G returns a model calibrated to the paper's testbed: 10G-PCIE-8A-C
// Myri-10G NICs, ~3.3µs small-message latency with a plateau jump at 32
// bytes (§V-C), ~1.25 GB/s asymptotic bandwidth, 1 KiB piggyback threshold.
func Myrinet10G() *LogGP {
	return &LogGP{
		ModelName: "myri10g",
		Steps: []LatencyStep{
			{MaxBytes: 32, Lat: 3300 * vtime.Nanosecond},
			{MaxBytes: 128, Lat: 4000 * vtime.Nanosecond},
			{MaxBytes: 1024, Lat: 4300 * vtime.Nanosecond},
			{MaxBytes: 32 * 1024, Lat: 4800 * vtime.Nanosecond},
		},
		RendezvousLat:   6500 * vtime.Nanosecond,
		BytesPerSec:     1.19e9, // ~9.5 Gb/s NetPIPE peak on Myri-10G
		SendOv:          250 * vtime.Nanosecond,
		RecvOv:          250 * vtime.Nanosecond,
		SendPerByte:     0.25, // PIO copy of small eager data
		EagerMax:        1024,
		MemBytesPerSec:  5.0e9, // memcpy bandwidth, > wire (Bosilca et al.)
		OverlapResidual: 0.04,
	}
}

// TCPGigE returns a model of a commodity gigabit Ethernet / TCP stack, used
// to check that the protocol behaves sanely on a second channel as the
// MPICH2 implementation does (nemesis TCP netmod).
func TCPGigE() *LogGP {
	return &LogGP{
		ModelName: "tcpgige",
		Steps: []LatencyStep{
			{MaxBytes: 1024, Lat: 28 * vtime.Microsecond},
			{MaxBytes: 8192, Lat: 40 * vtime.Microsecond},
		},
		RendezvousLat:   70 * vtime.Microsecond,
		BytesPerSec:     0.117e9,
		SendOv:          2 * vtime.Microsecond,
		RecvOv:          2 * vtime.Microsecond,
		SendPerByte:     0.9,
		EagerMax:        8192,
		MemBytesPerSec:  5.0e9,
		OverlapResidual: 0.04,
	}
}

// Ideal returns a zero-cost model, useful in unit tests that assert protocol
// logic without timing noise.
func Ideal() *LogGP {
	return &LogGP{
		ModelName:   "ideal",
		BytesPerSec: 1e18,
	}
}

// PiggybackBytes is the size of the protocol data HydEE adds to every
// application message: the 4-byte date and 4-byte phase of the sender plus
// framing, matching the "two different solutions based on the size of the
// application message" description in §V-A. Kept as a constant so the
// NetPIPE experiment and the engines agree.
const PiggybackBytes = 16

// InlinePiggybackMax is the application-payload size (bytes) up to which
// protocol data travels as an extra segment of the same message; above it a
// separate control message is sent to avoid the extra memory copy (§V-A).
const InlinePiggybackMax = 1024
