package netmodel

import (
	"testing"
	"testing/quick"

	"hydee/internal/vtime"
)

func TestMyrinetPlateaus(t *testing.T) {
	m := Myrinet10G()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exactly the observation of §V-C: ~3.3µs up to 32 bytes, then a jump.
	l32 := m.Latency(32)
	l33 := m.Latency(33)
	if l32 >= l33 {
		t.Fatalf("no plateau jump at 32 bytes: %v vs %v", l32, l33)
	}
	if l32 < 3300 || l32 > 3400 {
		t.Fatalf("small-message latency %v outside the calibrated 3.3µs", l32)
	}
	if d := l33 - l32; d < 600 {
		t.Fatalf("plateau jump too small: %v", d)
	}
}

func TestLatencyMonotone(t *testing.T) {
	for _, m := range []*LogGP{Myrinet10G(), TCPGigE()} {
		prev := vtime.Duration(0)
		for n := 1; n <= 16<<20; n = n*5/4 + 1 {
			total := m.SendOverhead(n) + m.Latency(n) + m.RecvOverhead(n)
			if total < prev {
				t.Fatalf("%s: end-to-end cost not monotone at %d bytes: %v < %v", m.Name(), n, total, prev)
			}
			prev = total
		}
	}
}

func TestBandwidthAsymptote(t *testing.T) {
	m := Myrinet10G()
	n := 64 << 20
	lat := m.Latency(n)
	gotBW := float64(n) / lat.Seconds()
	if gotBW < 0.95*m.BytesPerSec || gotBW > 1.05*m.BytesPerSec {
		t.Fatalf("asymptotic bandwidth %.3g, model says %.3g", gotBW, m.BytesPerSec)
	}
}

func TestCopyCostOverlap(t *testing.T) {
	m := Myrinet10G()
	n := 1 << 20
	raw := m.CopyCost(n, false)
	overlapped := m.CopyCost(n, true)
	if overlapped >= raw {
		t.Fatalf("overlap did not hide the copy: %v >= %v", overlapped, raw)
	}
	// Memcpy is faster than the wire, so the copy hides fully up to the
	// residual contention fraction.
	want := vtime.Duration(float64(raw) * m.OverlapResidual)
	if overlapped < want/2 || overlapped > want*2 {
		t.Fatalf("residual %v far from expected %v", overlapped, want)
	}
}

func TestCopyCostZeroBandwidth(t *testing.T) {
	m := &LogGP{ModelName: "x", BytesPerSec: 1e9}
	if m.CopyCost(1000, true) != 0 {
		t.Fatal("copy cost should be 0 when MemBytesPerSec is unset")
	}
}

func TestIdealIsFree(t *testing.T) {
	m := Ideal()
	if m.SendOverhead(1<<20) != 0 || m.RecvOverhead(1<<20) != 0 {
		t.Fatal("ideal model has CPU overhead")
	}
	if m.Latency(1<<20) > vtime.Microsecond {
		t.Fatalf("ideal latency too large: %v", m.Latency(1<<20))
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := &LogGP{ModelName: "bad", BytesPerSec: 0}
	if bad.Validate() == nil {
		t.Fatal("accepted zero bandwidth")
	}
	bad = &LogGP{
		ModelName:   "bad",
		BytesPerSec: 1,
		Steps: []LatencyStep{
			{MaxBytes: 100, Lat: 5},
			{MaxBytes: 50, Lat: 10},
		},
	}
	if bad.Validate() == nil {
		t.Fatal("accepted unsorted steps")
	}
	bad = &LogGP{
		ModelName:   "bad",
		BytesPerSec: 1,
		Steps: []LatencyStep{
			{MaxBytes: 50, Lat: 10},
			{MaxBytes: 100, Lat: 5},
		},
	}
	if bad.Validate() == nil {
		t.Fatal("accepted non-monotone latencies")
	}
}

// Property: latency is non-negative and weakly monotone in size for any
// valid plateau configuration.
func TestLatencyProperties(t *testing.T) {
	m := Myrinet10G()
	f := func(a, b uint32) bool {
		x, y := int(a%(64<<20))+1, int(b%(64<<20))+1
		if x > y {
			x, y = y, x
		}
		lx, ly := m.Latency(x), m.Latency(y)
		return lx >= 0 && lx <= ly
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPiggybackConstants(t *testing.T) {
	if PiggybackBytes <= 0 || InlinePiggybackMax <= 0 {
		t.Fatal("piggyback constants must be positive")
	}
	// The inline threshold must sit on a plateau boundary of the Myrinet
	// model for the Figure 5 peak at 1 KiB to appear.
	m := Myrinet10G()
	if m.Latency(InlinePiggybackMax) >= m.Latency(InlinePiggybackMax+PiggybackBytes) {
		t.Fatal("piggyback at the threshold does not cross a plateau")
	}
}
