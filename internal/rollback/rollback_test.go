package rollback

import (
	"testing"
	"testing/quick"

	"hydee/internal/transport"
)

func TestTopologyBuilders(t *testing.T) {
	topo := NewTopology([]int{0, 0, 1, 1, 2, 2})
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.K() != 3 || topo.NP != 6 {
		t.Fatalf("K=%d NP=%d", topo.K(), topo.NP)
	}
	if !topo.SameCluster(0, 1) || topo.SameCluster(1, 2) {
		t.Fatal("SameCluster wrong")
	}
	if got := topo.Members[1]; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("members: %v", got)
	}

	single := SingleCluster(4)
	if single.K() != 1 || len(single.Members[0]) != 4 {
		t.Fatal("SingleCluster wrong")
	}
	singles := Singletons(4)
	if singles.K() != 4 {
		t.Fatal("Singletons wrong")
	}
}

func TestClustersOfAndRanksOf(t *testing.T) {
	topo := NewTopology([]int{0, 0, 1, 1, 2, 2})
	cl := topo.ClustersOf([]int{5, 0, 4})
	if len(cl) != 2 || cl[0] != 0 || cl[1] != 2 {
		t.Fatalf("clusters: %v", cl)
	}
	ranks := topo.RanksOf(cl)
	want := []int{0, 1, 4, 5}
	if len(ranks) != len(want) {
		t.Fatalf("ranks: %v", ranks)
	}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks: %v", ranks)
		}
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	bad := &Topology{NP: 3, ClusterOf: []int{0, 0}}
	if bad.Validate() == nil {
		t.Fatal("accepted mismatched NP")
	}
	bad2 := &Topology{NP: 2, ClusterOf: []int{0, 0}, Members: [][]int{{0, 1}, {}}}
	if bad2.Validate() == nil {
		t.Fatal("accepted empty cluster")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{AppSends: 1, LoggedBytes: 10, LogPeakBytes: 100}
	b := Metrics{AppSends: 2, LoggedBytes: 5, LogPeakBytes: 50, Suppressed: 3}
	a.Add(&b)
	if a.AppSends != 3 || a.LoggedBytes != 15 || a.Suppressed != 3 {
		t.Fatalf("add: %+v", a)
	}
	if a.LogPeakBytes != 100 {
		t.Fatalf("peak should be max, got %d", a.LogPeakBytes)
	}
}

func TestRoundInfoIncludes(t *testing.T) {
	r := RoundInfo{RolledBack: []int{2, 3}}
	if !r.Includes(2) || r.Includes(4) {
		t.Fatal("Includes wrong")
	}
}

func TestNativeProtocol(t *testing.T) {
	p := Native()
	if p.Name() != "native" || p.Tolerates() {
		t.Fatal("native misconfigured")
	}
	if p.NewRecovery(nil) != nil {
		t.Fatal("native should have no recovery coordinator")
	}
	e := p.NewEngine(0, nil)
	m := &transport.Msg{Dst: 1}
	v, err := e.PreSend(m)
	if err != nil || v.Suppress || v.PiggyWire != 0 {
		t.Fatalf("native PreSend: %+v %v", v, err)
	}
	if m.Date != 1 {
		t.Fatalf("date %d", m.Date)
	}
	m2 := &transport.Msg{Dst: 1}
	if _, err := e.PreSend(m2); err != nil || m2.Date != 2 {
		t.Fatal("date not monotonic")
	}
	if !e.Admit(m) {
		t.Fatal("native must admit everything")
	}
	if len(e.CheckpointScope()) != 0 {
		t.Fatal("native must not checkpoint")
	}
}

// Property: NewTopology(assign) partitions ranks: every rank appears in
// exactly one cluster's member list, at the index its assignment says.
func TestTopologyPartitionProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		assign := make([]int, len(raw))
		for i, r := range raw {
			assign[i] = int(r % 5)
		}
		// Compact ids so no cluster is empty.
		seen := map[int]int{}
		for i, c := range assign {
			k, ok := seen[c]
			if !ok {
				k = len(seen)
				seen[c] = k
			}
			assign[i] = k
		}
		topo := NewTopology(assign)
		if topo.Validate() != nil {
			return false
		}
		count := 0
		for c, members := range topo.Members {
			for _, r := range members {
				if topo.ClusterOf[r] != c {
					return false
				}
				count++
			}
		}
		return count == len(assign)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
