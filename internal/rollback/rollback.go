// Package rollback defines the framework shared by the rollback-recovery
// protocols: the process clustering topology, the engine interface each
// protocol implements per process, the recovery-coordinator interface, and
// the per-process metrics the experiments report.
//
// The runtime (internal/mpi) calls the engine at the application-level
// events of §II-C: PreSend at each Post, OnDeliver at each Delivery, plus
// checkpoint/restore hooks and a control-message dispatch. Engines run
// entirely on their process's goroutine; they never need internal locking.
package rollback

import (
	"errors"
	"fmt"

	"hydee/internal/checkpoint"
	"hydee/internal/netmodel"
	"hydee/internal/transport"
	"hydee/internal/vtime"
)

// ErrNotSendDeterministic reports that a protocol observed an execution
// inconsistent with the send-determinism assumption of §II-C: replayed
// sends after a rollback did not match the pre-failure execution, so the
// orphan accounting of the recovery round cannot balance. Protocols wrap
// it so callers can match with errors.Is.
var ErrNotSendDeterministic = errors.New("rollback: application is not send-deterministic")

// Topology is the static process clustering.
type Topology struct {
	NP        int
	ClusterOf []int
	// Members[c] lists the ranks of cluster c in ascending order.
	Members [][]int
}

// NewTopology builds a topology from a cluster assignment.
func NewTopology(assign []int) *Topology {
	np := len(assign)
	k := 0
	for _, c := range assign {
		if c < 0 {
			panic("rollback: negative cluster id")
		}
		if c+1 > k {
			k = c + 1
		}
	}
	t := &Topology{NP: np, ClusterOf: append([]int(nil), assign...), Members: make([][]int, k)}
	for r, c := range assign {
		t.Members[c] = append(t.Members[c], r)
	}
	return t
}

// SingleCluster puts all np ranks in one cluster (coordinated baseline).
func SingleCluster(np int) *Topology {
	assign := make([]int, np)
	return NewTopology(assign)
}

// Singletons puts every rank in its own cluster (message-logging baseline).
func Singletons(np int) *Topology {
	assign := make([]int, np)
	for i := range assign {
		assign[i] = i
	}
	return NewTopology(assign)
}

// K reports the number of clusters.
func (t *Topology) K() int { return len(t.Members) }

// SameCluster reports whether two ranks share a cluster.
func (t *Topology) SameCluster(a, b int) bool { return t.ClusterOf[a] == t.ClusterOf[b] }

// ClustersOf maps a set of ranks to the sorted set of their clusters.
func (t *Topology) ClustersOf(ranks []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, r := range ranks {
		c := t.ClusterOf[r]
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RanksOf returns the union of members of the given clusters, ascending.
func (t *Topology) RanksOf(clusters []int) []int {
	var out []int
	for _, c := range clusters {
		out = append(out, t.Members[c]...)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Validate checks the topology is well formed.
func (t *Topology) Validate() error {
	if t.NP != len(t.ClusterOf) {
		return fmt.Errorf("rollback: topology NP %d != assign len %d", t.NP, len(t.ClusterOf))
	}
	n := 0
	for _, m := range t.Members {
		if len(m) == 0 {
			return fmt.Errorf("rollback: empty cluster")
		}
		n += len(m)
	}
	if n != t.NP {
		return fmt.Errorf("rollback: members cover %d of %d ranks", n, t.NP)
	}
	return nil
}

// Metrics accumulates per-process protocol accounting. Owned by the process
// goroutine; harness reads it after the run.
type Metrics struct {
	AppSends      int64
	AppBytes      int64 // modeled payload bytes sent
	AppDelivers   int64
	LoggedMsgs    int64
	LoggedBytes   int64 // modeled payload bytes logged (sender-based)
	LogPeakBytes  int64 // peak log occupancy (modeled)
	PiggyBytes    int64 // modeled inline piggyback bytes
	CtlMsgs       int64
	Checkpoints   int64
	CkptBytes     int64 // modeled checkpoint volume written
	Restarts      int64
	ReplayedSends int64 // re-executed sends during recovery
	Suppressed    int64 // orphan sends suppressed (notification instead)
	ResentLogged  int64 // logged messages re-sent to a restarted cluster
	GCReclaimed   int64 // log bytes reclaimed by garbage collection
}

// Add accumulates other into m.
func (m *Metrics) Add(other *Metrics) {
	m.AppSends += other.AppSends
	m.AppBytes += other.AppBytes
	m.AppDelivers += other.AppDelivers
	m.LoggedMsgs += other.LoggedMsgs
	m.LoggedBytes += other.LoggedBytes
	if other.LogPeakBytes > m.LogPeakBytes {
		m.LogPeakBytes = other.LogPeakBytes
	}
	m.PiggyBytes += other.PiggyBytes
	m.CtlMsgs += other.CtlMsgs
	m.Checkpoints += other.Checkpoints
	m.CkptBytes += other.CkptBytes
	m.Restarts += other.Restarts
	m.ReplayedSends += other.ReplayedSends
	m.Suppressed += other.Suppressed
	m.ResentLogged += other.ResentLogged
	m.GCReclaimed += other.GCReclaimed
}

// RoundInfo describes one recovery round.
type RoundInfo struct {
	Round int
	// FailedClusters lists the clusters that roll back this round.
	FailedClusters []int
	// RolledBack lists the ranks that roll back this round.
	RolledBack []int
	// Incs[i] is the incarnation RolledBack[i] restarts with.
	Incs []int32
	// AllIncs is the current incarnation of every rank after the kills;
	// restored processes need it to stamp valid IncSeen values toward
	// peers that restarted in earlier rounds.
	AllIncs []int32
	// DetectVT is the virtual time the failure was detected.
	DetectVT vtime.Time
}

// Includes reports whether rank rolls back in this round.
func (r *RoundInfo) Includes(rank int) bool {
	for _, x := range r.RolledBack {
		if x == rank {
			return true
		}
	}
	return false
}

// SendVerdict is the engine's decision about one application send.
type SendVerdict struct {
	// Suppress replaces the physical send with an orphan notification
	// (Algorithm 2 lines 13-15): the receiver already holds the message.
	Suppress bool
	// PiggyWire is the modeled protocol-data size carried inline on this
	// message (small-message strategy).
	PiggyWire int
	// ExtraCPU is additional sender CPU (payload logging copy, or the
	// separate control message of the large-message strategy).
	ExtraCPU vtime.Duration
}

// Proc is the view an engine has of its process runtime.
type Proc interface {
	Rank() int
	Topo() *Topology
	Clock() *vtime.Clock
	Model() netmodel.Model
	Metrics() *Metrics
	// SendCtl sends a protocol control message; wireBytes models its size.
	SendCtl(dst int, body any, wireBytes int)
	// SendAppRaw re-injects a fully formed application message (log
	// replay): no engine hooks run, the envelope's Date/Phase stand.
	SendAppRaw(m *transport.Msg)
	// WaitCtl blocks the process, dispatching incoming control traffic to
	// the engine and buffering application traffic, until pred reports
	// true. It returns transport.ErrKilled if the process dies meanwhile.
	WaitCtl(pred func() bool) error
	// RecoveryID is the endpoint id of the recovery process.
	RecoveryID() int
	// HeldFrom reports the maximum application-message Date currently
	// held undelivered (buffered) from the given source, or 0.
	HeldFrom(src int) int64
	// HeldEntries lists the held undelivered application messages from
	// the given source (for orphan accounting).
	HeldEntries(src int) []HeldMsg
}

// HeldMsg summarizes one buffered, not-yet-delivered application message.
type HeldMsg struct {
	Date  int64
	Phase int
}

// Engine is the per-process protocol instance.
type Engine interface {
	Name() string
	// PreSend runs at each application-level Post event: the engine
	// assigns m.Date and m.Phase, decides logging/piggybacking, and during
	// recovery may block (send gating) or suppress the send. It returns an
	// error only if the process dies while blocked.
	PreSend(m *transport.Msg) (SendVerdict, error)
	// Admit decides, when an application message is matched for delivery,
	// whether it may reach the application. It returns false for
	// duplicates that a log replay supersedes (the sender had not yet
	// learned of this process's restart); such messages are dropped.
	Admit(m *transport.Msg) bool
	// OnDeliver runs at each application-level Delivery event.
	OnDeliver(m *transport.Msg)
	// OnCtl handles one protocol control message addressed to this rank.
	OnCtl(m *transport.Msg)
	// OnCheckpoint contributes protocol state to the snapshot under
	// construction (Algorithm 1 line 21: RPP, Logs, Phase, Date).
	OnCheckpoint(s *checkpoint.Snapshot)
	// OnRestore rehydrates protocol state from the snapshot and performs
	// the restart protocol of Algorithm 2 (rollback notifications etc.).
	// It runs on the restarted process's goroutine before the application
	// program resumes.
	OnRestore(s *checkpoint.Snapshot, round *RoundInfo)
	// CheckpointScope lists the ranks that coordinate checkpoints with
	// this process (its cluster for HydEE, everyone for the coordinated
	// baseline, itself only for uncoordinated logging).
	CheckpointScope() []int
}

// PhaseReporter is an optional Engine extension exposing the protocol's
// current logical state for tracing.
type PhaseReporter interface {
	CurrentPhase() int
	CurrentDate() int64
}

// RecoveryContext is the plumbing handed to a recovery coordinator.
type RecoveryContext interface {
	Topo() *Topology
	// Recv blocks for the next control message addressed to the recovery
	// process.
	Recv() (*transport.Msg, error)
	// SendCtl sends a control message from the recovery process.
	SendCtl(dst int, body any, wireBytes int)
	// Now is the recovery process's virtual clock (max of observed
	// arrival stamps).
	Now() vtime.Time
}

// RecoveryStats summarizes one recovery round.
type RecoveryStats struct {
	Round      int
	RolledBack int
	Orphans    int
	StartVT    vtime.Time
	EndVT      vtime.Time
	CtlMsgs    int
}

// Recovery is the per-round coordinator (Algorithm 4). Run blocks until the
// round is complete (all orphans replayed, all releases sent).
type Recovery interface {
	Run(round RoundInfo) (RecoveryStats, error)
}

// Protocol builds engines and recovery coordinators.
type Protocol interface {
	Name() string
	NewEngine(rank int, px Proc) Engine
	// NewRecovery returns the coordinator for a failure round, or nil if
	// the protocol needs none.
	NewRecovery(rx RecoveryContext) Recovery
	// RestartScope maps failed ranks to the full set of ranks that must
	// roll back.
	RestartScope(topo *Topology, failed []int) []int
	// Tolerates reports whether the protocol can recover from failures at
	// all (the native baseline cannot).
	Tolerates() bool
}
