package coord_test

import (
	"testing"
	"time"

	"hydee/internal/apps"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/rollback/coord"
)

func TestProtocolShape(t *testing.T) {
	p := coord.New()
	if p.Name() != "coord" || !p.Tolerates() {
		t.Fatal("misconfigured")
	}
	topo := rollback.NewTopology([]int{0, 0, 1, 1})
	scope := p.RestartScope(topo, []int{2})
	if len(scope) != 4 {
		t.Fatalf("global restart scope %v", scope)
	}
	if p.NewRecovery(nil) != nil {
		t.Fatal("coordinated restart needs no recovery coordinator")
	}
}

func TestGlobalRestartRecovers(t *testing.T) {
	run := func(sched *failure.Schedule) *mpi.Result {
		res, err := mpi.Run(mpi.Config{
			NP:              8,
			Topo:            rollback.SingleCluster(8),
			Protocol:        coord.New(),
			Model:           netmodel.Myrinet10G(),
			CheckpointEvery: 3,
			Failures:        sched,
			Watchdog:        30 * time.Second,
		}, apps.Stencil2D(9, 8192))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	if clean.Totals.LoggedMsgs != 0 || clean.Totals.PiggyBytes != 0 {
		t.Fatalf("coordinated baseline must not log or piggyback: %+v", clean.Totals)
	}
	failed := run(failure.NewSchedule(failure.Event{
		Ranks: []int{5},
		When:  failure.Trigger{AfterCheckpoints: 2},
	}))
	if failed.Totals.Restarts != 8 {
		t.Fatalf("restarts %d, want all 8 (no containment)", failed.Totals.Restarts)
	}
	for r := 0; r < 8; r++ {
		if clean.Results[r] != failed.Results[r] {
			t.Fatalf("rank %d diverged after global restart", r)
		}
	}
}

func TestGlobalRestartWithoutCheckpoint(t *testing.T) {
	res, err := mpi.Run(mpi.Config{
		NP:       4,
		Topo:     rollback.SingleCluster(4),
		Protocol: coord.New(),
		Failures: failure.NewSchedule(failure.Event{
			Ranks: []int{1},
			When:  failure.Trigger{AfterSends: 3},
		}),
		Watchdog: 30 * time.Second,
	}, apps.Ring(5, 512))
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Restarts != 4 {
		t.Fatalf("restarts %d", res.Totals.Restarts)
	}
	clean, err := mpi.Run(mpi.Config{
		NP: 4, Topo: rollback.SingleCluster(4), Protocol: coord.New(),
		Watchdog: 30 * time.Second,
	}, apps.Ring(5, 512))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if clean.Results[r] != res.Results[r] {
			t.Fatalf("rank %d diverged after from-scratch global restart", r)
		}
	}
}
