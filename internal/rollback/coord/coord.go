// Package coord implements the globally coordinated checkpointing baseline:
// a blocking coordinated checkpoint over all processes (Chandy–Lamport
// style channel flush with in-band markers, provided by the runtime), no
// message logging, no piggybacked protocol data, and a whole-application
// restart after any failure.
//
// It is the classical small-scale solution the paper contrasts HydEE with:
// perfect failure-free performance, no failure containment (every failure
// rolls back 100% of the processes), and a checkpoint I/O burst because all
// processes write their snapshots simultaneously (§VI).
package coord

import (
	"bytes"
	"encoding/gob"

	"hydee/internal/checkpoint"
	"hydee/internal/rollback"
	"hydee/internal/transport"
)

// Protocol is the coordinated-checkpointing baseline factory.
type Protocol struct{}

// New returns the baseline protocol.
func New() *Protocol { return &Protocol{} }

// Name implements rollback.Protocol.
func (*Protocol) Name() string { return "coord" }

// NewEngine implements rollback.Protocol.
func (*Protocol) NewEngine(rank int, px rollback.Proc) rollback.Engine {
	return &engine{px: px, rank: rank}
}

// NewRecovery implements rollback.Protocol: a global restart needs no
// coordinator — the restored global state is consistent by construction.
func (*Protocol) NewRecovery(rx rollback.RecoveryContext) rollback.Recovery { return nil }

// RestartScope implements rollback.Protocol: everyone rolls back.
func (*Protocol) RestartScope(topo *rollback.Topology, failed []int) []int {
	all := make([]int, topo.NP)
	for i := range all {
		all[i] = i
	}
	return all
}

// Tolerates implements rollback.Protocol.
func (*Protocol) Tolerates() bool { return true }

type engineState struct {
	Date int64
}

type engine struct {
	px   rollback.Proc
	rank int
	date int64
}

// Name implements rollback.Engine.
func (e *engine) Name() string { return "coord" }

// PreSend implements rollback.Engine: no logging, no piggyback.
func (e *engine) PreSend(m *transport.Msg) (rollback.SendVerdict, error) {
	e.date++
	m.Date = e.date
	m.Phase = 1
	return rollback.SendVerdict{}, nil
}

// Admit implements rollback.Engine. After a global restart every in-flight
// message was discarded with the mailboxes, so everything that arrives is
// current.
func (e *engine) Admit(m *transport.Msg) bool { return true }

// OnDeliver implements rollback.Engine.
func (e *engine) OnDeliver(m *transport.Msg) { e.date++ }

// OnCtl implements rollback.Engine.
func (e *engine) OnCtl(m *transport.Msg) {}

// OnCheckpoint implements rollback.Engine.
func (e *engine) OnCheckpoint(s *checkpoint.Snapshot) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(engineState{Date: e.date}); err == nil {
		s.ProtState = buf.Bytes()
	}
}

// OnRestore implements rollback.Engine.
func (e *engine) OnRestore(s *checkpoint.Snapshot, round *rollback.RoundInfo) {
	if len(s.ProtState) == 0 {
		e.date = 0
		return
	}
	var st engineState
	if err := gob.NewDecoder(bytes.NewReader(s.ProtState)).Decode(&st); err == nil {
		e.date = st.Date
	}
}

// CheckpointScope implements rollback.Engine: all processes coordinate.
func (e *engine) CheckpointScope() []int {
	topo := e.px.Topo()
	all := make([]int, topo.NP)
	for i := range all {
		all[i] = i
	}
	return all
}
