package rollback

import (
	"hydee/internal/checkpoint"
	"hydee/internal/transport"
)

// Native returns the no-fault-tolerance baseline: no logging, no
// piggybacking, no checkpoints. It is the "MPICH2" reference configuration
// of Figures 5 and 6. It cannot recover from failures.
func Native() Protocol { return nativeProtocol{} }

type nativeProtocol struct{}

func (nativeProtocol) Name() string { return "native" }

func (nativeProtocol) NewEngine(rank int, px Proc) Engine {
	return &nativeEngine{rank: rank}
}

func (nativeProtocol) NewRecovery(rx RecoveryContext) Recovery { return nil }

func (nativeProtocol) RestartScope(topo *Topology, failed []int) []int {
	// Irrelevant: Tolerates() is false, a failure aborts the run.
	return failed
}

func (nativeProtocol) Tolerates() bool { return false }

// nativeEngine only maintains the logical date so that traces stay
// comparable across protocols; it adds no protocol data to messages.
type nativeEngine struct {
	rank int
	date int64
}

func (e *nativeEngine) Name() string { return "native" }

func (e *nativeEngine) PreSend(m *transport.Msg) (SendVerdict, error) {
	e.date++
	m.Date = e.date
	m.Phase = 1
	return SendVerdict{}, nil
}

func (e *nativeEngine) Admit(m *transport.Msg) bool { return true }

func (e *nativeEngine) OnDeliver(m *transport.Msg) { e.date++ }

func (e *nativeEngine) OnCtl(m *transport.Msg) {}

func (e *nativeEngine) OnCheckpoint(s *checkpoint.Snapshot) {}

func (e *nativeEngine) OnRestore(s *checkpoint.Snapshot, round *RoundInfo) {}

func (e *nativeEngine) CheckpointScope() []int { return nil }
