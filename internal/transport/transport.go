// Package transport implements the reliable FIFO message substrate the
// HydEE protocol stack runs on.
//
// The system model of the paper (§II-A) assumes a set of processes connected
// by reliable FIFO channels with no synchrony assumption, and fail-stop
// process failures. Here every simulated process owns an Endpoint with an
// unbounded mailbox; Network.Send enqueues a message into the destination
// mailbox immediately (asynchronous, eager buffering — sends never block)
// and stamps it with a virtual arrival time computed by the network cost
// model. Per-(src,dst) FIFO order follows from each sender being a single
// goroutine and enqueueing under the destination mailbox lock.
//
// Failures: Kill marks the endpoint dead, wipes its mailbox, unblocks any
// blocked receiver with ErrKilled and bumps the process's incarnation
// number. Traffic already enqueued at other processes is left untouched;
// see Kill for the rationale.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"hydee/internal/netmodel"
	"hydee/internal/vtime"
)

// Kind discriminates the classes of traffic multiplexed on the channels.
type Kind uint8

const (
	// App is an application payload (a Post/Delivery event pair in the
	// terminology of §II-C). Only App messages are counted in the
	// communication matrix and subject to logging.
	App Kind = iota
	// Ctl is protocol control traffic (rollback notifications, recovery
	// process messages, garbage-collection acknowledgments, ...).
	Ctl
	// Marker is an in-band coordinated-checkpoint flush marker; it obeys
	// channel FIFO order with App traffic.
	Marker
)

func (k Kind) String() string {
	switch k {
	case App:
		return "app"
	case Ctl:
		return "ctl"
	case Marker:
		return "marker"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Msg is the wire envelope. Protocol fields (Date, Phase) are piggybacked
// protocol data in the sense of Algorithm 1; WireLen is the modeled
// application payload size used by the network cost model and byte
// accounting, while Data carries the (possibly much smaller) real bytes the
// simulated application computes on.
type Msg struct {
	Src, Dst int
	Kind     Kind
	Tag      int
	// Date is the sender's logical date at the send (Algorithm 1 line 6);
	// it uniquely identifies the message on its channel.
	Date int64
	// Phase is the sender's phase number (Algorithm 1 line 9).
	Phase int
	// Inc is the incarnation of the sending process at send time.
	Inc int32
	// IncSeen is the destination incarnation the sender believed current
	// at send time. A restarted receiver drops application messages with
	// a stale IncSeen: such messages were sent before the sender learned
	// of the rollback and, being inter-cluster, are guaranteed to be in
	// the sender's log and re-sent with the correct ordering.
	IncSeen int32
	// Epoch is the sender's checkpoint sequence number at send time; the
	// coordinated checkpoint uses it to classify in-transit intra-cluster
	// messages as pre- or post-snapshot.
	Epoch int
	// Round is the last recovery round the sender had processed at send
	// time (diagnostics).
	Round int
	// WireLen is the modeled payload size in bytes. If zero it defaults to
	// len(Data) at send time.
	WireLen int
	// PiggyLen is the modeled size of protocol data carried inline as an
	// extra segment of this message (small-message strategy of §V-A).
	PiggyLen int
	// Data is the actual payload.
	Data []byte
	// CtlBody carries a typed protocol control structure for Kind == Ctl.
	CtlBody any
	// SendVT and ArriveVT are the virtual send and earliest-delivery times.
	SendVT, ArriveVT vtime.Time
}

// Wire returns the modeled number of bytes this message occupies on the wire.
func (m *Msg) Wire() int { return m.WireLen + m.PiggyLen }

// ErrKilled is returned by receive operations on a killed endpoint.
var ErrKilled = errors.New("transport: process killed")

// Endpoint is the per-process mailbox.
type Endpoint struct {
	id   int
	mu   sync.Mutex
	cond *sync.Cond
	q    []*Msg
	dead bool
	// droppedWhileDead counts arrivals discarded because the process was
	// dead; exposed for tests and metrics.
	droppedWhileDead int
}

func newEndpoint(id int) *Endpoint {
	e := &Endpoint{id: id}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// ID reports the endpoint's identifier.
func (e *Endpoint) ID() int { return e.id }

// Recv blocks until a message is available and returns it in arrival order.
// It returns ErrKilled if the endpoint is (or becomes) dead.
func (e *Endpoint) Recv() (*Msg, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.dead {
			return nil, ErrKilled
		}
		if len(e.q) > 0 {
			m := e.q[0]
			e.q = e.q[1:]
			return m, nil
		}
		e.cond.Wait()
	}
}

// TryRecv returns the next message without blocking. ok reports whether a
// message was available.
func (e *Endpoint) TryRecv() (m *Msg, ok bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return nil, false, ErrKilled
	}
	if len(e.q) == 0 {
		return nil, false, nil
	}
	m = e.q[0]
	e.q = e.q[1:]
	return m, true, nil
}

// Pending reports the number of queued messages (diagnostics only).
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.q)
}

// DroppedWhileDead reports how many arrivals were discarded while the
// endpoint was dead.
func (e *Endpoint) DroppedWhileDead() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.droppedWhileDead
}

func (e *Endpoint) enqueue(m *Msg) {
	e.mu.Lock()
	if e.dead {
		e.droppedWhileDead++
		e.mu.Unlock()
		return
	}
	e.q = append(e.q, m)
	e.mu.Unlock()
	e.cond.Signal()
}

// kill wipes the queue and unblocks receivers.
func (e *Endpoint) kill() {
	e.mu.Lock()
	e.dead = true
	e.q = nil
	e.mu.Unlock()
	e.cond.Broadcast()
}

// revive clears the dead flag; the queue starts empty.
func (e *Endpoint) revive() {
	e.mu.Lock()
	e.dead = false
	e.q = nil
	e.mu.Unlock()
}

// PairStat accumulates traffic accounting for one ordered process pair.
type PairStat struct {
	Msgs       int64
	Bytes      int64 // modeled application payload bytes
	PiggyBytes int64 // modeled inline protocol bytes
}

// Network connects the endpoints and applies the cost model.
type Network struct {
	model netmodel.Model

	mu    sync.RWMutex
	eps   map[int]*Endpoint
	inc   []int32 // incarnation per application rank
	np    int
	stats []PairStat // np*np matrix, App traffic between application ranks
}

// NewNetwork creates a network with application endpoints 0..np-1.
func NewNetwork(np int, model netmodel.Model) *Network {
	n := &Network{
		model: model,
		eps:   make(map[int]*Endpoint, np+2),
		inc:   make([]int32, np),
		np:    np,
		stats: make([]PairStat, np*np),
	}
	for i := 0; i < np; i++ {
		n.eps[i] = newEndpoint(i)
	}
	return n
}

// NP reports the number of application ranks.
func (n *Network) NP() int { return n.np }

// Model exposes the cost model in use.
func (n *Network) Model() netmodel.Model { return n.model }

// Endpoint returns the endpoint with the given id, creating it if it is a
// non-application (service) id such as the recovery process.
func (n *Network) Endpoint(id int) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.eps[id]
	if !ok {
		e = newEndpoint(id)
		n.eps[id] = e
	}
	return e
}

// Incs returns a copy of the current incarnation of every application rank.
func (n *Network) Incs() []int32 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]int32(nil), n.inc...)
}

// IncOf reports the current incarnation of an application rank. Service
// endpoints always report zero.
func (n *Network) IncOf(rank int) int32 {
	if rank < 0 || rank >= n.np {
		return 0
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.inc[rank]
}

// Send stamps and enqueues m. The caller must have set Src, Dst and advanced
// its clock past the send overhead; SendVT is the sender's clock after that.
// WireLen defaults to len(Data).
func (n *Network) Send(m *Msg) error {
	if m.WireLen == 0 {
		m.WireLen = len(m.Data)
	}
	n.mu.RLock()
	dst, ok := n.eps[m.Dst]
	if !ok {
		n.mu.RUnlock()
		return fmt.Errorf("transport: send to unknown endpoint %d", m.Dst)
	}
	if m.Src >= 0 && m.Src < n.np {
		m.Inc = n.inc[m.Src]
	}
	n.mu.RUnlock()

	m.ArriveVT = m.SendVT.Add(n.model.Latency(m.Wire()))
	if m.Kind == App && m.Src >= 0 && m.Src < n.np && m.Dst >= 0 && m.Dst < n.np {
		n.account(m)
	}
	dst.enqueue(m)
	return nil
}

func (n *Network) account(m *Msg) {
	idx := m.Src*n.np + m.Dst
	n.mu.Lock()
	s := &n.stats[idx]
	s.Msgs++
	s.Bytes += int64(m.WireLen)
	s.PiggyBytes += int64(m.PiggyLen)
	n.mu.Unlock()
}

// Stats returns a copy of the pair-traffic matrix (np*np, row = src).
func (n *Network) Stats() []PairStat {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]PairStat, len(n.stats))
	copy(out, n.stats)
	return out
}

// PairStatAt returns accounting for the ordered pair (src, dst).
func (n *Network) PairStatAt(src, dst int) PairStat {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.stats[src*n.np+dst]
}

// Kill marks rank dead: bumps its incarnation, wipes its mailbox and wakes
// any blocked receiver with ErrKilled. It returns the incarnation the
// process will restart with.
//
// Messages the dead incarnation had already enqueued at other processes are
// deliberately left in place: a message sent before the victim's checkpoint
// is not rolled back and must still be delivered, and one sent after it is
// handled by the protocol's orphan machinery exactly as if it had been
// delivered just before the failure.
func (n *Network) Kill(rank int) int32 {
	n.mu.Lock()
	n.inc[rank]++
	newInc := n.inc[rank]
	victim := n.eps[rank]
	n.mu.Unlock()

	victim.kill()
	return newInc
}

// KillService kills a non-application endpoint (e.g. the recovery process)
// without touching incarnation bookkeeping.
func (n *Network) KillService(id int) {
	n.mu.RLock()
	e, ok := n.eps[id]
	n.mu.RUnlock()
	if ok {
		e.kill()
	}
}

// Restart revives the endpoint of rank with an empty mailbox.
func (n *Network) Restart(rank int) {
	n.mu.RLock()
	e := n.eps[rank]
	n.mu.RUnlock()
	e.revive()
}
