// Package transport implements the reliable FIFO message substrate the
// HydEE protocol stack runs on — with a deterministic virtual-time delivery
// plane.
//
// The system model of the paper (§II-A) assumes a set of processes connected
// by reliable FIFO channels with no synchrony assumption, and fail-stop
// process failures. Here every simulated process owns an Endpoint with an
// unbounded mailbox; Network.Send enqueues a message into the destination
// mailbox immediately (asynchronous, eager buffering — sends never block)
// and stamps it with a virtual arrival time computed by the network cost
// model.
//
// # Deterministic delivery
//
// An endpoint's mailbox is a priority queue ordered by the total delivery
// key (ArriveVT, Src, channel sequence). Per-(src,dst) FIFO is preserved by
// clamping each message's arrival time to be no earlier than its channel
// predecessor's (a FIFO channel admits no overtaking), which makes arrival
// times monotone per channel and the key order FIFO-consistent.
//
// Recv does not hand out the earliest queued message immediately: it gates
// delivery until no in-flight sender can still produce an earlier key. The
// network tracks a conservative action bound per source — a lower bound on
// the virtual time of the source's next send or checkpoint write — and a
// message is deliverable only once every other live source's earliest
// possible arrival (its bound plus the minimum latency) sorts after the
// message's key. Bounds advance when sources send (to their SendVT), when
// they block in Recv (a blocked source can only send after it delivers
// something itself, so its bound rises transitively), and when the
// supervisor attaches, quiesces, kills or restarts them (Publish, Quiesce,
// Kill, RestartAt). The chosen message is therefore a pure function of
// virtual time, independent of goroutine scheduling: gating can delay a
// delivery in real time, never reorder it.
//
// Because any source can send to any destination, the transitive bound has
// a closed form: with m1 the smallest "self cap" over all sources (a
// running source's frontier; a blocked source's max(frontier, queue head)),
// a blocked source's bound is max(frontier, min(queueHead, m1+minLat)), and
// the cap-minimal source's bound is exactly its cap. One O(sources) refresh
// after each plane mutation recomputes every bound and wakes exactly the
// waiters whose condition now holds — no broadcast herds, and no hand-made
// wake-up edges to get wrong.
//
// Progress requires strictly positive lookahead, so the network enforces a
// minimum virtual latency of 1ns per hop (zero-cost models otherwise admit
// cycles of processes none of which can be proven unable to produce an
// earlier stamp).
//
// Failures: the kill of a failed process is itself an ordered event in
// virtual time. Doom(rank, d) declares the endpoint dead *as of* virtual
// time d without stopping it immediately: operations at or below the fence
// complete exactly as a failure-free execution would have performed them
// (a queued checkpoint write issued at vt <= d still completes; a message
// arriving at vt <= d is still delivered), while the first wait for
// anything past the fence returns ErrKilled. The gate is victim-aware: a
// doomed endpoint blocked on traffic that provably cannot arrive at or
// below its fence — e.g. a scope peer waiting on the already-stopped
// victim — is reaped with ErrKilled instead of pinning its peers'
// transitive bounds forever (the naive pre-kill drain deadlock). Kill then
// finalizes the death: it marks the endpoint dead, wipes its mailbox,
// unblocks any remaining receiver with ErrKilled and bumps the process's
// incarnation number. Traffic already enqueued at other processes is left
// untouched; see Kill for the rationale.
package transport

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sync"

	"hydee/internal/netmodel"
	"hydee/internal/vtime"
)

// Kind discriminates the classes of traffic multiplexed on the channels.
type Kind uint8

const (
	// App is an application payload (a Post/Delivery event pair in the
	// terminology of §II-C). Only App messages are counted in the
	// communication matrix and subject to logging.
	App Kind = iota
	// Ctl is protocol control traffic (rollback notifications, recovery
	// process messages, garbage-collection acknowledgments, ...).
	Ctl
	// Marker is an in-band coordinated-checkpoint flush marker; it obeys
	// channel FIFO order with App traffic.
	Marker
)

func (k Kind) String() string {
	switch k {
	case App:
		return "app"
	case Ctl:
		return "ctl"
	case Marker:
		return "marker"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Msg is the wire envelope. Protocol fields (Date, Phase) are piggybacked
// protocol data in the sense of Algorithm 1; WireLen is the modeled
// application payload size used by the network cost model and byte
// accounting, while Data carries the (possibly much smaller) real bytes the
// simulated application computes on.
type Msg struct {
	Src, Dst int
	Kind     Kind
	Tag      int
	// Date is the sender's logical date at the send (Algorithm 1 line 6);
	// it uniquely identifies the message on its channel.
	Date int64
	// Phase is the sender's phase number (Algorithm 1 line 9).
	Phase int
	// Inc is the incarnation of the sending process at send time.
	Inc int32
	// IncSeen is the destination incarnation the sender believed current
	// at send time. A restarted receiver drops application messages with
	// a stale IncSeen: such messages were sent before the sender learned
	// of the rollback and, being inter-cluster, are guaranteed to be in
	// the sender's log and re-sent with the correct ordering.
	IncSeen int32
	// Epoch is the sender's checkpoint sequence number at send time; the
	// coordinated checkpoint uses it to classify in-transit intra-cluster
	// messages as pre- or post-snapshot.
	Epoch int
	// Round is the last recovery round the sender had processed at send
	// time (diagnostics).
	Round int
	// WireLen is the modeled payload size in bytes. If zero it defaults to
	// len(Data) at send time.
	WireLen int
	// PiggyLen is the modeled size of protocol data carried inline as an
	// extra segment of this message (small-message strategy of §V-A).
	PiggyLen int
	// Data is the actual payload.
	Data []byte
	// CtlBody carries a typed protocol control structure for Kind == Ctl.
	CtlBody any
	// SendVT and ArriveVT are the virtual send and earliest-delivery times.
	// ArriveVT is clamped so it is monotone per (src,dst) channel.
	SendVT, ArriveVT vtime.Time

	// chSeq is the message's position on its (src,dst) channel, the final
	// tiebreak of the delivery key. It is assigned under the delivery-plane
	// lock at enqueue, so it is deterministic per channel (each sender is a
	// single goroutine).
	chSeq uint64
}

// Wire returns the modeled number of bytes this message occupies on the wire.
func (m *Msg) Wire() int { return m.WireLen + m.PiggyLen }

// keyLess orders messages by the total delivery key (ArriveVT, Src, chSeq).
func keyLess(a, b *Msg) bool {
	if a.ArriveVT != b.ArriveVT {
		return a.ArriveVT < b.ArriveVT
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.chSeq < b.chSeq
}

// ErrKilled is returned by receive operations on a killed endpoint.
var ErrKilled = errors.New("transport: process killed")

// infTime is the "can never act again" bound.
const infTime = vtime.Time(math.MaxInt64)

// srcState classifies what a source may still do, for the delivery gate.
type srcState uint8

const (
	// stRunning: an actor is attached and executing; it may send at any
	// virtual time >= its frontier.
	stRunning srcState = iota
	// stBlocked: the actor is blocked in Recv at clock == frontier; it can
	// only send after it delivers a message itself.
	stBlocked
	// stIdle: no actor is attached (service endpoint between recovery
	// rounds, reaped process); it cannot send until reattached.
	stIdle
	// stDead: killed; it cannot send until restarted, and a restart resumes
	// no earlier than the stale frontier.
	stDead
)

// waitKind says what an endpoint's goroutine is parked on, so the refresh
// can signal exactly the waiters whose condition now holds.
type waitKind uint8

const (
	wNone waitKind = iota
	wRecv
	wTurn
)

// msgHeap is a min-heap of messages by delivery key.
type msgHeap []*Msg

func (h msgHeap) Len() int           { return len(h) }
func (h msgHeap) Less(i, j int) bool { return keyLess(h[i], h[j]) }
func (h msgHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)        { *h = append(*h, x.(*Msg)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return m
}

// Endpoint is the per-process mailbox. All mutable state is guarded by the
// owning Network's delivery-plane lock.
type Endpoint struct {
	id int
	n  *Network

	q    msgHeap
	dead bool
	// doomVT is the virtual time this endpoint is declared to die at
	// (infTime = not doomed). A doomed endpoint keeps operating at or
	// below the fence — in-flight work up to the failure's detection time
	// completes deterministically — and gets ErrKilled at its first wait
	// for anything provably past it.
	doomVT vtime.Time
	// droppedWhileDead counts arrivals discarded because the process was
	// dead; exposed for tests and metrics.
	droppedWhileDead int

	state    srcState
	frontier vtime.Time
	// bound is the action bound computed by the last refresh: no send or
	// checkpoint write by this source can be issued before it.
	bound vtime.Time

	// cond parks this endpoint's goroutine (shared delivery-plane lock);
	// waiting/turnVT describe what it waits for.
	cond    *sync.Cond
	waiting waitKind
	turnVT  vtime.Time

	// chArrive / chSeq track, per source, the last clamped arrival time and
	// the channel sequence counter (FIFO-consistency of the key order).
	chArrive map[int]vtime.Time
	chSeq    map[int]uint64
}

func newEndpoint(n *Network, id int, state srcState) *Endpoint {
	e := &Endpoint{
		id:       id,
		n:        n,
		state:    state,
		doomVT:   infTime,
		chArrive: make(map[int]vtime.Time),
		chSeq:    make(map[int]uint64),
	}
	e.cond = sync.NewCond(&n.dmu)
	return e
}

// ID reports the endpoint's identifier.
func (e *Endpoint) ID() int { return e.id }

// Recv blocks until the earliest message in virtual-time key order is
// deliverable — i.e. no in-flight sender can still produce an earlier stamp
// — and returns it. now is the caller's current virtual clock; while blocked
// the endpoint's send frontier is pinned there, since the caller cannot
// send before it delivers. It returns ErrKilled if the endpoint is (or
// becomes) dead.
func (e *Endpoint) Recv(now vtime.Time) (*Msg, error) {
	n := e.n
	n.dmu.Lock()
	defer n.dmu.Unlock()
	if e.dead {
		return nil, ErrKilled
	}
	// Commit to the blocked state BEFORE evaluating the gate: the caller
	// cannot send until this Recv returns, and the transitive bounds must
	// reflect that — evaluating while still marked running would let the
	// receiver's own stale frontier hold the plane's bounds below its
	// head's stamp and fail a check its own blocking satisfies.
	changed := e.state != stBlocked
	e.state = stBlocked
	if e.frontier < now {
		e.frontier = now
		changed = true
	}
	if changed {
		n.refreshLocked()
	}
	for {
		if e.dead {
			return nil, ErrKilled
		}
		if len(e.q) > 0 && n.gatePassLocked(e, e.q[0]) {
			if n.pastFenceLocked(e, e.q[0]) {
				// The gate proves the next delivery would happen past the
				// death fence; the process is dead by then.
				return nil, e.reapLocked()
			}
			m := heap.Pop(&e.q).(*Msg)
			e.deliveredLocked(m, now)
			return m, nil
		}
		if n.doomReapLocked(e) {
			return nil, e.reapLocked()
		}
		e.waiting = wRecv
		e.cond.Wait()
		e.waiting = wNone
	}
}

// pastFenceLocked reports whether delivering m to the doomed endpoint e
// would reach past its death fence. The boundary is doomVT plus one
// minimum-latency hop: the messages already on the wire the instant the
// failure was detected — anything the gate could have admitted while the
// stopped victim's stale frontier still constrained the plane — are part
// of the drain, so the outcome never depends on how quickly the
// supervisor's doom declaration raced the delivery.
func (n *Network) pastFenceLocked(e *Endpoint, m *Msg) bool {
	return e.doomVT < infTime && m.ArriveVT > e.doomVT.Add(n.minLat)
}

// reapLocked ends a doomed endpoint's wait: the caller's goroutine will
// unwind with ErrKilled, so the endpoint stops constraining the delivery
// gate (the supervisor finalizes the death with Kill once the goroutine is
// reaped). Without this transition a doomed scope peer blocked on the dead
// victim would pin its peers' transitive bounds forever.
func (e *Endpoint) reapLocked() error {
	if !e.dead && e.state != stIdle {
		e.state = stIdle
		e.n.refreshLocked()
	}
	return ErrKilled
}

// deliveredLocked records the state transition of a successful pop: the receiver
// runs again, and — for Ctl and Marker messages, which merge the receiver's
// clock to the arrival stamp before it can act — its frontier advances to
// the delivered stamp. App deliveries guarantee only the clock the receiver
// blocked with (a non-matching message is buffered without a merge).
func (e *Endpoint) deliveredLocked(m *Msg, now vtime.Time) {
	e.state = stRunning
	f := now
	if m.Kind != App && m.ArriveVT > f {
		f = m.ArriveVT
	}
	if f > e.frontier {
		e.frontier = f
	}
	e.n.refreshLocked()
}

// TryRecv returns the earliest deliverable message without blocking. ok
// reports whether one was available (queued and not gated).
func (e *Endpoint) TryRecv(now vtime.Time) (m *Msg, ok bool, err error) {
	n := e.n
	n.dmu.Lock()
	defer n.dmu.Unlock()
	if e.dead {
		return nil, false, ErrKilled
	}
	if e.frontier < now {
		e.frontier = now
		n.refreshLocked()
	}
	if len(e.q) == 0 || !n.gatePassLocked(e, e.q[0]) {
		if n.doomReapLocked(e) {
			return nil, false, e.reapLocked()
		}
		return nil, false, nil
	}
	if n.pastFenceLocked(e, e.q[0]) {
		return nil, false, e.reapLocked()
	}
	m = heap.Pop(&e.q).(*Msg)
	e.deliveredLocked(m, now)
	return m, true, nil
}

// Pending reports the number of queued messages (diagnostics only).
func (e *Endpoint) Pending() int {
	e.n.dmu.Lock()
	defer e.n.dmu.Unlock()
	return len(e.q)
}

// DroppedWhileDead reports how many arrivals were discarded while the
// endpoint was dead.
func (e *Endpoint) DroppedWhileDead() int {
	e.n.dmu.Lock()
	defer e.n.dmu.Unlock()
	return e.droppedWhileDead
}

// PairStat accumulates traffic accounting for one ordered process pair.
type PairStat struct {
	Msgs       int64
	Bytes      int64 // modeled application payload bytes
	PiggyBytes int64 // modeled inline protocol bytes
}

// boundRef is one (action bound, source id) pair, ordered lexicographically.
type boundRef struct {
	b  vtime.Time
	id int
}

func (r boundRef) less(s boundRef) bool {
	return r.b < s.b || (r.b == s.b && r.id < s.id)
}

// Network connects the endpoints and applies the cost model. It owns the
// deterministic delivery plane: one lock guards every mailbox and the
// per-source bounds; refreshLocked recomputes the bounds after every
// mutation and signals exactly the waiters whose condition now holds.
type Network struct {
	model netmodel.Model
	// minLat is the smallest latency any message can observe (>= 1ns),
	// the lookahead of the conservative delivery gate.
	minLat vtime.Duration

	dmu sync.Mutex
	eps map[int]*Endpoint
	// epList caches the endpoints for the refresh scan (append-only).
	epList []*Endpoint
	// low3 holds the three lexicographically smallest finite (bound, id)
	// pairs from the last refresh: any gate's relevant minimum — which
	// excludes at most the receiver and the head's source — is among them.
	low3 [3]boundRef
	// latentID designates the recovery endpoint as a latent source: while
	// it is idle, its bound is the plane's minimum cap rather than
	// infinity. A failure detected at a victim's clock c spawns recovery
	// stamps at >= c + minLat, and c is always >= the victim's cap at
	// every earlier pop — so the latent bound makes the plane anticipate a
	// potential recovery round and never admit a stamp a future round
	// could undercut. -1 when unset (raw transport use).
	latentID int
	inc      []int32 // incarnation per application rank
	np       int
	stats    []PairStat // np*np matrix, App traffic between application ranks
}

// NewNetwork creates a network with application endpoints 0..np-1, all
// running with a zero send frontier.
func NewNetwork(np int, model netmodel.Model) *Network {
	lat := model.Latency(0)
	if lat < 1 {
		lat = 1
	}
	n := &Network{
		model:    model,
		minLat:   lat,
		eps:      make(map[int]*Endpoint, np+2),
		latentID: -1,
		inc:      make([]int32, np),
		np:       np,
		stats:    make([]PairStat, np*np),
	}
	for i := 0; i < np; i++ {
		e := newEndpoint(n, i, stRunning)
		n.eps[i] = e
		n.epList = append(n.epList, e)
	}
	//hydee:allow lockdiscipline(constructor: the network is not shared yet, no lock needed)
	n.refreshLocked()
	return n
}

// NP reports the number of application ranks.
func (n *Network) NP() int { return n.np }

// MinLatency reports the minimum virtual latency of the plane (>= 1ns) —
// the delivery gate's lookahead. The supervisor stamps a failure round's
// recovery traffic one such hop after the detection time, so the attached
// recovery endpoint's bound never holds the drain at the fence itself.
func (n *Network) MinLatency() vtime.Duration { return n.minLat }

// Model exposes the cost model in use.
func (n *Network) Model() netmodel.Model { return n.model }

// Endpoint returns the endpoint with the given id, creating it if it is a
// non-application (service) id such as the recovery process. Service
// endpoints start idle: they buffer arrivals but are known not to send
// until attached with Publish.
func (n *Network) Endpoint(id int) *Endpoint {
	n.dmu.Lock()
	defer n.dmu.Unlock()
	return n.endpointLocked(id)
}

func (n *Network) endpointLocked(id int) *Endpoint {
	e, ok := n.eps[id]
	if !ok {
		e = newEndpoint(n, id, stIdle)
		e.bound = infTime
		n.eps[id] = e
		n.epList = append(n.epList, e)
	}
	return e
}

// DeclareRecovery registers id as the latent recovery source: even while no
// recovery round is active, the delivery gate assumes a failure could be
// detected at the plane's minimum cap and stamps from id could follow. The
// runtime calls it once at startup for the recovery endpoint, before any
// traffic flows.
func (n *Network) DeclareRecovery(id int) {
	n.dmu.Lock()
	n.latentID = id
	n.endpointLocked(id)
	n.refreshLocked()
	n.dmu.Unlock()
}

// Incs returns a copy of the current incarnation of every application rank.
func (n *Network) Incs() []int32 {
	n.dmu.Lock()
	defer n.dmu.Unlock()
	return append([]int32(nil), n.inc...)
}

// IncOf reports the current incarnation of an application rank. Service
// endpoints always report zero.
func (n *Network) IncOf(rank int) int32 {
	if rank < 0 || rank >= n.np {
		return 0
	}
	n.dmu.Lock()
	defer n.dmu.Unlock()
	return n.inc[rank]
}

// Send stamps and enqueues m. The caller must have set Src, Dst and advanced
// its clock past the send overhead; SendVT is the sender's clock after that.
// WireLen defaults to len(Data). Sending also publishes the sender's
// frontier: its next send cannot predate this one.
func (n *Network) Send(m *Msg) error {
	if m.WireLen == 0 {
		m.WireLen = len(m.Data)
	}
	lat := n.model.Latency(m.Wire())
	if lat < n.minLat {
		lat = n.minLat
	}

	n.dmu.Lock()
	defer n.dmu.Unlock()
	dst, ok := n.eps[m.Dst]
	if !ok {
		return fmt.Errorf("transport: send to unknown endpoint %d", m.Dst)
	}
	if m.Src >= 0 && m.Src < n.np {
		m.Inc = n.inc[m.Src]
	}
	// The sender cannot send again before this message's send time; a
	// source that demonstrably sends is live, so an idle one is promoted.
	if src, ok := n.eps[m.Src]; ok && src.state != stDead {
		if m.SendVT > src.frontier {
			src.frontier = m.SendVT
		}
		if src.state == stIdle {
			src.state = stRunning
		}
	}

	m.ArriveVT = m.SendVT.Add(lat)
	if m.Kind == App && m.Src >= 0 && m.Src < n.np && m.Dst >= 0 && m.Dst < n.np {
		s := &n.stats[m.Src*n.np+m.Dst]
		s.Msgs++
		s.Bytes += int64(m.WireLen)
		s.PiggyBytes += int64(m.PiggyLen)
	}
	// FIFO channels admit no overtaking: clamp the arrival to the channel
	// predecessor's, making arrival times monotone per (src,dst) and the
	// delivery key order FIFO-consistent. The channel state advances even
	// when the destination is dead: FIFO order is a property of the
	// channel, not of the receiver's liveness, and a restarted receiver
	// continues it — otherwise whether a send landed just before the kill
	// (buffered, then wiped) or just after (dropped) would leave different
	// clamps behind and the restarted incarnation's arrival stamps would
	// depend on that real-time race.
	if last := dst.chArrive[m.Src]; m.ArriveVT < last {
		m.ArriveVT = last
	}
	dst.chArrive[m.Src] = m.ArriveVT
	dst.chSeq[m.Src]++
	m.chSeq = dst.chSeq[m.Src]
	if dst.dead {
		dst.droppedWhileDead++
		n.refreshLocked() // the sender's frontier still advanced
		return nil
	}
	heap.Push(&dst.q, m)
	n.refreshLocked()
	return nil
}

// Publish raises id's send frontier to vt and marks it running. Actors call
// it when their clock advances without a transport operation (local compute,
// checkpoint I/O) and the supervisor calls it to attach a service actor; a
// stale frontier never reorders deliveries, it only delays them in real
// time.
func (n *Network) Publish(id int, vt vtime.Time) {
	n.dmu.Lock()
	e := n.endpointLocked(id)
	if e.state != stDead && (e.state != stRunning || vt > e.frontier) {
		e.state = stRunning
		if vt > e.frontier {
			e.frontier = vt
		}
		n.refreshLocked()
	}
	n.dmu.Unlock()
}

// Quiesce marks id as unable to send until reattached (Publish, Restart):
// its queue keeps buffering, but the delivery gate stops waiting on it. The
// supervisor quiesces the recovery endpoint between rounds and process
// endpoints whose goroutine has exited.
func (n *Network) Quiesce(id int) {
	n.dmu.Lock()
	e := n.endpointLocked(id)
	if e.state != stDead && e.state != stIdle {
		e.state = stIdle
		n.refreshLocked()
	}
	n.dmu.Unlock()
}

// AwaitTurn blocks until no other live source can still act (send or issue
// a checkpoint write) at a virtual time before (vt, id), pinning id's own
// frontier at vt meanwhile. The checkpoint runtime brackets stable-storage
// writes with it so shared-bandwidth contention resolves in virtual-time
// order, not real-time race order. A doomed endpoint's turn at or below its
// death fence is still granted — an in-flight checkpoint write issued
// before the failure's detection time completes — while a turn past the
// fence returns ErrKilled: the write is cancelled deterministically.
func (n *Network) AwaitTurn(id int, vt vtime.Time) error {
	n.dmu.Lock()
	defer n.dmu.Unlock()
	e := n.endpointLocked(id)
	e.turnVT = vt
	for {
		if e.dead {
			return ErrKilled
		}
		if vt > e.doomVT {
			return e.reapLocked()
		}
		if e.state != stRunning || e.frontier < vt {
			e.state = stRunning
			if vt > e.frontier {
				e.frontier = vt
			}
			n.refreshLocked()
		}
		if n.turnPassLocked(e, vt) {
			return nil
		}
		e.waiting = wTurn
		e.cond.Wait()
		e.waiting = wNone
	}
}

// refreshLocked recomputes every source's action bound and signals the
// waiters whose condition now holds. It must be called at the end of every
// delivery-plane mutation; the bounds are therefore always current when a
// gate is evaluated.
//
// Closed form of the transitive bound (any source can send to any
// destination): let cap(e) be max(frontier, queue head) for a blocked
// source (inf with an empty queue), the frontier for a running or dead one
// and inf for an idle one, and let m1 be the smallest cap. The cap-minimal
// source's bound is exactly its cap (its head precedes anything others can
// still produce), and every other blocked source's bound is
// max(frontier, min(queueHead, m1+minLat)): it can only act after
// delivering something, which arrives no earlier than min of its own head
// and the earliest stamp the rest of the plane can still emit.
func (n *Network) refreshLocked() {
	// Pass 1: caps and their two smallest values.
	m1, m2 := infTime, infTime
	var a1 *Endpoint
	for _, e := range n.epList {
		cap := infTime
		switch e.state {
		case stRunning, stDead:
			cap = e.frontier
		case stBlocked:
			if len(e.q) > 0 {
				cap = e.frontier
				if h := e.q[0].ArriveVT; h > cap {
					cap = h
				}
			}
		}
		e.bound = cap // provisional; blocked non-minimal sources improve below
		if cap < m1 {
			m2, m1, a1 = m1, cap, e
		} else if cap < m2 {
			m2 = cap
		}
	}
	// Pass 2: blocked sources other than the unique cap-argmin are bounded
	// by the earliest arrival the rest of the plane can still emit, and the
	// idle latent recovery source by the earliest virtual time a failure
	// could still be detected at (the minimum cap).
	low := [3]boundRef{{infTime, -1}, {infTime, -1}, {infTime, -1}}
	for _, e := range n.epList {
		if e.state == stBlocked && e != a1 && m1 < infTime {
			b := m1.Add(n.minLat)
			if len(e.q) > 0 && e.q[0].ArriveVT < b {
				b = e.q[0].ArriveVT
			}
			if e.frontier > b {
				b = e.frontier
			}
			e.bound = b
		} else if e.state == stIdle && e.id == n.latentID {
			e.bound = m1
		}
		if e.bound < infTime {
			r := boundRef{e.bound, e.id}
			switch {
			case r.less(low[0]):
				low[0], low[1], low[2] = r, low[0], low[1]
			case r.less(low[1]):
				low[1], low[2] = r, low[1]
			case r.less(low[2]):
				low[2] = r
			}
		}
	}
	n.low3 = low
	// Pass 3: wake exactly the waiters whose condition now holds.
	for _, e := range n.epList {
		switch e.waiting {
		case wRecv:
			if e.dead || (len(e.q) > 0 && n.gatePassLocked(e, e.q[0])) || n.doomReapLocked(e) {
				e.cond.Signal()
			}
		case wTurn:
			if e.dead || e.turnVT > e.doomVT || n.turnPassLocked(e, e.turnVT) {
				e.cond.Signal()
			}
		}
	}
}

// doomReapLocked reports whether a doomed endpoint blocked in Recv can be
// reaped: nothing within the fence can still be delivered to it — its
// queue holds no pre-fence message and no other live source's bound still
// admits a send at or below the fence (a source bound above doomVT can
// only produce arrivals past doomVT+minLat, outside the drain). This is
// what makes the gate victim-aware: a scope peer blocked on the
// already-stopped victim is released with ErrKilled the moment the plane
// proves the wait hopeless, instead of deadlocking the pre-kill drain.
func (n *Network) doomReapLocked(e *Endpoint) bool {
	d := e.doomVT
	if d == infTime || e.dead {
		return false
	}
	if len(e.q) > 0 && !n.pastFenceLocked(e, e.q[0]) {
		return false // a pre-fence message is queued; it must be delivered
	}
	for _, r := range n.low3 {
		if r.b == infTime {
			return true
		}
		if r.id == e.id {
			continue
		}
		return r.b > d
	}
	return true
}

// gatePassLocked reports whether m — the minimum-key message queued at dst
// — can be delivered now: no other live source can still produce a message
// that sorts before it. Messages from m's own source are FIFO-clamped
// behind it, and dst itself cannot send while it is receiving. The relevant
// constraint is the lexicographic minimum of (bound, id) over all sources
// except those two, which is among the plane's three smallest.
func (n *Network) gatePassLocked(dst *Endpoint, m *Msg) bool {
	for _, r := range n.low3 {
		if r.b == infTime {
			return true
		}
		if r.id == dst.id || r.id == m.Src {
			continue
		}
		// The source's next message arrives no earlier than r.b + minLat,
		// with source tiebreak r.id.
		a := r.b.Add(n.minLat)
		return a > m.ArriveVT || (a == m.ArriveVT && r.id > m.Src)
	}
	return true
}

// turnPassLocked reports whether e holds the (vt, id) action turn: every
// other live source's bound sorts strictly after it.
func (n *Network) turnPassLocked(e *Endpoint, vt vtime.Time) bool {
	for _, r := range n.low3 {
		if r.b == infTime {
			return true
		}
		if r.id == e.id {
			continue
		}
		return r.b > vt || (r.b == vt && r.id > e.id)
	}
	return true
}

// DebugState renders the delivery plane (states, frontiers, bounds, queue
// heads) for deadlock diagnostics; the runtime includes it in watchdog
// errors.
func (n *Network) DebugState() string {
	n.dmu.Lock()
	defer n.dmu.Unlock()
	var b []byte
	names := [...]string{"running", "blocked", "idle", "dead"}
	for _, e := range n.epList {
		head := "-"
		if len(e.q) > 0 {
			m := e.q[0]
			head = fmt.Sprintf("%s src=%d avt=%d deliverable=%v", m.Kind, m.Src, m.ArriveVT, n.gatePassLocked(e, m))
		}
		doom := ""
		if e.doomVT < infTime {
			doom = fmt.Sprintf(" doom=%d", e.doomVT)
		}
		b = fmt.Appendf(b, "  ep %d: %s frontier=%d bound=%d%s qlen=%d head={%s}\n",
			e.id, names[e.state], e.frontier, e.bound, doom, len(e.q), head)
	}
	return string(b)
}

// Stats returns a copy of the pair-traffic matrix (np*np, row = src).
func (n *Network) Stats() []PairStat {
	n.dmu.Lock()
	defer n.dmu.Unlock()
	out := make([]PairStat, len(n.stats))
	copy(out, n.stats)
	return out
}

// PairStatAt returns accounting for the ordered pair (src, dst).
func (n *Network) PairStatAt(src, dst int) PairStat {
	n.dmu.Lock()
	defer n.dmu.Unlock()
	return n.stats[src*n.np+dst]
}

// Doom declares that id dies at virtual time d without stopping it
// immediately: the endpoint keeps taking checkpoint-write turns stamped at
// or below d and keeps delivering messages arriving within one
// minimum-latency hop of d (anything the gate could have admitted while
// the stopped victim's stale frontier still constrained the plane) exactly
// as a failure-free execution would, and its first wait for anything
// provably past that fence returns ErrKilled. The supervisor dooms a
// failure's whole restart scope at the detection time, drains the plane to
// the fence, and only then finalizes with Kill — making the kill phase an
// ordered event in virtual time. An earlier doom wins when called twice;
// Kill and RestartAt clear it.
func (n *Network) Doom(id int, d vtime.Time) {
	n.dmu.Lock()
	e := n.endpointLocked(id)
	if !e.dead && d < e.doomVT {
		e.doomVT = d
		n.refreshLocked()
	}
	n.dmu.Unlock()
}

// Kill marks rank dead: bumps its incarnation, wipes its mailbox and wakes
// any blocked receiver with ErrKilled. It returns the incarnation the
// process will restart with. A dead source keeps constraining the delivery
// gate at its stale frontier: it can only come back via RestartAt, at or
// after that point (the runtime resumes it from a checkpoint read no
// earlier than the failure's detection time), so the plane never admits a
// stamp its restart could undercut.
//
// Messages the dead incarnation had already enqueued at other processes are
// deliberately left in place: a message sent before the victim's checkpoint
// is not rolled back and must still be delivered, and one sent after it is
// handled by the protocol's orphan machinery exactly as if it had been
// delivered just before the failure.
func (n *Network) Kill(rank int) int32 {
	n.dmu.Lock()
	n.inc[rank]++
	newInc := n.inc[rank]
	n.killLocked(n.eps[rank])
	n.dmu.Unlock()
	return newInc
}

// KillService kills a non-application endpoint (e.g. the recovery process)
// without touching incarnation bookkeeping.
func (n *Network) KillService(id int) {
	n.dmu.Lock()
	if e, ok := n.eps[id]; ok {
		n.killLocked(e)
	}
	n.dmu.Unlock()
}

func (n *Network) killLocked(e *Endpoint) {
	e.dead = true
	e.state = stDead
	e.doomVT = infTime
	e.q = nil
	n.refreshLocked()
}

// Restart revives the endpoint of rank with an empty mailbox.
func (n *Network) Restart(rank int) { n.RestartAt(rank, 0) }

// RestartAt revives the endpoint of rank with an empty mailbox, running
// with its send frontier at exactly vt — the virtual time the restarted
// process resumes from. The frontier is allowed to move BACKWARDS here: a
// rolled-back scope member whose pre-kill clock ran ahead of the detection
// time resumes from its checkpoint below its stale frontier, and keeping
// the stale value would advertise a bound its re-executed sends undercut.
// Rewinding is sound because the latent recovery source (DeclareRecovery)
// capped every delivery at the plane's minimum cap plus lookahead, which
// never exceeded the detection time the restart resumes at or after.
// Channel clamps are kept: a restarted receiver's channels continue the
// FIFO order survivors already observed.
func (n *Network) RestartAt(rank int, vt vtime.Time) {
	n.dmu.Lock()
	e := n.eps[rank]
	e.dead = false
	e.state = stRunning
	e.doomVT = infTime
	e.frontier = vt
	e.q = nil
	n.refreshLocked()
	n.dmu.Unlock()
}

// AttachAt marks id running with its send frontier at exactly vt,
// rewinding a stale frontier left by a previous attachment. The supervisor
// uses it to attach the recovery endpoint at a round's detection time,
// which may precede the virtual time the previous round ended at; the same
// latent-source argument as RestartAt makes the rewind sound.
func (n *Network) AttachAt(id int, vt vtime.Time) {
	n.dmu.Lock()
	e := n.endpointLocked(id)
	if e.state != stDead {
		e.state = stRunning
		e.frontier = vt
		n.refreshLocked()
	}
	n.dmu.Unlock()
}

// RestartServiceAt revives a killed service endpoint (the recovery process)
// with an empty mailbox, running at frontier vt. The supervisor uses it when
// a starved recovery round is superseded: the old coordinator was killed
// mid-round (KillService), and the superseding merged round's coordinator
// reuses the endpoint. Unlike AttachAt it revives a dead endpoint; unlike
// RestartAt it touches no incarnation bookkeeping.
func (n *Network) RestartServiceAt(id int, vt vtime.Time) {
	n.dmu.Lock()
	e := n.endpointLocked(id)
	e.dead = false
	e.state = stRunning
	e.doomVT = infTime
	e.frontier = vt
	e.q = nil
	n.refreshLocked()
	n.dmu.Unlock()
}

// MaxFrontier reports the largest send frontier over all endpoints — an
// upper bound on every virtual stamp the plane has produced or admitted
// (any admitted delivery advanced some frontier to at least its stamp minus
// one hop). At a quiescent point it is a pure function of virtual time: the
// supervisor uses it to place a superseding merged round's start.
func (n *Network) MaxFrontier() vtime.Time {
	n.dmu.Lock()
	defer n.dmu.Unlock()
	var max vtime.Time
	for _, e := range n.epList {
		if e.frontier > max {
			max = e.frontier
		}
	}
	return max
}

// Quiescent reports whether the plane is truly stuck: exactly expected
// goroutines are parked (in Recv or AwaitTurn) and none of their wake
// conditions — the ones refreshLocked signals on — hold. A true result is a
// stable property: no parked goroutine can run again until the caller
// mutates the plane, and the stuck state it describes is a pure function of
// virtual time (every run of the same schedule reaches the identical one).
// The supervisor uses it to detect a starved recovery round — one whose
// coordinator waits on reports from ranks a queued overlapping failure
// already killed — and deterministically supersede it.
func (n *Network) Quiescent(expected int) bool {
	n.dmu.Lock()
	defer n.dmu.Unlock()
	parked := 0
	for _, e := range n.epList {
		switch e.waiting {
		case wRecv:
			parked++
			if e.dead || (len(e.q) > 0 && n.gatePassLocked(e, e.q[0])) || n.doomReapLocked(e) {
				return false
			}
		case wTurn:
			parked++
			if e.dead || e.turnVT > e.doomVT || n.turnPassLocked(e, e.turnVT) {
				return false
			}
		}
	}
	return parked == expected
}
