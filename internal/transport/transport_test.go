package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hydee/internal/netmodel"
	"hydee/internal/vtime"
)

func send(t *testing.T, n *Network, src, dst int, tag int, at vtime.Time) {
	t.Helper()
	err := n.Send(&Msg{Src: src, Dst: dst, Kind: App, Tag: tag, Data: []byte{byte(tag)}, SendVT: at})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerChannel(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	for i := 0; i < 100; i++ {
		send(t, n, 0, 1, i, 0)
	}
	ep := n.Endpoint(1)
	for i := 0; i < 100; i++ {
		m, err := ep.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		if m.Tag != i {
			t.Fatalf("out of order: got %d want %d", m.Tag, i)
		}
	}
}

func TestArrivalStamping(t *testing.T) {
	model := netmodel.Myrinet10G()
	n := NewNetwork(2, model)
	at := vtime.Time(1000)
	err := n.Send(&Msg{Src: 0, Dst: 1, Kind: App, Data: make([]byte, 64), SendVT: at})
	if err != nil {
		t.Fatal(err)
	}
	m, err := n.Endpoint(1).Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	want := at.Add(model.Latency(64))
	if m.ArriveVT != want {
		t.Fatalf("arrival %v, want %v", m.ArriveVT, want)
	}
}

func TestFIFOClampMakesArrivalMonotonePerChannel(t *testing.T) {
	// A small message posted right after a large one on the same channel
	// would overtake it by raw latency; FIFO channels admit no overtaking,
	// so its arrival is clamped to the predecessor's.
	model := netmodel.Myrinet10G()
	n := NewNetwork(2, model)
	err := n.Send(&Msg{Src: 0, Dst: 1, Kind: App, Tag: 1, WireLen: 100 << 10, SendVT: 0})
	if err != nil {
		t.Fatal(err)
	}
	err = n.Send(&Msg{Src: 0, Dst: 1, Kind: App, Tag: 2, WireLen: 1, SendVT: 1})
	if err != nil {
		t.Fatal(err)
	}
	ep := n.Endpoint(1)
	m1, err := ep.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ep.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Tag != 1 || m2.Tag != 2 {
		t.Fatalf("FIFO order violated: got tags %d,%d", m1.Tag, m2.Tag)
	}
	if m2.ArriveVT != m1.ArriveVT {
		t.Fatalf("small message not clamped: %v vs %v", m2.ArriveVT, m1.ArriveVT)
	}
}

func TestDeliveryFollowsVirtualTimeNotEnqueueOrder(t *testing.T) {
	// Src 2 enqueues first in real time but with the later virtual stamp;
	// the receiver must still see virtual-time order.
	n := NewNetwork(3, netmodel.Myrinet10G())
	send(t, n, 2, 1, 22, 100_000)
	send(t, n, 0, 1, 11, 50_000)
	// Neither message is deliverable while the other sender could still
	// produce an earlier stamp; retire both senders.
	n.Quiesce(0)
	n.Quiesce(2)
	ep := n.Endpoint(1)
	m1, err := ep.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ep.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Tag != 11 || m2.Tag != 22 {
		t.Fatalf("virtual-time order violated: got tags %d,%d", m1.Tag, m2.Tag)
	}
}

func TestRecvGatesOnLaggingSenderFrontier(t *testing.T) {
	// A queued message is not handed out while a third process's frontier
	// still admits an earlier stamp; publishing the frontier past the
	// message releases it.
	n := NewNetwork(3, netmodel.Myrinet10G())
	send(t, n, 0, 1, 7, 50_000) // arrives ~53µs
	got := make(chan *Msg, 1)
	go func() {
		m, err := n.Endpoint(1).Recv(0)
		if err == nil {
			got <- m
		}
	}()
	select {
	case <-got:
		t.Fatal("message delivered while src 2 could still produce an earlier stamp")
	case <-time.After(20 * time.Millisecond):
	}
	n.Publish(2, 60_000) // now any message from 2 must arrive after 53µs+ε
	select {
	case m := <-got:
		if m.Tag != 7 {
			t.Fatalf("got tag %d", m.Tag)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery not released by frontier publish")
	}
}

func TestBlockedReceiverFrontierUnblocksPeers(t *testing.T) {
	// Src 2 never publishes explicitly, but blocking in Recv pins its
	// frontier at its clock, and the transitive bound (it must deliver
	// something itself before it can send) releases rank 1's message.
	n := NewNetwork(3, netmodel.Myrinet10G())
	send(t, n, 0, 1, 7, 50_000)
	got := make(chan *Msg, 1)
	go func() {
		m, err := n.Endpoint(1).Recv(0)
		if err == nil {
			got <- m
		}
	}()
	go func() {
		// Rank 2 blocks at a clock past the message's arrival; it cannot
		// send before that.
		_, _ = n.Endpoint(2).Recv(60_000)
	}()
	select {
	case m := <-got:
		if m.Tag != 7 {
			t.Fatalf("got tag %d", m.Tag)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked receiver's frontier did not release the delivery")
	}
	n.KillService(2) // reap the helper goroutine
}

func TestPiggybackInflatesWire(t *testing.T) {
	model := netmodel.Myrinet10G()
	n := NewNetwork(2, model)
	err := n.Send(&Msg{Src: 0, Dst: 1, Kind: App, WireLen: 100, PiggyLen: 16, SendVT: 0})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := n.Endpoint(1).Recv(0)
	if m.Wire() != 116 {
		t.Fatalf("wire %d, want 116", m.Wire())
	}
	if m.ArriveVT != vtime.Time(model.Latency(116)) {
		t.Fatalf("latency not computed on inflated wire size")
	}
}

func TestKillWipesMailboxAndUnblocks(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	send(t, n, 0, 1, 1, 0)

	done := make(chan error, 1)
	go func() {
		ep := n.Endpoint(1)
		if _, err := ep.Recv(0); err != nil { // consumes the queued message
			done <- err
			return
		}
		_, err := ep.Recv(0) // blocks until kill
		done <- err
	}()
	// Wait for the goroutine to consume then block.
	for n.Endpoint(1).Pending() > 0 {
	}
	if inc := n.Kill(1); inc != 1 {
		t.Fatalf("incarnation %d, want 1", inc)
	}
	if err := <-done; err != ErrKilled {
		t.Fatalf("blocked receiver got %v, want ErrKilled", err)
	}
	// Arrivals while dead are dropped.
	send(t, n, 0, 1, 2, 0)
	if d := n.Endpoint(1).DroppedWhileDead(); d != 1 {
		t.Fatalf("dropped %d, want 1", d)
	}
	// Restart revives with an empty mailbox.
	n.Restart(1)
	if p := n.Endpoint(1).Pending(); p != 0 {
		t.Fatalf("pending after restart: %d", p)
	}
	send(t, n, 0, 1, 3, 0)
	m, err := n.Endpoint(1).Recv(0)
	if err != nil || m.Tag != 3 {
		t.Fatalf("revived endpoint broken: %v %v", m, err)
	}
}

func TestKillLeavesPeerMailboxesIntact(t *testing.T) {
	// A message already enqueued at a live process survives its sender's
	// death: pre-checkpoint sends are not rolled back (see Kill docs).
	n := NewNetwork(2, netmodel.Ideal())
	send(t, n, 0, 1, 7, 0)
	n.Kill(0)
	m, err := n.Endpoint(1).Recv(0)
	if err != nil || m.Tag != 7 {
		t.Fatalf("peer mailbox was purged: %v %v", m, err)
	}
}

func TestIncarnationStamping(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	send(t, n, 0, 1, 1, 0)
	n.Kill(0)
	n.Restart(0)
	send(t, n, 0, 1, 2, 0)
	m1, _ := n.Endpoint(1).Recv(0)
	m2, _ := n.Endpoint(1).Recv(0)
	if m1.Inc != 0 || m2.Inc != 1 {
		t.Fatalf("incarnations %d,%d want 0,1", m1.Inc, m2.Inc)
	}
	if n.IncOf(0) != 1 || n.IncOf(1) != 0 {
		t.Fatal("IncOf wrong")
	}
	incs := n.Incs()
	if len(incs) != 2 || incs[0] != 1 {
		t.Fatalf("Incs snapshot wrong: %v", incs)
	}
}

func TestAccountingMatrix(t *testing.T) {
	n := NewNetwork(3, netmodel.Ideal())
	for i := 0; i < 4; i++ {
		err := n.Send(&Msg{Src: 0, Dst: 2, Kind: App, WireLen: 100, PiggyLen: 8})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Control traffic is not accounted.
	_ = n.Send(&Msg{Src: 0, Dst: 2, Kind: Ctl, WireLen: 999})
	st := n.PairStatAt(0, 2)
	if st.Msgs != 4 || st.Bytes != 400 || st.PiggyBytes != 32 {
		t.Fatalf("accounting wrong: %+v", st)
	}
	if n.PairStatAt(2, 0).Msgs != 0 {
		t.Fatal("reverse direction should be empty")
	}
}

func TestServiceEndpoints(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	rec := n.Endpoint(2) // recovery-process endpoint, created on demand
	err := n.Send(&Msg{Src: 0, Dst: 2, Kind: Ctl, CtlBody: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rec.Recv(0)
	if err != nil || m.CtlBody != "hello" {
		t.Fatalf("service endpoint broken: %v %v", m, err)
	}
	n.KillService(2)
	if _, err := rec.Recv(0); err != ErrKilled {
		t.Fatal("KillService did not kill")
	}
}

func TestSendToUnknownEndpoint(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	if err := n.Send(&Msg{Src: 0, Dst: 99}); err == nil {
		t.Fatal("send to unknown endpoint accepted")
	}
}

func TestTryRecv(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	ep := n.Endpoint(1)
	if _, ok, err := ep.TryRecv(0); ok || err != nil {
		t.Fatal("TryRecv on empty mailbox should report not-ok")
	}
	send(t, n, 0, 1, 5, 0)
	m, ok, err := ep.TryRecv(0)
	if !ok || err != nil || m.Tag != 5 {
		t.Fatalf("TryRecv failed: %v %v %v", m, ok, err)
	}
	n.Kill(1)
	if _, _, err := ep.TryRecv(0); err != ErrKilled {
		t.Fatal("TryRecv on dead endpoint should fail")
	}
}

func TestConcurrentSendersKeepPerChannelFIFO(t *testing.T) {
	const (
		senders = 8
		msgs    = 500
	)
	n := NewNetwork(senders+1, netmodel.Ideal())
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				_ = n.Send(&Msg{Src: s, Dst: senders, Kind: App, Tag: i, SendVT: vtime.Time(i)})
			}
			// Retire the sender so the gate stops waiting on it.
			n.Quiesce(s)
		}(s)
	}
	seen := make([]int, senders)
	ep := n.Endpoint(senders)
	for k := 0; k < senders*msgs; k++ {
		m, err := ep.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		if m.Tag != seen[m.Src] {
			t.Fatalf("channel %d out of order: got %d want %d", m.Src, m.Tag, seen[m.Src])
		}
		seen[m.Src]++
	}
	wg.Wait()
}

// TestDeliverySequenceIsSchedulingIndependent drains the same virtual-time
// traffic pattern twice with concurrent, real-time-racing senders and
// asserts the delivered sequences are identical — the property the whole
// delivery plane exists for.
func TestDeliverySequenceIsSchedulingIndependent(t *testing.T) {
	const (
		senders = 6
		msgs    = 200
	)
	run := func() []string {
		n := NewNetwork(senders+1, netmodel.Myrinet10G())
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					// Deterministic virtual schedule, racing in real time.
					at := vtime.Time(s*7_001 + i*13_007)
					_ = n.Send(&Msg{Src: s, Dst: senders, Kind: App, Tag: i,
						WireLen: 1 + (s+i)%512, SendVT: at})
				}
				n.Quiesce(s)
			}(s)
		}
		ep := n.Endpoint(senders)
		var seq []string
		for k := 0; k < senders*msgs; k++ {
			m, err := ep.Recv(0)
			if err != nil {
				t.Fatal(err)
			}
			seq = append(seq, fmt.Sprintf("%d/%d@%d", m.Src, m.Tag, m.ArriveVT))
		}
		wg.Wait()
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery sequence diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestAwaitTurnOrdersActions checks that AwaitTurn admits contenders in
// virtual-time order with the id tiebreak, regardless of who asks first.
func TestAwaitTurnOrdersActions(t *testing.T) {
	n := NewNetwork(3, netmodel.Ideal())
	var mu sync.Mutex
	var order []int

	var wg sync.WaitGroup
	turn := func(id int, vt vtime.Time) {
		defer wg.Done()
		if err := n.AwaitTurn(id, vt); err != nil {
			t.Errorf("AwaitTurn(%d): %v", id, err)
			return
		}
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
		// The action is done; move the frontier past every contender.
		n.Publish(id, 1_000_000)
	}
	wg.Add(3)
	go turn(2, 100) // later VT, asks first
	time.Sleep(10 * time.Millisecond)
	go turn(1, 50)
	go turn(0, 50) // tied with 1; lower id goes first
	wg.Wait()

	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
}

// TestRestartRewindsFrontier: a rolled-back rank whose pre-kill frontier
// ran ahead of the detection time resumes BELOW its stale frontier; the
// revived bound must be the resume time, or the gate would admit stamps the
// restarted rank's re-executed sends can still undercut.
func TestRestartRewindsFrontier(t *testing.T) {
	n := NewNetwork(3, netmodel.Myrinet10G())
	n.Publish(2, 70_000) // rank 2 ran ahead of the failure's detection time
	n.Kill(2)
	n.RestartAt(2, 60_000) // resumes from a checkpoint read at DetectVT=60µs
	n.Quiesce(0)
	send(t, n, 0, 1, 9, 61_700) // arrives ~65µs — rank 2 can still undercut it

	got := make(chan *Msg, 1)
	go func() {
		m, err := n.Endpoint(1).Recv(0)
		if err == nil {
			got <- m
		}
	}()
	select {
	case <-got:
		t.Fatal("delivered while the restarted rank could still produce an earlier stamp")
	case <-time.After(20 * time.Millisecond):
	}
	n.Publish(2, 65_000) // the restarted rank caught up past the stamp
	select {
	case m := <-got:
		if m.Tag != 9 {
			t.Fatalf("got tag %d", m.Tag)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery not released after the restarted rank advanced")
	}
}

// TestAttachAtRewindsFrontier: re-attaching the recovery endpoint at a new
// round's detection time must rewind a stale frontier left by an earlier
// round that ended later in virtual time.
func TestAttachAtRewindsFrontier(t *testing.T) {
	n := NewNetwork(2, netmodel.Myrinet10G())
	rec := 2
	n.Endpoint(rec)
	n.Publish(rec, 80_000) // previous round ended at 80µs
	n.Quiesce(rec)
	n.Quiesce(0)
	n.AttachAt(rec, 50_000) // new round detected at 50µs
	send(t, n, 0, 1, 5, 51_700)

	got := make(chan *Msg, 1)
	go func() {
		m, err := n.Endpoint(1).Recv(0)
		if err == nil {
			got <- m
		}
	}()
	select {
	case <-got:
		t.Fatal("delivered while the re-attached recovery could still produce an earlier stamp")
	case <-time.After(20 * time.Millisecond):
	}
	n.Publish(rec, 60_000)
	select {
	case m := <-got:
		if m.Tag != 5 {
			t.Fatalf("got tag %d", m.Tag)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery not released after the recovery advanced")
	}
}

func TestKindString(t *testing.T) {
	if App.String() != "app" || Ctl.String() != "ctl" || Marker.String() != "marker" {
		t.Fatal("kind strings wrong")
	}
}
