package transport

import (
	"sync"
	"testing"

	"hydee/internal/netmodel"
	"hydee/internal/vtime"
)

func send(t *testing.T, n *Network, src, dst int, tag int, at vtime.Time) {
	t.Helper()
	err := n.Send(&Msg{Src: src, Dst: dst, Kind: App, Tag: tag, Data: []byte{byte(tag)}, SendVT: at})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerChannel(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	for i := 0; i < 100; i++ {
		send(t, n, 0, 1, i, 0)
	}
	ep := n.Endpoint(1)
	for i := 0; i < 100; i++ {
		m, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Tag != i {
			t.Fatalf("out of order: got %d want %d", m.Tag, i)
		}
	}
}

func TestArrivalStamping(t *testing.T) {
	model := netmodel.Myrinet10G()
	n := NewNetwork(2, model)
	at := vtime.Time(1000)
	err := n.Send(&Msg{Src: 0, Dst: 1, Kind: App, Data: make([]byte, 64), SendVT: at})
	if err != nil {
		t.Fatal(err)
	}
	m, err := n.Endpoint(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	want := at.Add(model.Latency(64))
	if m.ArriveVT != want {
		t.Fatalf("arrival %v, want %v", m.ArriveVT, want)
	}
}

func TestPiggybackInflatesWire(t *testing.T) {
	model := netmodel.Myrinet10G()
	n := NewNetwork(2, model)
	err := n.Send(&Msg{Src: 0, Dst: 1, Kind: App, WireLen: 100, PiggyLen: 16, SendVT: 0})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := n.Endpoint(1).Recv()
	if m.Wire() != 116 {
		t.Fatalf("wire %d, want 116", m.Wire())
	}
	if m.ArriveVT != vtime.Time(model.Latency(116)) {
		t.Fatalf("latency not computed on inflated wire size")
	}
}

func TestKillWipesMailboxAndUnblocks(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	send(t, n, 0, 1, 1, 0)

	done := make(chan error, 1)
	go func() {
		ep := n.Endpoint(1)
		if _, err := ep.Recv(); err != nil { // consumes the queued message
			done <- err
			return
		}
		_, err := ep.Recv() // blocks until kill
		done <- err
	}()
	// Wait for the goroutine to consume then block.
	for n.Endpoint(1).Pending() > 0 {
	}
	if inc := n.Kill(1); inc != 1 {
		t.Fatalf("incarnation %d, want 1", inc)
	}
	if err := <-done; err != ErrKilled {
		t.Fatalf("blocked receiver got %v, want ErrKilled", err)
	}
	// Arrivals while dead are dropped.
	send(t, n, 0, 1, 2, 0)
	if d := n.Endpoint(1).DroppedWhileDead(); d != 1 {
		t.Fatalf("dropped %d, want 1", d)
	}
	// Restart revives with an empty mailbox.
	n.Restart(1)
	if p := n.Endpoint(1).Pending(); p != 0 {
		t.Fatalf("pending after restart: %d", p)
	}
	send(t, n, 0, 1, 3, 0)
	m, err := n.Endpoint(1).Recv()
	if err != nil || m.Tag != 3 {
		t.Fatalf("revived endpoint broken: %v %v", m, err)
	}
}

func TestKillLeavesPeerMailboxesIntact(t *testing.T) {
	// A message already enqueued at a live process survives its sender's
	// death: pre-checkpoint sends are not rolled back (see Kill docs).
	n := NewNetwork(2, netmodel.Ideal())
	send(t, n, 0, 1, 7, 0)
	n.Kill(0)
	m, err := n.Endpoint(1).Recv()
	if err != nil || m.Tag != 7 {
		t.Fatalf("peer mailbox was purged: %v %v", m, err)
	}
}

func TestIncarnationStamping(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	send(t, n, 0, 1, 1, 0)
	n.Kill(0)
	n.Restart(0)
	send(t, n, 0, 1, 2, 0)
	m1, _ := n.Endpoint(1).Recv()
	m2, _ := n.Endpoint(1).Recv()
	if m1.Inc != 0 || m2.Inc != 1 {
		t.Fatalf("incarnations %d,%d want 0,1", m1.Inc, m2.Inc)
	}
	if n.IncOf(0) != 1 || n.IncOf(1) != 0 {
		t.Fatal("IncOf wrong")
	}
	incs := n.Incs()
	if len(incs) != 2 || incs[0] != 1 {
		t.Fatalf("Incs snapshot wrong: %v", incs)
	}
}

func TestAccountingMatrix(t *testing.T) {
	n := NewNetwork(3, netmodel.Ideal())
	for i := 0; i < 4; i++ {
		err := n.Send(&Msg{Src: 0, Dst: 2, Kind: App, WireLen: 100, PiggyLen: 8})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Control traffic is not accounted.
	_ = n.Send(&Msg{Src: 0, Dst: 2, Kind: Ctl, WireLen: 999})
	st := n.PairStatAt(0, 2)
	if st.Msgs != 4 || st.Bytes != 400 || st.PiggyBytes != 32 {
		t.Fatalf("accounting wrong: %+v", st)
	}
	if n.PairStatAt(2, 0).Msgs != 0 {
		t.Fatal("reverse direction should be empty")
	}
}

func TestServiceEndpoints(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	rec := n.Endpoint(2) // recovery-process endpoint, created on demand
	err := n.Send(&Msg{Src: 0, Dst: 2, Kind: Ctl, CtlBody: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rec.Recv()
	if err != nil || m.CtlBody != "hello" {
		t.Fatalf("service endpoint broken: %v %v", m, err)
	}
	n.KillService(2)
	if _, err := rec.Recv(); err != ErrKilled {
		t.Fatal("KillService did not kill")
	}
}

func TestSendToUnknownEndpoint(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	if err := n.Send(&Msg{Src: 0, Dst: 99}); err == nil {
		t.Fatal("send to unknown endpoint accepted")
	}
}

func TestTryRecv(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	ep := n.Endpoint(1)
	if _, ok, err := ep.TryRecv(); ok || err != nil {
		t.Fatal("TryRecv on empty mailbox should report not-ok")
	}
	send(t, n, 0, 1, 5, 0)
	m, ok, err := ep.TryRecv()
	if !ok || err != nil || m.Tag != 5 {
		t.Fatalf("TryRecv failed: %v %v %v", m, ok, err)
	}
	n.Kill(1)
	if _, _, err := ep.TryRecv(); err != ErrKilled {
		t.Fatal("TryRecv on dead endpoint should fail")
	}
}

func TestConcurrentSendersKeepPerChannelFIFO(t *testing.T) {
	const (
		senders = 8
		msgs    = 500
	)
	n := NewNetwork(senders+1, netmodel.Ideal())
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				_ = n.Send(&Msg{Src: s, Dst: senders, Kind: App, Tag: i})
			}
		}(s)
	}
	seen := make([]int, senders)
	ep := n.Endpoint(senders)
	for k := 0; k < senders*msgs; k++ {
		m, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Tag != seen[m.Src] {
			t.Fatalf("channel %d out of order: got %d want %d", m.Src, m.Tag, seen[m.Src])
		}
		seen[m.Src]++
	}
	wg.Wait()
}

func TestKindString(t *testing.T) {
	if App.String() != "app" || Ctl.String() != "ctl" || Marker.String() != "marker" {
		t.Fatal("kind strings wrong")
	}
}
