package transport

// Unit tests for the victim-aware death fence: a doomed endpoint drains
// deliveries and checkpoint-write turns at or below its fence, dies at the
// first wait provably past it, and — the naive-drain deadlock fix — is
// reaped while blocked on a victim that can no longer send.

import (
	"errors"
	"testing"
	"time"

	"hydee/internal/netmodel"
	"hydee/internal/vtime"
)

func TestDoomDeliversAtFenceThenKills(t *testing.T) {
	n := NewNetwork(3, netmodel.Ideal())
	send(t, n, 0, 1, 1, 49)  // arrives 50: before the fence
	send(t, n, 0, 1, 2, 99)  // arrives 100: exactly at the fence
	send(t, n, 2, 1, 3, 149) // arrives 150: past the fence
	n.Doom(1, vtime.Time(100))
	n.Quiesce(0)
	n.Quiesce(2)
	ep := n.Endpoint(1)
	for _, want := range []int{1, 2} {
		m, err := ep.Recv(0)
		if err != nil {
			t.Fatalf("pre-fence delivery %d: %v", want, err)
		}
		if m.Tag != want {
			t.Fatalf("got tag %d, want %d", m.Tag, want)
		}
	}
	if _, err := ep.Recv(0); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-fence Recv returned %v, want ErrKilled", err)
	}
}

func TestDoomCancelsPostFenceTurnKeepsPreFenceTurn(t *testing.T) {
	n := NewNetwork(3, netmodel.Ideal())
	n.Quiesce(1)
	n.Quiesce(2)
	n.Doom(0, vtime.Time(100))
	// A turn at the fence is still granted: an in-flight checkpoint write
	// issued at the detection time completes.
	if err := n.AwaitTurn(0, 100); err != nil {
		t.Fatalf("turn at the fence: %v", err)
	}
	// A turn past the fence is the write of a dead process: cancelled.
	if err := n.AwaitTurn(0, 101); !errors.Is(err, ErrKilled) {
		t.Fatalf("turn past the fence returned %v, want ErrKilled", err)
	}
}

func TestDoomReapsReceiverBlockedOnDeadVictim(t *testing.T) {
	// Rank 1 blocks in Recv waiting for rank 0, which has stopped (failed)
	// with a stale frontier below the fence. A naive drain would wait for
	// rank 0 forever; the victim-aware gate must reap rank 1 with
	// ErrKilled once the plane proves nothing at or below the fence can
	// still arrive.
	n := NewNetwork(3, netmodel.Ideal())
	done := make(chan error, 1)
	go func() {
		_, err := n.Endpoint(1).Recv(0)
		done <- err
	}()
	n.Publish(0, 90) // the victim's last word before it stopped
	n.Doom(1, vtime.Time(100))
	// Rank 0 (bound 90) and rank 2 (bound 0) can still produce pre-fence
	// stamps, so rank 1 must keep waiting.
	select {
	case err := <-done:
		t.Fatalf("reaped while pre-fence arrivals were still possible: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	// The supervisor quiesces the dead victim and rank 2 advances past the
	// fence: now nothing <= 100 can arrive, and the reap must fire.
	n.Quiesce(0)
	n.Publish(2, 200)
	select {
	case err := <-done:
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("reap returned %v, want ErrKilled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("blocked receiver not reaped; plane:\n%s", n.DebugState())
	}
}

func TestKillAndRestartClearDoom(t *testing.T) {
	n := NewNetwork(2, netmodel.Ideal())
	n.Doom(0, vtime.Time(10))
	n.Kill(0)
	n.RestartAt(0, 50)
	n.Quiesce(1)
	// The restarted incarnation must not inherit the old fence.
	if err := n.AwaitTurn(0, 1000); err != nil {
		t.Fatalf("restarted endpoint still fenced: %v", err)
	}
}
