package netpipe

import (
	"testing"

	"hydee/internal/core"
	"hydee/internal/netmodel"
)

func TestStandardSizesSane(t *testing.T) {
	sizes := StandardSizes()
	if len(sizes) < 30 {
		t.Fatalf("only %d sizes", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not strictly ascending at %d: %d, %d", i, sizes[i-1], sizes[i])
		}
	}
	if sizes[0] != 1 || sizes[len(sizes)-1] != 8<<20 {
		t.Fatalf("range [%d, %d]", sizes[0], sizes[len(sizes)-1])
	}
}

func TestNativeSweepMatchesModel(t *testing.T) {
	model := netmodel.Myrinet10G()
	pts, err := Run(Config{Model: model, Sizes: []int{1, 1024, 1 << 20}, Reps: 5})
	if err != nil {
		t.Fatal(err)
	}
	// One-way latency of a 1-byte ping must be close to the model's
	// small-message cost (send overhead + latency + recv overhead).
	want := (model.SendOverhead(1) + model.Latency(1) + model.RecvOverhead(1)).Micros()
	if got := pts[0].LatencyUs; got < want*0.95 || got > want*1.05 {
		t.Fatalf("1-byte latency %.2fµs, model %.2fµs", got, want)
	}
	// Large-message bandwidth approaches the wire rate.
	bw := pts[2].BandwidthMBps
	if bw < 0.7*model.BytesPerSec/1e6 {
		t.Fatalf("1MiB bandwidth %.0f MB/s, wire %.0f MB/s", bw, model.BytesPerSec/1e6)
	}
}

func TestHydEENeverFasterThanNative(t *testing.T) {
	model := netmodel.Myrinet10G()
	sizes := []int{1, 17, 32, 33, 1024, 1025, 64 << 10, 1 << 20}
	native, err := Run(Config{Model: model, Sizes: sizes, Reps: 5})
	if err != nil {
		t.Fatal(err)
	}
	hyd, err := Run(Config{Model: model, Sizes: sizes, Reps: 5, Protocol: core.New(), SameCluster: false})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sizes {
		if hyd[i].LatencyUs+1e-9 < native[i].LatencyUs {
			t.Errorf("size %d: hydee %.3fµs faster than native %.3fµs", sizes[i], hyd[i].LatencyUs, native[i].LatencyUs)
		}
	}
}

func TestLoggingCostMatchesNoLogging(t *testing.T) {
	// §V-C: "the performance with and without logging are equivalent" —
	// the sender-based copy overlaps the transmission.
	model := netmodel.Myrinet10G()
	sizes := []int{64, 4096, 1 << 20}
	noLog, err := Run(Config{Model: model, Sizes: sizes, Reps: 5, Protocol: core.New(), SameCluster: true})
	if err != nil {
		t.Fatal(err)
	}
	withLog, err := Run(Config{Model: model, Sizes: sizes, Reps: 5, Protocol: core.New(), SameCluster: false})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sizes {
		rel := (withLog[i].LatencyUs - noLog[i].LatencyUs) / noLog[i].LatencyUs
		if rel > 0.02 {
			t.Errorf("size %d: logging adds %.1f%% latency (must be ~free)", sizes[i], rel*100)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing model accepted")
	}
}
