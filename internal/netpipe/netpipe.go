// Package netpipe reimplements the NetPIPE measurement procedure (Snell et
// al.) over the simulated network: a two-process ping-pong sweep over
// message sizes, reporting one-way latency and bandwidth. Figure 5 of the
// paper compares native MPICH2 against HydEE between two processes of the
// same cluster (piggybacking, no logging) and of different clusters
// (piggybacking and sender-based logging).
package netpipe

import (
	"context"
	"fmt"
	"time"

	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
)

// Config describes one sweep.
type Config struct {
	// Model is the network cost model (required).
	Model netmodel.Model
	// Protocol is the rollback protocol; nil means native.
	Protocol rollback.Protocol
	// SameCluster puts both endpoints in one cluster (no logging);
	// otherwise each is its own cluster (logging). Ignored for native.
	SameCluster bool
	// Sizes lists payload sizes in bytes; nil uses StandardSizes.
	Sizes []int
	// Reps is the number of round trips per size (default 10).
	Reps int
}

// Point is one measurement.
type Point struct {
	Bytes int
	// LatencyUs is the one-way latency in microseconds.
	LatencyUs float64
	// BandwidthMBps is Bytes / one-way latency, in MB/s.
	BandwidthMBps float64
}

// StandardSizes returns a NetPIPE-like size sweep: powers of two from 1 B
// to 8 MiB with intermediate 3/4 points, plus the sizes straddling the
// piggyback-relevant plateau boundaries.
func StandardSizes() []int {
	var sizes []int
	add := func(n int) {
		if n < 1 || n > 8<<20 {
			return
		}
		for _, s := range sizes {
			if s == n {
				return
			}
		}
		sizes = append(sizes, n)
	}
	for n := 1; n <= 8<<20; n <<= 1 {
		add(n)
		add(n * 3 / 2)
	}
	// Boundary straddles where a 16-byte piggyback changes the plateau.
	for _, b := range []int{32, 128, 1024, 32 * 1024} {
		add(b - netmodel.PiggybackBytes)
		add(b - netmodel.PiggybackBytes + 1)
		add(b)
		add(b + 1)
	}
	// Keep ascending order.
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	return sizes
}

func pingpong(reps, size int) mpi.Program {
	return func(c *mpi.Comm) error {
		const tag = 51
		payload := make([]byte, 8)
		if c.Rank() == 0 {
			for i := 0; i < reps; i++ {
				if err := c.SendW(1, tag, payload, size); err != nil {
					return err
				}
				if _, _, err := c.Recv(1, tag); err != nil {
					return err
				}
			}
		} else {
			for i := 0; i < reps; i++ {
				if _, _, err := c.Recv(0, tag); err != nil {
					return err
				}
				if err := c.SendW(0, tag, payload, size); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// Run executes the sweep.
func Run(cfg Config) ([]Point, error) { return RunCtx(context.Background(), cfg) }

// RunCtx executes the sweep, honoring ctx between and during size points.
func RunCtx(ctx context.Context, cfg Config) ([]Point, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("netpipe: model required")
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 10
	}
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = StandardSizes()
	}
	topo := rollback.NewTopology([]int{0, 1})
	if cfg.SameCluster {
		topo = rollback.SingleCluster(2)
	}
	prot := cfg.Protocol
	if prot == nil {
		prot = rollback.Native()
	}
	out := make([]Point, 0, len(sizes))
	for _, size := range sizes {
		res, err := mpi.RunContext(ctx, mpi.Config{
			NP:       2,
			Model:    cfg.Model,
			Topo:     topo,
			Protocol: prot,
			Watchdog: 30 * time.Second,
		}, pingpong(cfg.Reps, size))
		if err != nil {
			return nil, fmt.Errorf("netpipe: size %d: %w", size, err)
		}
		oneWay := res.Makespan.Micros() / float64(2*cfg.Reps)
		bw := 0.0
		if oneWay > 0 {
			bw = float64(size) / oneWay // bytes per µs == MB/s
		}
		out = append(out, Point{Bytes: size, LatencyUs: oneWay, BandwidthMBps: bw})
	}
	return out, nil
}
