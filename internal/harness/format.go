package harness

import (
	"fmt"
	"strings"

	"hydee/internal/core"
	"hydee/internal/rollback"
)

func hydeeProtocol() rollback.Protocol { return core.New() }

// FormatTable1 renders Table I like the paper.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %24s %26s\n", "App", "Nb Clusters", "Avg %% Ranks to Roll Back", "Log/Total Amount of Data")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %10d %23.2f%% %12.0f/%.0f GB (%.2f%%)\n",
			strings.ToUpper(r.App), r.K, r.RollbackPct, r.LoggedGB, r.TotalGB, r.LoggedPct)
	}
	return b.String()
}

// FormatFigure5 renders the two Figure 5 series as columns.
func FormatFigure5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %14s %14s %14s %14s\n",
		"Bytes", "NativeLat(µs)", "LatRed-noLog%", "LatRed-log%", "BWRed-noLog%", "BWRed-log%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %12.2f %14.2f %14.2f %14.2f %14.2f\n",
			r.Bytes, r.NativeLatUs, r.LatRedNoLogPct, r.LatRedLogPct, r.BWRedNoLogPct, r.BWRedLogPct)
	}
	return b.String()
}

// FormatFigure6 renders the normalized execution times of Figure 6.
func FormatFigure6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %12s %12s %12s %12s\n",
		"App", "Native", "MsgLog", "HydEE", "MsgLog ovh", "HydEE ovh")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %10s %12.4f %12.4f %11.2f%% %11.2f%%\n",
			strings.ToUpper(r.App), "1.0000", r.MLogNorm, r.HydEENorm, r.MLogPct, r.HydEEPct)
	}
	return b.String()
}

// FormatE4 renders the containment comparison.
func FormatE4(rows []E4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-7s %14s %14s %14s %12s\n",
		"App", "Proto", "RolledBack", "RecoveryVT", "Makespan", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-7s %13.2f%% %14s %14s %11.2f%%\n",
			strings.ToUpper(r.App), r.Proto, r.RolledBackPct, r.RecoveryVT, r.MakespanVT, r.OverheadPct)
	}
	return b.String()
}

// FormatE5 renders the checkpoint-burst comparison.
func FormatE5(rows []E5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %14s\n", "Config", "MaxQueue", "Makespan", "CkptBytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %14s %14s %14d\n", r.Config, r.MaxQueue, r.Makespan, r.CkptBytes)
	}
	return b.String()
}

// FormatE6 renders the shard-loss redundancy comparison. Aborted rows
// print "lost" with dashes for the observables a dead run does not have.
func FormatE6(rows []E6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %7s %5s %9s %14s %14s %10s %14s %9s\n",
		"Config", "Shards", "Lost", "Outcome", "CleanVT", "FaultVT", "Overhead", "PhysBytes", "DegLoads")
	for _, r := range rows {
		if !r.Survived {
			fmt.Fprintf(&b, "%-12s %7d %5d %9s %14s %14s %10s %14d %9s\n",
				r.Config, r.Shards, r.Lost, "lost", r.CleanVT, "-", "-", r.PhysBytes, "-")
			continue
		}
		fmt.Fprintf(&b, "%-12s %7d %5d %9s %14s %14s %9.2f%% %14d %9d\n",
			r.Config, r.Shards, r.Lost, "recovered", r.CleanVT, r.FaultVT, r.OverheadPct, r.PhysBytes, r.DegradedLoads)
	}
	return b.String()
}
