package harness

import (
	"testing"

	"hydee/internal/apps"
	"hydee/internal/graph"
)

// TestTable1Quick runs the clustering pipeline at a reduced scale to keep
// the unit suite fast; the full 256-rank reproduction lives in the root
// experiment tests.
func TestTable1Quick(t *testing.T) {
	rows, err := Table1(64, 2, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-4s k=%-3d rollback=%6.2f%% logged=%6.2f%% (%.0f/%.0f GB)",
			r.App, r.K, r.RollbackPct, r.LoggedPct, r.LoggedGB, r.TotalGB)
		if r.K < 2 {
			t.Errorf("%s: clustering degenerated to %d cluster(s)", r.App, r.K)
		}
		if r.LoggedPct <= 0 || r.LoggedPct > 100 {
			t.Errorf("%s: logged pct out of range: %f", r.App, r.LoggedPct)
		}
	}
}

func TestFigure6Quick(t *testing.T) {
	clusterings, _, err := Clusterings(16, 2, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Figure6(16, 3, clusterings)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-4s mlog=%.4f hydee=%.4f (logged %.1f%%)", r.App, r.MLogNorm, r.HydEENorm, r.HydEELoggedPct)
		if r.HydEENorm < 0.999 {
			t.Errorf("%s: hydee faster than native (%.4f) — model inconsistency", r.App, r.HydEENorm)
		}
		if r.MLogNorm+1e-9 < r.HydEENorm {
			t.Errorf("%s: full logging (%.4f) beat hydee (%.4f)", r.App, r.MLogNorm, r.HydEENorm)
		}
	}
}

func TestContainmentQuick(t *testing.T) {
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterApp(k, apps.Params{NP: 16, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Containment(k, 16, 8, 3, res.Assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	var coordPct, hydeePct float64
	for _, r := range rows {
		t.Logf("%-6s rolled=%6.2f%% recovery=%s overhead=%.2f%%", r.Proto, r.RolledBackPct, r.RecoveryVT, r.OverheadPct)
		switch r.Proto {
		case "coord":
			coordPct = r.RolledBackPct
		case "hydee":
			hydeePct = r.RolledBackPct
		}
	}
	if coordPct != 100 {
		t.Errorf("coordinated baseline should roll back 100%%, got %.1f%%", coordPct)
	}
	if hydeePct >= coordPct {
		t.Errorf("hydee (%.1f%%) did not contain the failure better than coord (%.1f%%)", hydeePct, coordPct)
	}
}
