package harness

// Determinism and behaviour of the E6 shard-loss redundancy sweep: the
// formatted output must be byte-reproducible run-to-run (the make
// determinism target runs this twice under -race), and the redundancy
// claims must hold — the layouts without redundancy abort with the
// typed lost-checkpoint error under recovery-time shard loss, the
// erasure-coded and replicated layouts recover through it.

import (
	"context"
	"testing"

	"hydee/internal/apps"
)

// e6Rows runs the sweep in the standard test scenario (cg/16, the same
// clustering the other determinism tests use, two shards killed inside
// the recovery round).
func e6Rows(t *testing.T) []E6Row {
	t.Helper()
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := StoreFaultSweep(context.Background(), k, 16, 8, 3, cgAssign(t), 4e9)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestE6StoreFaultSweepReproducible runs the shard-loss sweep twice and
// requires byte-identical formatted output — makespans, physical
// volumes, degraded-load counts and survival outcomes included. The
// shard kills are scheduled at a virtual time learned from a probe run,
// so reproducibility here is evidence the whole chain (probe, fault
// schedule, degraded restore) is on the virtual-time event plane.
func TestE6StoreFaultSweepReproducible(t *testing.T) {
	a, b := FormatE6(e6Rows(t)), FormatE6(e6Rows(t))
	if a != b {
		t.Errorf("store-fault sweep output not byte-reproducible:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	t.Logf("\n%s", a)
}

// TestE6RedundancyOutcomes checks the headline claims: the same
// two-shard loss that kills the plain layouts is absorbed by the
// redundant ones, at their respective storage price.
func TestE6RedundancyOutcomes(t *testing.T) {
	rows := e6Rows(t)
	byName := map[string]E6Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	for _, name := range []string{"shared", "sharded:6"} {
		if r, ok := byName[name]; !ok || r.Survived {
			t.Errorf("%s: survived=%v (want present and lost)", name, r.Survived)
		}
	}
	for _, name := range []string{"ec:4+2", "replica:3"} {
		r, ok := byName[name]
		if !ok || !r.Survived {
			t.Fatalf("%s: survived=%v (want present and recovered)", name, r.Survived)
		}
		if r.DegradedLoads == 0 {
			t.Errorf("%s: recovered with 0 degraded loads; the kill did not hit the restore path", name)
		}
		if r.FaultVT <= r.CleanVT {
			t.Errorf("%s: faulted makespan %v <= clean %v", name, r.FaultVT, r.CleanVT)
		}
	}
	// Storage bills: replica:3 pays 3x the shared volume (plus fragment
	// envelopes), ec:4+2 pays 1.5x; both strictly more than plain
	// sharding, replica strictly more than ec.
	shared, ec, rep := byName["shared"], byName["ec:4+2"], byName["replica:3"]
	if !(rep.PhysBytes > ec.PhysBytes && ec.PhysBytes > shared.PhysBytes) {
		t.Errorf("storage bills out of order: shared=%d ec=%d replica=%d",
			shared.PhysBytes, ec.PhysBytes, rep.PhysBytes)
	}
}
