package harness

// Determinism and behaviour of the E5-extension sharded-store sweep:
// the sweep output must be byte-reproducible run-to-run (the make
// determinism target runs these twice under -race), and cluster-placed
// shards must actually relieve the checkpoint I/O burst.

import (
	"context"
	"reflect"
	"testing"

	"hydee/internal/apps"
	"hydee/internal/failure"
)

// TestE5ShardedSweepReproducible runs the sharded burst sweep twice and
// requires byte-identical formatted output — makespans, queue backlogs
// and volumes included.
func TestE5ShardedSweepReproducible(t *testing.T) {
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	assign := cgAssign(t)
	runOnce := func() string {
		rows, err := CheckpointBurstSharded(context.Background(), k, 16, 8, 4, assign, 4e9, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		return FormatE5(rows)
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("sharded sweep output not byte-reproducible:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	t.Logf("\n%s", a)
}

// TestE5ShardedRelievesBurst checks the headline claim of the extension:
// per-cluster shard placement cuts the worst write backlog versus one
// shared store, without the staggered schedule's skew.
func TestE5ShardedRelievesBurst(t *testing.T) {
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	assign := cgAssign(t)
	rows, err := CheckpointBurstSharded(context.Background(), k, 16, 8, 4, assign, 4e9, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E5Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	shared, sharded := byName["hydee-shared"], byName["hydee-sharded:4"]
	if shared.MaxQueue == 0 {
		t.Fatal("shared store saw no burst; the scenario does not exercise contention")
	}
	if sharded.MaxQueue >= shared.MaxQueue {
		t.Errorf("sharded MaxQueue %v >= shared %v; per-cluster placement did not relieve the burst",
			sharded.MaxQueue, shared.MaxQueue)
	}
	if sharded.CkptBytes != shared.CkptBytes {
		t.Errorf("checkpoint volume differs: sharded %d vs shared %d bytes", sharded.CkptBytes, shared.CkptBytes)
	}
}

// TestShardedStoreRunReproducible runs a failure-and-recovery scenario
// over the sharded store twice and requires the documented stable
// observables — makespan, recovery rounds, store stats, digests — to be
// byte-identical. Two deliberate choices keep the scenario inside the
// determinism guarantee (both limitations are recorded in DESIGN.md
// "Concurrency and determinism" and ROADMAP.md):
//   - the trigger fires mid-iteration, a safe distance after the first
//     checkpoint wave: a failure landing while a scope peer's
//     bandwidth-delayed checkpoint write is still queued races the kill
//     against the save in real time, making the restored sequence
//     scheduling-dependent;
//   - traffic totals of the doomed incarnations (Totals/PairBytes) are
//     not compared: a rolled-back peer may meter a send or two more or
//     fewer depending on when the kill lands on its goroutine.
func TestShardedStoreRunReproducible(t *testing.T) {
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	assign := cgAssign(t)
	mkSpec := func() Spec {
		return Spec{
			Kernel: k, Params: apps.Params{NP: 16, Iters: 8},
			Proto: ProtoHydEE, Assign: assign, CheckpointEvery: 3,
			StoreWriteBPS: 4e9, StoreReadBPS: 4e9, StoreShards: 4,
			Failures: failure.NewSchedule(failure.Event{
				Ranks: []int{8},
				When:  failure.Trigger{AfterSends: 44},
			}),
		}
	}
	a, err := Run(mkSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mkSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("makespan not reproducible: %v vs %v", a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.Rounds, b.Rounds) {
		t.Errorf("recovery stats not reproducible:\n  %+v\n  %+v", a.Rounds, b.Rounds)
	}
	if a.Store != b.Store {
		t.Errorf("store stats not reproducible: %+v vs %+v", a.Store, b.Store)
	}
	if !reflect.DeepEqual(a.Digests, b.Digests) {
		t.Errorf("digests not reproducible")
	}
	if len(a.Rounds) != 1 || a.Store.Loads == 0 {
		t.Fatalf("scenario drifted: rounds=%+v loads=%d; want one round restoring from the sharded store",
			a.Rounds, a.Store.Loads)
	}
}
