package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hydee/internal/apps"
	"hydee/internal/checkpoint"
	"hydee/internal/failure"
	"hydee/internal/graph"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/netpipe"
	"hydee/internal/rollback"
	"hydee/internal/vtime"
)

// ---------------------------------------------------------------------------
// T1 — Table I: application clustering.

// Table1Row reproduces one row of Table I.
type Table1Row struct {
	App string
	// K is the number of clusters the tool chose.
	K int
	// RollbackPct is the average percentage of processes that roll back
	// after a single uniformly-placed failure.
	RollbackPct float64
	// LoggedGB / TotalGB are whole-run volumes extrapolated to the
	// class-D iteration count.
	LoggedGB, TotalGB float64
	// LoggedPct is the logged fraction.
	LoggedPct float64
	// Assign is the clustering, reused by the other experiments.
	Assign []int
}

// Table1 traces each kernel's communication graph at np ranks and runs the
// clustering tool on it.
func Table1(np, traceIters int, opt graph.Options) ([]Table1Row, error) {
	return Table1Ctx(context.Background(), np, traceIters, opt, nil, 0)
}

// Table1Ctx is Table1 with a context, an explicit network model (nil =
// Myrinet10G) and a sweep parallelism (<= 0 = one worker per CPU). The six
// kernel traces are independent runs, so they execute through RunAll; the
// clustering itself is serial and deterministic, making the rows identical
// to the serial path at any parallelism.
func Table1Ctx(ctx context.Context, np, traceIters int, opt graph.Options, model netmodel.Model, parallelism int) ([]Table1Row, error) {
	kernels := apps.Registry()
	specs := make([]Spec, len(kernels))
	for i, k := range kernels {
		specs[i] = TraceSpec(k, apps.Params{NP: np, Iters: traceIters}, model)
	}
	sums, err := RunAll(ctx, specs, parallelism)
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	rows := make([]Table1Row, 0, len(kernels))
	for i, k := range kernels {
		g := graph.FromPairBytes(np, sums[i].PairBytes)
		res := graph.Cluster(g, opt)
		scale := float64(k.ClassIters) / float64(traceIters)
		rows = append(rows, Table1Row{
			App:         k.Name,
			K:           res.K,
			RollbackPct: res.ExpRollback * 100,
			LoggedGB:    res.CutBytes * scale / 1e9,
			TotalGB:     res.TotalBytes * scale / 1e9,
			LoggedPct:   res.CutFrac * 100,
			Assign:      res.Assign,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// F5 — Figure 5: NetPIPE latency/bandwidth degradation.

// Fig5Row is one message size of Figure 5's two charts.
type Fig5Row struct {
	Bytes int
	// Native one-way latency (µs) and bandwidth (MB/s).
	NativeLatUs, NativeBW float64
	// Latency degradation in percent, reported negative like the paper's
	// "performance reduction" axis: -100*(L_hydee-L_native)/L_hydee.
	LatRedNoLogPct, LatRedLogPct float64
	// Bandwidth reduction in percent (negative when HydEE is slower).
	BWRedNoLogPct, BWRedLogPct float64
}

// Figure5 sweeps the ping-pong benchmark in the paper's three
// configurations over the Myrinet 10G model.
func Figure5(model netmodel.Model, sizes []int, reps int) ([]Fig5Row, error) {
	return Figure5Ctx(context.Background(), model, sizes, reps)
}

// Figure5Ctx is Figure5 with a context; the three sweep configurations
// (native, same-cluster HydEE, cross-cluster HydEE) run concurrently.
func Figure5Ctx(ctx context.Context, model netmodel.Model, sizes []int, reps int) ([]Fig5Row, error) {
	if model == nil {
		model = netmodel.Myrinet10G()
	}
	configs := []netpipe.Config{
		{Model: model, Sizes: sizes, Reps: reps},
		{Model: model, Sizes: sizes, Reps: reps, Protocol: hydeeProtocol(), SameCluster: true},
		{Model: model, Sizes: sizes, Reps: reps, Protocol: hydeeProtocol(), SameCluster: false},
	}
	sweepCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sweeps := make([][]netpipe.Point, len(configs))
	errs := make([]error, len(configs))
	var wg sync.WaitGroup
	for i, cfg := range configs {
		wg.Add(1)
		go func(i int, cfg netpipe.Config) {
			defer wg.Done()
			sweeps[i], errs[i] = netpipe.RunCtx(sweepCtx, cfg)
			if errs[i] != nil {
				cancel() // don't let sibling sweeps run to completion
			}
		}(i, cfg)
	}
	wg.Wait()
	// Prefer the real failure over the sibling cancellations it caused.
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, mpi.ErrCanceled) {
			return nil, err
		}
		if fallback == nil {
			fallback = err
		}
	}
	if fallback != nil {
		return nil, fallback
	}
	native, noLog, withLog := sweeps[0], sweeps[1], sweeps[2]
	if len(noLog) != len(native) || len(withLog) != len(native) {
		return nil, fmt.Errorf("figure5: sweep lengths differ")
	}
	rows := make([]Fig5Row, len(native))
	for i := range native {
		n, a, b := native[i], noLog[i], withLog[i]
		rows[i] = Fig5Row{
			Bytes:          n.Bytes,
			NativeLatUs:    n.LatencyUs,
			NativeBW:       n.BandwidthMBps,
			LatRedNoLogPct: -100 * (a.LatencyUs - n.LatencyUs) / a.LatencyUs,
			LatRedLogPct:   -100 * (b.LatencyUs - n.LatencyUs) / b.LatencyUs,
			BWRedNoLogPct:  -100 * (n.BandwidthMBps - a.BandwidthMBps) / n.BandwidthMBps,
			BWRedLogPct:    -100 * (n.BandwidthMBps - b.BandwidthMBps) / n.BandwidthMBps,
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// F6 — Figure 6: NAS failure-free overhead.

// Fig6Row is one benchmark bar group of Figure 6.
type Fig6Row struct {
	App string
	// Normalized execution times (native = 1.0).
	MLogNorm, HydEENorm float64
	// Overheads in percent.
	MLogPct, HydEEPct float64
	// HydEELoggedPct is the fraction of bytes HydEE logged.
	HydEELoggedPct float64
	NativeTime     vtime.Time
}

// Figure6 runs each kernel under native, full message logging, and HydEE
// with the given clusterings, failure-free, and reports normalized times.
func Figure6(np, iters int, clusterings map[string][]int) ([]Fig6Row, error) {
	return Figure6Ctx(context.Background(), np, iters, clusterings, nil, ProtoMLog, 0)
}

// Figure6Ctx is Figure6 with a context, an explicit network model (nil =
// Myrinet10G), a configurable comparator protocol for the middle bar
// (ProtoMLog reproduces the paper), and a sweep parallelism (<= 0 = one
// worker per CPU). The 3*|kernels| runs are independent and execute
// through RunAll.
func Figure6Ctx(ctx context.Context, np, iters int, clusterings map[string][]int, model netmodel.Model, comparator Proto, parallelism int) ([]Fig6Row, error) {
	kernels := apps.Registry()
	specs := make([]Spec, 0, 3*len(kernels))
	for _, k := range kernels {
		assign, ok := clusterings[k.Name]
		if !ok {
			return nil, fmt.Errorf("figure6: no clustering for %s", k.Name)
		}
		params := apps.Params{NP: np, Iters: iters}
		specs = append(specs,
			Spec{Kernel: k, Params: params, Proto: ProtoNative, Model: model},
			Spec{Kernel: k, Params: params, Proto: comparator, Assign: assign, Model: model},
			Spec{Kernel: k, Params: params, Proto: ProtoHydEE, Assign: assign, Model: model},
		)
	}
	sums, err := RunAll(ctx, specs, parallelism)
	if err != nil {
		return nil, fmt.Errorf("figure6: %w", err)
	}
	rows := make([]Fig6Row, 0, len(kernels))
	for i, k := range kernels {
		nat, cmp, hyd := sums[3*i], sums[3*i+1], sums[3*i+2]
		if err := SameDigests(nat, hyd); err != nil {
			return nil, fmt.Errorf("figure6: %s: hydee diverged from native: %w", k.Name, err)
		}
		base := float64(nat.Makespan)
		rows = append(rows, Fig6Row{
			App:            k.Name,
			MLogNorm:       float64(cmp.Makespan) / base,
			HydEENorm:      float64(hyd.Makespan) / base,
			MLogPct:        (float64(cmp.Makespan)/base - 1) * 100,
			HydEEPct:       (float64(hyd.Makespan)/base - 1) * 100,
			HydEELoggedPct: hyd.LoggedFrac * 100,
			NativeTime:     nat.Makespan,
		})
	}
	return rows, nil
}

// Clusterings runs the clustering tool for every kernel and returns the
// assignments keyed by kernel name (shared by Figure6 and E4).
func Clusterings(np, traceIters int, opt graph.Options) (map[string][]int, []Table1Row, error) {
	rows, err := Table1(np, traceIters, opt)
	if err != nil {
		return nil, nil, err
	}
	m := make(map[string][]int, len(rows))
	for _, r := range rows {
		m[r.App] = r.Assign
	}
	return m, rows, nil
}

// ---------------------------------------------------------------------------
// E4 — failure containment.

// E4Row compares the protocols' failure behaviour on one kernel.
type E4Row struct {
	App   string
	Proto string
	// RolledBackPct is the share of processes forced to roll back.
	RolledBackPct float64
	// RecoveryVT is the recovery-coordination time of the round.
	RecoveryVT vtime.Duration
	// MakespanVT is the total run time with the failure.
	MakespanVT vtime.Time
	// OverheadPct is the makespan increase over the same protocol's
	// failure-free run.
	OverheadPct float64
	// LoggedFrac is the protocol's logged-byte fraction.
	LoggedFrac float64
}

// Containment injects one failure into the kernel under each
// fault-tolerant protocol and measures how far it spreads. Results are
// also validated against the failure-free digests.
func Containment(k apps.Kernel, np, iters, ckptEvery int, assign []int, failAfterCkpts int) ([]E4Row, error) {
	return ContainmentCtx(context.Background(), k, np, iters, ckptEvery, assign,
		failure.Trigger{AfterCheckpoints: failAfterCkpts}, nil, nil)
}

// ContainmentCtx is Containment with a context, an arbitrary failure
// trigger for the victim (rank np/2) — an AtVT trigger injects at a
// virtual time, including mid-checkpoint-wave — an explicit network
// model (nil = Myrinet10G) and an explicit checkpoint-store constructor
// (nil = a fresh free in-memory store per run; the constructor sees each
// run's topology so sharded stores can place clusters).
func ContainmentCtx(ctx context.Context, k apps.Kernel, np, iters, ckptEvery int, assign []int, failWhen failure.Trigger, model netmodel.Model, newStore func(*rollback.Topology) checkpoint.Store) ([]E4Row, error) {
	var rows []E4Row
	sched := func() *failure.Schedule {
		return failure.NewSchedule(failure.Event{
			Ranks: []int{np / 2},
			When:  failWhen,
		})
	}
	for _, proto := range []Proto{ProtoCoord, ProtoMLog, ProtoHydEE} {
		params := apps.Params{NP: np, Iters: iters}
		base := Spec{Kernel: k, Params: params, Proto: proto, Assign: assign, CheckpointEvery: ckptEvery, Model: model, NewStore: newStore}
		clean, err := RunCtx(ctx, base)
		if err != nil {
			return nil, fmt.Errorf("e4: %s/%s clean: %w", k.Name, proto, err)
		}
		withFail := base
		withFail.Failures = sched()
		failed, err := RunCtx(ctx, withFail)
		if err != nil {
			return nil, fmt.Errorf("e4: %s/%s failed: %w", k.Name, proto, err)
		}
		if err := SameDigests(clean, failed); err != nil {
			return nil, fmt.Errorf("e4: %s/%s: recovered run diverged: %w", k.Name, proto, err)
		}
		if len(failed.Rounds) != 1 {
			return nil, fmt.Errorf("e4: %s/%s: expected 1 recovery round, got %d", k.Name, proto, len(failed.Rounds))
		}
		rd := failed.Rounds[0]
		rows = append(rows, E4Row{
			App:           k.Name,
			Proto:         proto.String(),
			RolledBackPct: 100 * float64(rd.RolledBack) / float64(np),
			RecoveryVT:    rd.EndVT.Sub(rd.StartVT),
			MakespanVT:    failed.Makespan,
			OverheadPct:   (float64(failed.Makespan)/float64(clean.Makespan) - 1) * 100,
			LoggedFrac:    failed.LoggedFrac,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// E5 — checkpoint I/O bursts.

// E5Row compares simultaneous vs staggered checkpointing under a shared
// stable-storage bandwidth.
type E5Row struct {
	Config string
	// MaxQueue is the worst virtual-time backlog a checkpoint write saw.
	MaxQueue vtime.Duration
	// Makespan is the run time.
	Makespan vtime.Time
	// CkptBytes is the volume written.
	CkptBytes int64
}

// CheckpointBurst runs the kernel with all clusters checkpointing at once
// (coordinated baseline) and with HydEE's per-cluster staggered schedule,
// under a shared store of storeBPS bytes/second.
func CheckpointBurst(k apps.Kernel, np, iters, ckptEvery int, assign []int, storeBPS float64) ([]E5Row, error) {
	var rows []E5Row
	cases := []struct {
		name    string
		proto   Proto
		stagger bool
	}{
		{"coord-simultaneous", ProtoCoord, false},
		{"hydee-simultaneous", ProtoHydEE, false},
		{"hydee-staggered", ProtoHydEE, true},
	}
	for _, cs := range cases {
		sum, err := Run(Spec{
			Kernel: k, Params: apps.Params{NP: np, Iters: iters},
			Proto: cs.proto, Assign: assign,
			CheckpointEvery: ckptEvery, Stagger: cs.stagger,
			StoreWriteBPS: storeBPS, StoreReadBPS: storeBPS,
		})
		if err != nil {
			return nil, fmt.Errorf("e5: %s: %w", cs.name, err)
		}
		rows = append(rows, E5Row{
			Config:    cs.name,
			MaxQueue:  sum.Store.MaxQueue,
			Makespan:  sum.Makespan,
			CkptBytes: sum.Totals.CkptBytes,
		})
	}
	return rows, nil
}

// CheckpointBurstSharded extends E5 to sharded stable storage: the
// kernel runs under HydEE with everything checkpointing simultaneously
// into (a) one shared store of storeBPS bytes/second, (b) the same store
// with HydEE's staggered schedule, and (c) a sharded store of `shards`
// cluster-placed shards of storeBPS each. Sharding attacks the I/O burst
// spatially (independent storage targets) where staggering attacks it
// temporally (skewed schedules); the sharded MaxQueue backlog should
// drop toward the staggered one with no schedule skew at all. model
// selects the network (nil = Myrinet10G, like the other sweeps).
func CheckpointBurstSharded(ctx context.Context, k apps.Kernel, np, iters, ckptEvery int, assign []int, storeBPS float64, shards int, model netmodel.Model) ([]E5Row, error) {
	if shards < 2 {
		return nil, fmt.Errorf("e5-sharded: need at least 2 shards, got %d", shards)
	}
	cases := []struct {
		name    string
		stagger bool
		shards  int
	}{
		{"hydee-shared", false, 0},
		{"hydee-staggered", true, 0},
		{fmt.Sprintf("hydee-sharded:%d", shards), false, shards},
	}
	var rows []E5Row
	for _, cs := range cases {
		sum, err := RunCtx(ctx, Spec{
			Kernel: k, Params: apps.Params{NP: np, Iters: iters},
			Proto: ProtoHydEE, Assign: assign, Model: model,
			CheckpointEvery: ckptEvery, Stagger: cs.stagger,
			StoreWriteBPS: storeBPS, StoreReadBPS: storeBPS,
			StoreShards: cs.shards,
		})
		if err != nil {
			return nil, fmt.Errorf("e5-sharded: %s: %w", cs.name, err)
		}
		rows = append(rows, E5Row{
			Config:    cs.name,
			MaxQueue:  sum.Store.MaxQueue,
			Makespan:  sum.Makespan,
			CkptBytes: sum.Totals.CkptBytes,
		})
	}
	return rows, nil
}
