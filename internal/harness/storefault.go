package harness

import (
	"context"
	"errors"
	"fmt"

	"hydee/internal/apps"
	"hydee/internal/checkpoint"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/vtime"
)

// ---------------------------------------------------------------------------
// E6 — checkpoint-store redundancy under shard loss.
//
// The paper assumes checkpoints survive on stable storage; E6 drops that
// assumption and measures what each storage layout buys when storage
// itself fails at the worst possible moment — during recovery, after a
// rank failure has already committed the run to restoring from the
// store. For every layout the sweep runs the same kernel three times:
// failure-free (the cost baseline), with one rank failure on healthy
// storage (to learn the recovery round's deterministic start time), and
// with the same rank failure plus shard kills scheduled one virtual-time
// unit into the recovery round — after the last pre-failure checkpoint
// write, before the first restore read. A layout either survives (its
// restored run must match the failure-free digests bit-for-bit) or
// aborts with the typed mpi.ErrCheckpointLost.

// E6Row is one storage layout's outcome under recovery-time shard loss.
type E6Row struct {
	// Config names the layout ("shared", "sharded:6", "ec:4+2",
	// "replica:3").
	Config string
	// Shards is the layout's physical storage-target count.
	Shards int
	// Lost is how many of those targets were killed during recovery.
	Lost int
	// Survived reports whether the run still recovered (digest-checked
	// against the failure-free run).
	Survived bool
	// CleanVT is the failure-free makespan, FaultVT the makespan with
	// the rank failure plus shard loss (zero when the run aborted).
	CleanVT, FaultVT vtime.Time
	// OverheadPct is FaultVT over CleanVT, in percent (zero on abort).
	OverheadPct float64
	// PhysBytes is the physical checkpoint volume of the clean run —
	// the price of the layout's redundancy (r× for replica, (k+m)/k×
	// for ec).
	PhysBytes int64
	// DegradedLoads counts restore reads that had to route around lost
	// shards (extra fragment probes for ec, replica failovers).
	DegradedLoads int64
}

// degradedCounter is implemented by the redundant stores (ECStore,
// ReplicatedStore); plain layouts report zero degraded loads.
type degradedCounter interface{ DegradedLoads() int64 }

// shardCounter is implemented by every composite store.
type shardCounter interface{ NumShards() int }

// e6Config is one storage layout of the sweep.
type e6Config struct {
	name string
	// lose is how many shards the faulted run kills.
	lose int
	// mk builds a fresh healthy store for one run, placing clusters
	// like the run harness does (cluster id modulo shard count).
	mk func(topo *rollback.Topology, bps float64) checkpoint.Store
}

// e6Configs are the four layouts E6 compares, at equal per-target
// bandwidth: one shared store, six plain shards, a 4+2 erasure code
// (six targets, any two expendable) and three full replicas. The
// redundant layouts lose two targets; the shared store has only one to
// lose.
func e6Configs() []e6Config {
	place := func(topo *rollback.Topology, n int) func(rank int) int {
		return func(rank int) int { return topo.ClusterOf[rank] % n }
	}
	return []e6Config{
		{name: "shared", lose: 1, mk: func(_ *rollback.Topology, bps float64) checkpoint.Store {
			return checkpoint.NewMemStore(bps, bps)
		}},
		{name: "sharded:6", lose: 2, mk: func(topo *rollback.Topology, bps float64) checkpoint.Store {
			return checkpoint.NewShardedStore(6, bps, bps, place(topo, 6))
		}},
		{name: "ec:4+2", lose: 2, mk: func(topo *rollback.Topology, bps float64) checkpoint.Store {
			st, err := checkpoint.NewECStore(4, 2, bps, bps, place(topo, 6))
			if err != nil {
				panic(err) // static geometry; cannot fail
			}
			return st
		}},
		{name: "replica:3", lose: 2, mk: func(topo *rollback.Topology, bps float64) checkpoint.Store {
			st, err := checkpoint.NewReplicatedStore(3, bps, bps, place(topo, 3))
			if err != nil {
				panic(err) // static geometry; cannot fail
			}
			return st
		}},
	}
}

// StoreFaultSweep runs the E6 shard-loss comparison: the kernel under
// HydEE with a checkpoint schedule, one rank failure (rank np/2 after
// its second checkpoint), and per storage layout a kill of the victim
// cluster's storage targets scheduled inside the recovery round. Every
// surviving run is digest-checked against the layout's failure-free
// run; every aborting run must fail with mpi.ErrCheckpointLost.
func StoreFaultSweep(ctx context.Context, k apps.Kernel, np, iters, ckptEvery int, assign []int, storeBPS float64) ([]E6Row, error) {
	victim := np / 2
	fail := func() *failure.Schedule {
		return failure.NewSchedule(failure.Event{
			Ranks: []int{victim},
			When:  failure.Trigger{AfterCheckpoints: 2},
		})
	}
	var rows []E6Row
	for _, cfg := range e6Configs() {
		base := Spec{
			Kernel: k, Params: apps.Params{NP: np, Iters: iters},
			Proto: ProtoHydEE, Assign: assign, Model: netmodel.Myrinet10G(),
			CheckpointEvery: ckptEvery,
		}
		mkSpec := func(store checkpoint.Store, failures *failure.Schedule) Spec {
			s := base
			s.NewStore = func(*rollback.Topology) checkpoint.Store { return store }
			s.Failures = failures
			return s
		}
		topo := rollback.NewTopology(assign)

		// 1. Failure-free baseline: clean makespan, digests, and the
		// layout's physical storage bill.
		cleanStore := cfg.mk(topo, storeBPS)
		clean, err := RunCtx(ctx, mkSpec(cleanStore, nil))
		if err != nil {
			return nil, fmt.Errorf("e6: %s clean: %w", cfg.name, err)
		}

		// 2. Probe: the same rank failure on healthy storage pins down
		// the recovery round's start in virtual time (deterministic, so
		// it transfers to the faulted run below).
		probe, err := RunCtx(ctx, mkSpec(cfg.mk(topo, storeBPS), fail()))
		if err != nil {
			return nil, fmt.Errorf("e6: %s probe: %w", cfg.name, err)
		}
		if err := SameDigests(clean, probe); err != nil {
			return nil, fmt.Errorf("e6: %s probe diverged: %w", cfg.name, err)
		}
		if len(probe.Rounds) != 1 {
			return nil, fmt.Errorf("e6: %s probe: expected 1 recovery round, got %d", cfg.name, len(probe.Rounds))
		}
		// One VT unit into the round: after every pre-failure
		// checkpoint write was issued, before the restore reads (which
		// go out a network hop after detection).
		faultVT := probe.Rounds[0].StartVT.Add(1)

		// 3. The same run with the victim cluster's storage targets
		// killed mid-recovery.
		store := cfg.mk(topo, storeBPS)
		n := 1
		if sc, ok := store.(shardCounter); ok {
			n = sc.NumShards()
		}
		lost := cfg.lose
		if lost > n {
			lost = n
		}
		faults := make([]checkpoint.ShardFault, lost)
		for i := range faults {
			faults[i] = checkpoint.ShardFault{
				Shard: (topo.ClusterOf[victim]%n + i) % n,
				AtVT:  faultVT,
				Kind:  checkpoint.FaultKill,
			}
		}
		faulty, err := checkpoint.NewFaultyStore(store, faults...)
		if err != nil {
			return nil, fmt.Errorf("e6: %s: %w", cfg.name, err)
		}
		row := E6Row{
			Config:    cfg.name,
			Shards:    n,
			Lost:      lost,
			CleanVT:   clean.Makespan,
			PhysBytes: clean.Store.SavedBytes,
		}
		faulted, err := RunCtx(ctx, mkSpec(faulty, fail()))
		switch {
		case err == nil:
			if err := SameDigests(clean, faulted); err != nil {
				return nil, fmt.Errorf("e6: %s survived shard loss but diverged: %w", cfg.name, err)
			}
			row.Survived = true
			row.FaultVT = faulted.Makespan
			row.OverheadPct = (float64(faulted.Makespan)/float64(clean.Makespan) - 1) * 100
			if dc, ok := store.(degradedCounter); ok {
				row.DegradedLoads = dc.DegradedLoads()
			}
		case errors.Is(err, mpi.ErrCheckpointLost):
			// The layout could not cover the loss; the run aborted
			// with the typed error instead of computing on from a
			// damaged state.
		default:
			return nil, fmt.Errorf("e6: %s faulted run failed unexpectedly: %w", cfg.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
