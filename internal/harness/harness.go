// Package harness orchestrates the experiments: it wires a kernel, a
// rollback protocol, a clustering, a network model, a checkpoint schedule
// and a failure schedule into an mpi run, and aggregates the metrics the
// paper's tables and figures report.
package harness

import (
	"context"
	"fmt"
	"time"

	"hydee/internal/apps"
	"hydee/internal/checkpoint"
	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/graph"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/rollback/coord"
	"hydee/internal/trace"
	"hydee/internal/vtime"
)

// Proto selects the rollback-recovery configuration.
type Proto int

// The protocol configurations the experiments compare.
const (
	// ProtoNative is plain MPICH2: no fault tolerance.
	ProtoNative Proto = iota
	// ProtoCoord is globally coordinated checkpointing with global restart.
	ProtoCoord
	// ProtoMLog is full sender-based message logging: HydEE with singleton
	// clusters plus modeled determinant piggybacking — the "Message
	// Logging" comparator of Figure 6.
	ProtoMLog
	// ProtoHydEE is the paper's protocol with a cluster assignment.
	ProtoHydEE
)

func (p Proto) String() string {
	switch p {
	case ProtoNative:
		return "native"
	case ProtoCoord:
		return "coord"
	case ProtoMLog:
		return "mlog"
	case ProtoHydEE:
		return "hydee"
	default:
		return fmt.Sprintf("proto(%d)", int(p))
	}
}

// ProtoByName resolves a protocol-configuration name ("native", "coord",
// "mlog", "hydee") to its Proto selector.
func ProtoByName(name string) (Proto, error) {
	for _, p := range []Proto{ProtoNative, ProtoCoord, ProtoMLog, ProtoHydEE} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown protocol %q (want native, coord, mlog or hydee)", name)
}

// Spec describes one run.
type Spec struct {
	Kernel apps.Kernel
	Params apps.Params
	Proto  Proto
	// Assign is the cluster assignment (ProtoHydEE only).
	Assign []int
	// Model is the network model; nil uses Myrinet10G.
	Model netmodel.Model
	// CheckpointEvery / Stagger configure the checkpoint schedule.
	CheckpointEvery int
	Stagger         bool
	// Failures is the fail-stop schedule.
	Failures *failure.Schedule
	// StoreWriteBPS / StoreReadBPS model stable storage bandwidth
	// (0 = free storage; per shard when StoreShards > 1).
	StoreWriteBPS, StoreReadBPS float64
	// StoreShards > 1 shards the checkpoint store with per-cluster
	// placement: each cluster's checkpoints land on shard
	// cluster % StoreShards with independent bandwidth contention.
	StoreShards int
	// NewStore, when non-nil, overrides the store construction entirely
	// (it sees the resolved topology so placements can follow clusters).
	// Every run must get a fresh store, or sequential runs bleed state.
	NewStore func(topo *rollback.Topology) checkpoint.Store
	// NewStoreE is NewStore for constructors that can fail: a store
	// resolved by name from a flag or a wire spec fails the run with a
	// typed error instead of forcing the caller to panic inside NewStore.
	// NewStore wins when both are set.
	NewStoreE func(topo *rollback.Topology) (checkpoint.Store, error)
	// Recorder optionally records application-level events.
	Recorder *trace.Recorder
	// Watchdog overrides the deadlock guard.
	Watchdog time.Duration
}

// Summary is the aggregated outcome of one run.
type Summary struct {
	App      string
	Proto    string
	NP       int
	Makespan vtime.Time
	Totals   rollback.Metrics
	// LoggedFrac is logged payload bytes / total payload bytes.
	LoggedFrac float64
	// PiggyFrac is inline piggyback bytes / total payload bytes.
	PiggyFrac float64
	Rounds    []rollback.RecoveryStats
	Store     checkpoint.StoreStats
	Digests   []any
	PairBytes []int64
}

// topoAndProtocol resolves the Spec into runtime configuration.
func (s *Spec) topoAndProtocol() (*rollback.Topology, rollback.Protocol, error) {
	np := s.Params.NP
	switch s.Proto {
	case ProtoNative:
		return rollback.SingleCluster(np), rollback.Native(), nil
	case ProtoCoord:
		return rollback.SingleCluster(np), coord.New(), nil
	case ProtoMLog:
		return rollback.Singletons(np), core.NewWithOptions(core.Options{
			Name:            "mlog",
			ExtraPiggyBytes: 8, // determinant id piggybacked per message
		}), nil
	case ProtoHydEE:
		if len(s.Assign) != np {
			return nil, nil, fmt.Errorf("harness: hydee needs a cluster assignment covering %d ranks (got %d)", np, len(s.Assign))
		}
		return rollback.NewTopology(s.Assign), core.New(), nil
	default:
		return nil, nil, fmt.Errorf("harness: unknown proto %d", int(s.Proto))
	}
}

// makeStore builds the run's checkpoint store from the spec: an explicit
// constructor, a cluster-placed sharded store, or the default shared
// in-memory store.
func (s *Spec) makeStore(topo *rollback.Topology) (checkpoint.Store, error) {
	if s.NewStore != nil {
		return s.NewStore(topo), nil
	}
	if s.NewStoreE != nil {
		return s.NewStoreE(topo)
	}
	if n := s.StoreShards; n > 1 {
		return checkpoint.NewShardedStore(n, s.StoreWriteBPS, s.StoreReadBPS,
			func(rank int) int { return topo.ClusterOf[rank] % n }), nil
	}
	return checkpoint.NewMemStore(s.StoreWriteBPS, s.StoreReadBPS), nil
}

// Run executes the spec.
func Run(s Spec) (*Summary, error) { return RunCtx(context.Background(), s) }

// RunCtx executes the spec, honoring ctx cancellation.
func RunCtx(ctx context.Context, s Spec) (*Summary, error) {
	if s.Params.NP <= 0 {
		return nil, fmt.Errorf("harness: NP must be positive")
	}
	if s.Model == nil {
		s.Model = netmodel.Myrinet10G()
	}
	topo, prot, err := s.topoAndProtocol()
	if err != nil {
		return nil, err
	}
	prog, err := s.Kernel.Make(s.Params)
	if err != nil {
		return nil, err
	}
	store, err := s.makeStore(topo)
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", s.Kernel.Name, s.Proto, err)
	}
	res, err := mpi.RunContext(ctx, mpi.Config{
		NP:                s.Params.NP,
		Model:             s.Model,
		Topo:              topo,
		Protocol:          prot,
		Store:             store,
		CheckpointEvery:   s.CheckpointEvery,
		CheckpointStagger: s.Stagger,
		Failures:          s.Failures,
		Recorder:          s.Recorder,
		Watchdog:          s.Watchdog,
	}, prog)
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", s.Kernel.Name, s.Proto, err)
	}
	sum := &Summary{
		App:       s.Kernel.Name,
		Proto:     s.Proto.String(),
		NP:        s.Params.NP,
		Makespan:  res.Makespan,
		Totals:    res.Totals,
		Rounds:    res.Rounds,
		Store:     res.StoreStats,
		Digests:   res.Results,
		PairBytes: res.PairBytes,
	}
	if res.Totals.AppBytes > 0 {
		sum.LoggedFrac = float64(res.Totals.LoggedBytes) / float64(res.Totals.AppBytes)
		sum.PiggyFrac = float64(res.Totals.PiggyBytes) / float64(res.Totals.AppBytes)
	}
	return sum, nil
}

// SameDigests verifies two runs produced identical per-rank results — the
// recovery-correctness check (send-determinism guarantees the recovered
// execution equals a failure-free one).
func SameDigests(a, b *Summary) error {
	if len(a.Digests) != len(b.Digests) {
		return fmt.Errorf("harness: digest count %d vs %d", len(a.Digests), len(b.Digests))
	}
	for r := range a.Digests {
		if a.Digests[r] != b.Digests[r] {
			return fmt.Errorf("harness: rank %d digest differs: %v vs %v", r, a.Digests[r], b.Digests[r])
		}
	}
	return nil
}

// TraceGraph runs the kernel failure-free under the native protocol and
// returns its communication graph (what the off-line tool of [28] takes as
// input).
func TraceGraph(k apps.Kernel, p apps.Params) (*graph.Graph, *Summary, error) {
	sum, err := Run(Spec{Kernel: k, Params: p, Proto: ProtoNative})
	if err != nil {
		return nil, nil, err
	}
	return graph.FromPairBytes(p.NP, sum.PairBytes), sum, nil
}

// TraceSpec is the failure-free native spec TraceGraph runs; the parallel
// sweeps build batches of it.
func TraceSpec(k apps.Kernel, p apps.Params, model netmodel.Model) Spec {
	return Spec{Kernel: k, Params: p, Proto: ProtoNative, Model: model}
}

// ClusterApp traces the kernel and partitions its communication graph.
func ClusterApp(k apps.Kernel, p apps.Params, opt graph.Options) (graph.Result, error) {
	g, _, err := TraceGraph(k, p)
	if err != nil {
		return graph.Result{}, err
	}
	return graph.Cluster(g, opt), nil
}
