package harness_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hydee/internal/apps"
	"hydee/internal/graph"
	"hydee/internal/harness"
	"hydee/internal/mpi"
)

// TestRunAllMatchesSerial checks the acceptance criterion: a parallel sweep
// produces exactly the summaries the serial path does, in spec order.
func TestRunAllMatchesSerial(t *testing.T) {
	var specs []harness.Spec
	for _, k := range apps.Registry()[:3] {
		specs = append(specs, harness.TraceSpec(k, apps.Params{NP: 16, Iters: 2}, nil))
	}
	serial := make([]*harness.Summary, len(specs))
	for i, s := range specs {
		sum, err := harness.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = sum
	}
	par, err := harness.RunAll(context.Background(), specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		a, b := serial[i], par[i]
		if a.App != b.App || a.Makespan != b.Makespan || a.Totals != b.Totals {
			t.Errorf("spec %d differs: serial %+v vs parallel %+v", i, a, b)
		}
		if fmt.Sprint(a.PairBytes) != fmt.Sprint(b.PairBytes) {
			t.Errorf("spec %d pair-bytes differ", i)
		}
	}
}

// TestTable1ParallelByteIdentical renders Table1 rows computed serially
// (parallelism 1) and with parallelism 4 and requires byte-identical text.
func TestTable1ParallelByteIdentical(t *testing.T) {
	opt := graph.DefaultOptions()
	serial, err := harness.Table1Ctx(context.Background(), 32, 2, opt, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := harness.Table1Ctx(context.Background(), 32, 2, opt, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := harness.FormatTable1(serial), harness.FormatTable1(par)
	if a != b {
		t.Fatalf("Table1 rows differ between serial and parallel sweeps:\n--- serial\n%s\n--- parallel\n%s", a, b)
	}
}

// TestRunAllPropagatesFirstError checks that a failing spec is reported and
// the sibling cancellations do not mask it.
func TestRunAllPropagatesFirstError(t *testing.T) {
	k := apps.Registry()[0]
	good := harness.TraceSpec(k, apps.Params{NP: 8, Iters: 2}, nil)
	bad := good
	bad.Proto = harness.Proto(99)
	sums, err := harness.RunAll(context.Background(), []harness.Spec{good, bad, good}, 3)
	if err == nil || sums != nil {
		t.Fatalf("want error, got sums=%v err=%v", sums, err)
	}
	if errors.Is(err, mpi.ErrCanceled) {
		t.Fatalf("cancellation masked the real failure: %v", err)
	}
}

// TestRunAllHonorsCallerContext checks that canceling the caller's context
// aborts the sweep with ErrCanceled.
func TestRunAllHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var specs []harness.Spec
	for _, k := range apps.Registry() {
		specs = append(specs, harness.TraceSpec(k, apps.Params{NP: 16, Iters: 2}, nil))
	}
	if _, err := harness.RunAll(ctx, specs, 2); err == nil {
		t.Fatal("want error from canceled sweep")
	}
}

// TestRunAllEmpty checks the degenerate inputs.
func TestRunAllEmpty(t *testing.T) {
	sums, err := harness.RunAll(context.Background(), nil, 4)
	if sums != nil || err != nil {
		t.Fatalf("empty sweep: %v %v", sums, err)
	}
}
