package harness

// Determinism regression tests for the virtual-time delivery plane: every
// makespan — not just every digest — must be reproducible run-to-run, for
// every protocol, with checkpoint/recovery control traffic in flight. These
// are the experiments the paper's numbers come from (E4, F6, E5); if one of
// them turns scheduling-dependent again, the repository's results stop
// being citable.

import (
	"context"
	"reflect"
	"testing"

	"hydee/internal/apps"
	"hydee/internal/failure"
	"hydee/internal/graph"
)

// runTwice executes the spec twice and fails unless the summaries are
// indistinguishable — makespan, recovery stats, store stats, digests,
// traffic matrix.
func runTwice(t *testing.T, s Spec) *Summary {
	t.Helper()
	// Failure schedules carry fired-state; give each run its own copy.
	mkSpec := func() Spec {
		cp := s
		if s.Failures != nil {
			cp.Failures = failure.NewSchedule(s.Failures.Events...)
		}
		return cp
	}
	a, err := Run(mkSpec())
	if err != nil {
		t.Fatalf("%s/%s run 1: %v", s.Kernel.Name, s.Proto, err)
	}
	b, err := Run(mkSpec())
	if err != nil {
		t.Fatalf("%s/%s run 2: %v", s.Kernel.Name, s.Proto, err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("%s/%s: makespan not reproducible: %v vs %v", s.Kernel.Name, s.Proto, a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.Rounds, b.Rounds) {
		t.Errorf("%s/%s: recovery stats not reproducible:\n  %+v\n  %+v", s.Kernel.Name, s.Proto, a.Rounds, b.Rounds)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s/%s: summaries differ beyond makespan/rounds:\n  %+v\n  %+v", s.Kernel.Name, s.Proto, a, b)
	}
	return a
}

func cgAssign(t *testing.T) []int {
	t.Helper()
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterApp(k, apps.Params{NP: 16, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Assign
}

// TestE4MakespansReproducible runs each E4 containment scenario — one
// failure under coord, mlog and hydee — twice and asserts byte-identical
// makespans, recovery stats and digests.
func TestE4MakespansReproducible(t *testing.T) {
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	assign := cgAssign(t)
	for _, proto := range []Proto{ProtoCoord, ProtoMLog, ProtoHydEE} {
		sum := runTwice(t, Spec{
			Kernel: k, Params: apps.Params{NP: 16, Iters: 8},
			Proto: proto, Assign: assign, CheckpointEvery: 3,
			Failures: failure.NewSchedule(failure.Event{
				Ranks: []int{8},
				When:  failure.Trigger{AfterCheckpoints: 1},
			}),
		})
		if len(sum.Rounds) != 1 {
			t.Errorf("%s: expected 1 recovery round, got %d", proto, len(sum.Rounds))
		}
	}
}

// TestF6KernelMakespanReproducible runs one Figure-6 kernel failure-free
// with coordinated checkpoints (markers plus store traffic are exactly the
// out-of-band control flows that used to vary by scheduling) twice per
// protocol and asserts identical summaries.
func TestF6KernelMakespanReproducible(t *testing.T) {
	k, err := apps.Get("mg")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterApp(k, apps.Params{NP: 16, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []Proto{ProtoNative, ProtoMLog, ProtoHydEE} {
		runTwice(t, Spec{
			Kernel: k, Params: apps.Params{NP: 16, Iters: 6},
			Proto: proto, Assign: res.Assign, CheckpointEvery: 2,
		})
	}
}

// TestE5StoreContentionReproducible covers the stable-storage admission
// order: with a shared-bandwidth store, concurrent checkpoint writes queue
// behind each other, and the queue build-up (MaxQueue, end-of-write times,
// makespan) must not depend on which goroutine reached the store first.
func TestE5StoreContentionReproducible(t *testing.T) {
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	assign := cgAssign(t)
	for _, stagger := range []bool{false, true} {
		runTwice(t, Spec{
			Kernel: k, Params: apps.Params{NP: 16, Iters: 6},
			Proto: ProtoHydEE, Assign: assign,
			CheckpointEvery: 2, Stagger: stagger,
			StoreWriteBPS: 2e9, StoreReadBPS: 2e9,
		})
	}
}

// TestMidWaveFailureReproducible is the kill-fence regression: the failure
// fires right after the victim's own checkpoint write completes, while its
// scope peers' writes are still queued on the shared-bandwidth store — the
// configuration whose restored sequence (and everything downstream) used to
// depend on the real-time race between the kill and the queued saves. With
// the three-step virtual-time kill protocol (declare at the detection
// fence, drain, then kill) every observable must be byte-identical
// run-to-run for each protocol.
func TestMidWaveFailureReproducible(t *testing.T) {
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	assign := cgAssign(t)
	for _, proto := range []Proto{ProtoCoord, ProtoMLog, ProtoHydEE} {
		sum := runTwice(t, Spec{
			Kernel: k, Params: apps.Params{NP: 16, Iters: 8},
			Proto: proto, Assign: assign, CheckpointEvery: 3,
			StoreWriteBPS: 2e9, StoreReadBPS: 2e9,
			Failures: failure.NewSchedule(failure.Event{
				Ranks: []int{8},
				When:  failure.Trigger{AfterCheckpoints: 1},
			}),
		})
		if len(sum.Rounds) != 1 {
			t.Errorf("%s: expected 1 recovery round, got %d", proto, len(sum.Rounds))
		}
	}
}

// TestRunAllByteStableAcrossParallelism sweeps failure and checkpoint specs
// — the runs whose makespans used to vary — through RunAll at different
// parallelism levels and asserts the summaries are byte-identical.
func TestRunAllByteStableAcrossParallelism(t *testing.T) {
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	assign := cgAssign(t)
	mkSpecs := func() []Spec {
		var specs []Spec
		for _, proto := range []Proto{ProtoCoord, ProtoMLog, ProtoHydEE} {
			specs = append(specs, Spec{
				Kernel: k, Params: apps.Params{NP: 16, Iters: 6},
				Proto: proto, Assign: assign, CheckpointEvery: 2,
				Failures: failure.NewSchedule(failure.Event{
					Ranks: []int{8},
					When:  failure.Trigger{AfterCheckpoints: 1},
				}),
			})
		}
		return specs
	}
	serial, err := RunAll(context.Background(), mkSpecs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(context.Background(), mkSpecs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("spec %d: sweep output not byte-stable across parallelism:\n  %+v\n  %+v",
				i, serial[i], parallel[i])
		}
	}
}
