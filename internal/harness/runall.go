package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"hydee/internal/mpi"
)

// DefaultParallelism is the worker count RunAll uses when the caller passes
// parallelism <= 0. Each run is itself goroutine-heavy but CPU-bound in
// aggregate, so one worker per CPU is the sweet spot.
func DefaultParallelism() int { return runtime.NumCPU() }

// RunAll executes independent specs through a bounded worker pool and
// returns their summaries in spec order. Every run is deterministic and
// isolated (own network, own store), so the results are identical to the
// serial path regardless of parallelism or scheduling.
//
// On the first error (in spec order), the remaining unstarted specs are
// abandoned, in-flight runs are canceled, and that error is returned.
// Cancelling ctx cancels every run.
func RunAll(ctx context.Context, specs []Spec, parallelism int) ([]*Summary, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if parallelism <= 0 {
		parallelism = DefaultParallelism()
	}
	if parallelism > len(specs) {
		parallelism = len(specs)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type slot struct {
		sum *Summary
		err error
	}
	out := make([]slot, len(specs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sum, err := RunCtx(runCtx, specs[i])
				out[i] = slot{sum, err}
				if err != nil {
					cancel() // first failure stops the sweep
				}
			}
		}()
	}
	for i := range specs {
		if runCtx.Err() != nil {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()

	// Report the first real failure in spec order. Runs the pool itself
	// canceled after that failure surface ErrCanceled — only fall back to
	// one of those when nothing else failed (caller-canceled sweep).
	var fallback error
	sums := make([]*Summary, len(specs))
	for i, s := range out {
		if s.err != nil {
			// RunCtx already names the kernel/proto; add only the index.
			wrapped := fmt.Errorf("harness: spec %d: %w", i, s.err)
			if !errors.Is(s.err, mpi.ErrCanceled) {
				return nil, wrapped
			}
			if fallback == nil {
				fallback = wrapped
			}
		}
		sums[i] = s.sum
	}
	if fallback != nil {
		return nil, fallback
	}
	for _, s := range sums {
		if s == nil {
			// The sweep was cut short before this spec was dispatched
			// (only cancellation stops dispatch); fail rather than
			// return a partial sweep. A cancellation that lands after
			// every spec completed deliberately returns the full result.
			return nil, fmt.Errorf("harness: sweep canceled: %w", context.Cause(ctx))
		}
	}
	return sums, nil
}
