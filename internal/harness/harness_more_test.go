package harness

import (
	"strings"
	"testing"

	"hydee/internal/apps"
	"hydee/internal/graph"
	"hydee/internal/vtime"
)

func TestSpecValidation(t *testing.T) {
	k, _ := apps.Get("cg")
	if _, err := Run(Spec{Kernel: k, Params: apps.Params{NP: 0}}); err == nil {
		t.Fatal("accepted NP=0")
	}
	// HydEE without an assignment must fail loudly.
	if _, err := Run(Spec{Kernel: k, Params: apps.Params{NP: 4, Iters: 1}, Proto: ProtoHydEE}); err == nil {
		t.Fatal("accepted hydee without clustering")
	}
	if _, err := Run(Spec{Kernel: k, Params: apps.Params{NP: 4, Iters: 1}, Proto: Proto(99)}); err == nil {
		t.Fatal("accepted unknown protocol")
	}
}

func TestProtoString(t *testing.T) {
	cases := map[Proto]string{
		ProtoNative: "native", ProtoCoord: "coord", ProtoMLog: "mlog", ProtoHydEE: "hydee",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d: %q", int(p), p.String())
		}
	}
}

func TestSameDigestsDetectsDivergence(t *testing.T) {
	a := &Summary{Digests: []any{uint64(1), uint64(2)}}
	b := &Summary{Digests: []any{uint64(1), uint64(3)}}
	if err := SameDigests(a, a); err != nil {
		t.Fatal(err)
	}
	if err := SameDigests(a, b); err == nil {
		t.Fatal("missed divergence")
	}
	if err := SameDigests(a, &Summary{}); err == nil {
		t.Fatal("missed count mismatch")
	}
}

func TestTraceGraphSymmetryAndVolume(t *testing.T) {
	k, _ := apps.Get("mg")
	g, sum, err := TraceGraph(k, apps.Params{NP: 8, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 8 || g.Total <= 0 {
		t.Fatalf("graph: N=%d total=%v", g.N, g.Total)
	}
	// Graph total must equal the run's application bytes (symmetrized).
	if int64(g.Total) != sum.Totals.AppBytes {
		t.Fatalf("graph total %v != app bytes %d", g.Total, sum.Totals.AppBytes)
	}
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if g.W[i][j] != g.W[j][i] {
				t.Fatal("graph not symmetric")
			}
		}
	}
}

func TestFormatters(t *testing.T) {
	t1 := FormatTable1([]Table1Row{{App: "cg", K: 16, RollbackPct: 6.25, LoggedGB: 440, TotalGB: 2318, LoggedPct: 18.98}})
	if !strings.Contains(t1, "CG") || !strings.Contains(t1, "18.98") {
		t.Fatalf("table1 format: %q", t1)
	}
	f5 := FormatFigure5([]Fig5Row{{Bytes: 32, NativeLatUs: 3.3, LatRedNoLogPct: -15.8}})
	if !strings.Contains(f5, "-15.80") {
		t.Fatalf("fig5 format: %q", f5)
	}
	f6 := FormatFigure6([]Fig6Row{{App: "ft", MLogNorm: 1.0027, HydEENorm: 1.0015, MLogPct: 0.27, HydEEPct: 0.15}})
	if !strings.Contains(f6, "FT") || !strings.Contains(f6, "1.0027") {
		t.Fatalf("fig6 format: %q", f6)
	}
	e4 := FormatE4([]E4Row{{App: "cg", Proto: "hydee", RolledBackPct: 25, RecoveryVT: vtime.Duration(21e6), MakespanVT: vtime.Time(1e9)}})
	if !strings.Contains(e4, "hydee") || !strings.Contains(e4, "25.00%") {
		t.Fatalf("e4 format: %q", e4)
	}
	e5 := FormatE5([]E5Row{{Config: "hydee-staggered", MaxQueue: vtime.Duration(68e6), Makespan: vtime.Time(6e8), CkptBytes: 42}})
	if !strings.Contains(e5, "hydee-staggered") {
		t.Fatalf("e5 format: %q", e5)
	}
}

func TestClusteringsCoverAllKernels(t *testing.T) {
	m, rows, err := Clusterings(16, 1, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 6 || len(rows) != 6 {
		t.Fatalf("clusterings: %d assignments, %d rows", len(m), len(rows))
	}
	for name, assign := range m {
		if len(assign) != 16 {
			t.Errorf("%s: assignment covers %d ranks", name, len(assign))
		}
	}
}

func TestMLogLogsEverything(t *testing.T) {
	k, _ := apps.Get("mg")
	sum, err := Run(Spec{Kernel: k, Params: apps.Params{NP: 8, Iters: 2}, Proto: ProtoMLog})
	if err != nil {
		t.Fatal(err)
	}
	if sum.LoggedFrac < 0.999 {
		t.Fatalf("mlog logged %.3f of bytes, want all", sum.LoggedFrac)
	}
	if sum.Totals.PiggyBytes == 0 {
		t.Fatal("mlog piggybacked nothing (determinants missing)")
	}
}

func TestCoordLogsNothing(t *testing.T) {
	k, _ := apps.Get("mg")
	sum, err := Run(Spec{Kernel: k, Params: apps.Params{NP: 8, Iters: 2}, Proto: ProtoCoord})
	if err != nil {
		t.Fatal(err)
	}
	if sum.LoggedFrac != 0 || sum.PiggyFrac != 0 {
		t.Fatalf("coord logged %.3f piggy %.3f, want zero", sum.LoggedFrac, sum.PiggyFrac)
	}
}
