package apps_test

import (
	"testing"
	"time"

	"hydee/internal/apps"
	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/trace"
)

func runKernel(t *testing.T, k apps.Kernel, np, iters int, prot rollback.Protocol,
	topo *rollback.Topology, sched *failure.Schedule, ckpt int, rec *trace.Recorder) *mpi.Result {
	t.Helper()
	prog, err := k.Make(apps.Params{NP: np, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(mpi.Config{
		NP:              np,
		Model:           netmodel.Myrinet10G(),
		Topo:            topo,
		Protocol:        prot,
		Failures:        sched,
		CheckpointEvery: ckpt,
		Recorder:        rec,
		Watchdog:        60 * time.Second,
	}, prog)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, k := range apps.Registry() {
		names[k.Name] = true
		if k.ClassIters <= 0 || k.BytesPerRankIter <= 0 {
			t.Errorf("%s: missing class-D calibration", k.Name)
		}
	}
	for _, want := range []string{"bt", "cg", "ft", "lu", "mg", "sp"} {
		if !names[want] {
			t.Errorf("kernel %s missing from registry", want)
		}
	}
	if _, err := apps.Get("cg"); err != nil {
		t.Error(err)
	}
	if _, err := apps.Get("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

// TestKernelsRunFailureFree exercises every kernel at a small scale and
// checks determinism: two runs produce identical digests.
func TestKernelsRunFailureFree(t *testing.T) {
	for _, k := range apps.Registry() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			a := runKernel(t, k, 16, 2, rollback.Native(), nil, nil, 0, nil)
			b := runKernel(t, k, 16, 2, rollback.Native(), nil, nil, 0, nil)
			for r := 0; r < 16; r++ {
				if a.Results[r] == nil {
					t.Fatalf("rank %d produced no digest", r)
				}
				if a.Results[r] != b.Results[r] {
					t.Fatalf("rank %d digest differs across identical runs", r)
				}
			}
			if a.Totals.AppSends == 0 {
				t.Fatal("kernel sent nothing")
			}
		})
	}
}

// TestKernelsAreSendDeterministic checks Definition 3 on every kernel: the
// send fingerprints (receiver, tag, size, payload, date, phase) of two runs
// are identical.
func TestKernelsAreSendDeterministic(t *testing.T) {
	assign := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}
	for _, k := range apps.Registry() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			topo := rollback.NewTopology(assign)
			recA := trace.NewRecorder(16)
			runKernel(t, k, 16, 2, core.New(), topo, nil, 0, recA)
			recB := trace.NewRecorder(16)
			runKernel(t, k, 16, 2, core.New(), topo, nil, 0, recB)
			for p := 0; p < 16; p++ {
				a := trace.SendSequence(recA.Events(), p)
				b := trace.SendSequence(recB.Events(), p)
				if err := trace.EqualSendSeq(a, b); err != nil {
					t.Fatalf("proc %d: %v", p, err)
				}
			}
			if err := trace.BuildHB(recA.Events()).CheckPhaseMonotone(); err != nil {
				t.Fatalf("Lemma 1 on %s: %v", k.Name, err)
			}
		})
	}
}

// TestKernelsRecoverFromFailure injects one failure per kernel under HydEE
// and validates the recovered digests against the failure-free run.
func TestKernelsRecoverFromFailure(t *testing.T) {
	assign := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}
	for _, k := range apps.Registry() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			topo := rollback.NewTopology(assign)
			clean := runKernel(t, k, 16, 6, core.New(), topo, nil, 2, nil)
			sched := failure.NewSchedule(failure.Event{
				Ranks: []int{6},
				When:  failure.Trigger{AfterCheckpoints: 1},
			})
			failed := runKernel(t, k, 16, 6, core.New(), topo, sched, 2, nil)
			if len(failed.Rounds) != 1 {
				t.Fatalf("rounds %d", len(failed.Rounds))
			}
			if failed.Rounds[0].RolledBack != 4 {
				t.Fatalf("rolled back %d, want cluster of 4", failed.Rounds[0].RolledBack)
			}
			for r := 0; r < 16; r++ {
				if clean.Results[r] != failed.Results[r] {
					t.Fatalf("rank %d diverged after recovery", r)
				}
			}
		})
	}
}

func TestClassDVolumeCalibration(t *testing.T) {
	// The modeled per-iteration volume of each kernel must extrapolate to
	// the right order of magnitude of the paper's Table I totals (256
	// ranks, class D): BT 791, CG 2318, FT 860, LU 337, MG 66, SP 1446 GB.
	want := map[string]float64{
		"bt": 791, "cg": 2318, "ft": 860, "lu": 337, "mg": 66, "sp": 1446,
	}
	for _, k := range apps.Registry() {
		gotGB := k.BytesPerRankIter * 256 * float64(k.ClassIters) / 1e9
		w := want[k.Name]
		if gotGB < w*0.7 || gotGB > w*1.3 {
			t.Errorf("%s: calibrated volume %.0f GB, paper %.0f GB", k.Name, gotGB, w)
		}
	}
}

func TestRingAndStencilProgramsRecover(t *testing.T) {
	topo := rollback.NewTopology([]int{0, 0, 1, 1, 2, 2})
	for name, prog := range map[string]mpi.Program{
		"ring":    apps.Ring(8, 1024),
		"stencil": apps.Stencil2D(8, 2048),
	} {
		run := func(sched *failure.Schedule) *mpi.Result {
			res, err := mpi.Run(mpi.Config{
				NP: 6, Topo: topo, Protocol: core.New(),
				CheckpointEvery: 3, Failures: sched,
				Watchdog: 30 * time.Second,
			}, prog)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res
		}
		clean := run(nil)
		failed := run(failure.NewSchedule(failure.Event{
			Ranks: []int{1}, When: failure.Trigger{AfterCheckpoints: 1},
		}))
		for r := 0; r < 6; r++ {
			if clean.Results[r] != failed.Results[r] {
				t.Fatalf("%s rank %d diverged", name, r)
			}
		}
	}
}

func TestGridFactorizations(t *testing.T) {
	// Kernels must work at odd process counts too.
	for _, np := range []int{2, 6, 12, 18} {
		for _, k := range apps.Registry() {
			res := runKernel(t, k, np, 1, rollback.Native(), nil, nil, 0, nil)
			if res.Totals.AppSends == 0 && np > 1 {
				t.Errorf("%s at np=%d sent nothing", k.Name, np)
			}
		}
	}
}
