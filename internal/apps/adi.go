package apps

import (
	"hydee/internal/mpi"
)

// adi builds the BT/SP-style kernel: an alternating-direction-implicit
// solver on a 2D process grid with face exchanges along the x sweep (row
// neighbors) and the y sweep (column neighbors), plus a small global
// residual reduction. The NPB multipartition scheme concentrates traffic
// along grid rows, which is what lets the clustering tool cut the graph
// into row stripes at a low logged fraction (Table I).
func adi(name string, classIters int, xMsg, yMsg, computeSec float64) Kernel {
	return Kernel{
		Name:             name,
		ClassIters:       classIters,
		BytesPerRankIter: 2*xMsg + 2*yMsg,
		Make: func(p Params) (mpi.Program, error) {
			p = p.normalize()
			return func(c *mpi.Comm) error {
				np := c.Size()
				rows, cols := grid2D(np)
				rank := c.Rank()
				r, col := rank/cols, rank%cols
				east := r*cols + (col+1)%cols
				west := r*cols + (col-1+cols)%cols
				south := ((r+1)%rows)*cols + col
				north := ((r-1+rows)%rows)*cols + col

				st := newState(rank, 8)
				if _, err := c.Restore(st); err != nil {
					return err
				}
				c.SetStateBytes(int64(4 * (xMsg + yMsg) * p.SizeScale))

				xw := wire(xMsg, p)
				yw := wire(yMsg, p)
				const (
					tagX = 101
					tagY = 102
				)
				for st.Iter < p.Iters {
					// x sweep: exchange east/west faces.
					if np > 1 && cols > 1 {
						if err := c.SendW(east, tagX, mpi.Float64sToBytes(st.slice(payloadFloats, 1)), xw); err != nil {
							return err
						}
						got, _, err := c.Recv(west, tagX)
						if err != nil {
							return err
						}
						in, err := mpi.BytesToFloat64s(got)
						if err != nil {
							return err
						}
						st.fold(in)
						if err := c.SendW(west, tagX, mpi.Float64sToBytes(st.slice(payloadFloats, 2)), xw); err != nil {
							return err
						}
						got, _, err = c.Recv(east, tagX)
						if err != nil {
							return err
						}
						if in, err = mpi.BytesToFloat64s(got); err != nil {
							return err
						}
						st.fold(in)
					}
					if err := c.Compute(compute(computeSec*0.45, p)); err != nil {
						return err
					}
					// y sweep: exchange north/south faces.
					if np > 1 && rows > 1 {
						if err := c.SendW(south, tagY, mpi.Float64sToBytes(st.slice(payloadFloats, 3)), yw); err != nil {
							return err
						}
						got, _, err := c.Recv(north, tagY)
						if err != nil {
							return err
						}
						in, err := mpi.BytesToFloat64s(got)
						if err != nil {
							return err
						}
						st.fold(in)
						if err := c.SendW(north, tagY, mpi.Float64sToBytes(st.slice(payloadFloats, 4)), yw); err != nil {
							return err
						}
						got, _, err = c.Recv(south, tagY)
						if err != nil {
							return err
						}
						if in, err = mpi.BytesToFloat64s(got); err != nil {
							return err
						}
						st.fold(in)
					}
					if err := c.Compute(compute(computeSec*0.45, p)); err != nil {
						return err
					}
					// z sweep is partition-local in the multipartition
					// scheme; represented as compute.
					if err := c.Compute(compute(computeSec*0.1, p)); err != nil {
						return err
					}
					// Residual norm.
					res, err := c.Allreduce([]float64{st.V[0], st.V[1]}, mpi.OpSum, 16)
					if err != nil {
						return err
					}
					st.fold(res)

					st.Iter++
					if err := c.Checkpoint(); err != nil {
						return err
					}
				}
				c.SetResult(st.digest(rank))
				return nil
			}, nil
		},
	}
}

// BT is the block-tridiagonal solver: class D moves 791 GB over 250
// timesteps on 256 ranks (Table I), with row-heavy multipartition traffic.
func BT() Kernel {
	// 2x + 2y = 12.36 MB per rank-iteration, x:y = 2:1.
	return adi("bt", 250, 4.12e6, 2.06e6, 0.031)
}

// SP is the scalar-pentadiagonal solver: class D moves 1446 GB over 400
// timesteps on 256 ranks, with a milder row bias than BT.
func SP() Kernel {
	// 2x + 2y = 14.1 MB per rank-iteration, x:y = 2.5:1.
	return adi("sp", 400, 5.04e6, 2.014e6, 0.035)
}
