// Package apps provides send-deterministic communication kernels modeled on
// the six NAS Parallel Benchmarks the paper evaluates (BT, CG, FT, LU, MG,
// SP; class D on 256 processes), plus small synthetic applications used by
// the tests.
//
// Each kernel reproduces the benchmark's communication *pattern* (who talks
// to whom, how often) and its class-D communication *volume* (via modeled
// wire sizes), while computing on a small real state vector so that the
// recovered execution can be validated bit-for-bit against a failure-free
// run. Per-iteration compute time is calibrated so communication is a
// realistic fraction of the runtime; virtual time makes the absolute scale
// free.
//
// All kernels are send-deterministic: receives are source- and
// tag-directed, and the data sent never depends on the order in which
// non-causally-related messages were delivered. The master/worker app is
// the deliberate exception (§II-B: the only class of applications the model
// excludes).
package apps

import (
	"fmt"
	"hash/fnv"
	"math"

	"hydee/internal/mpi"
	"hydee/internal/vtime"
)

// Params scales a kernel run.
type Params struct {
	// NP is the number of ranks.
	NP int
	// Iters is the number of timesteps to execute (the class-D iteration
	// count is Kernel.ClassIters; volumes extrapolate linearly).
	Iters int
	// SizeScale multiplies all modeled message sizes (default 1 = class
	// D volumes).
	SizeScale float64
	// ComputeScale multiplies per-iteration compute time (default 1).
	ComputeScale float64
}

func (p Params) normalize() Params {
	if p.SizeScale <= 0 {
		p.SizeScale = 1
	}
	if p.ComputeScale <= 0 {
		p.ComputeScale = 1
	}
	if p.Iters <= 0 {
		p.Iters = 1
	}
	return p
}

// Kernel describes one benchmark.
type Kernel struct {
	// Name is the NPB name (lowercase).
	Name string
	// ClassIters is the class-D iteration count, used to extrapolate
	// whole-run volumes from short runs.
	ClassIters int
	// BytesPerRankIter is the modeled class-D communication volume one
	// rank sends per iteration (all messages summed).
	BytesPerRankIter float64
	// Make builds the rank program.
	Make func(p Params) (mpi.Program, error)
}

// State is the checkpointable per-rank state shared by all kernels.
type State struct {
	Iter int
	V    []float64
}

// digest produces the rank's result fingerprint.
func (s *State) digest(rank int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(u uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(rank))
	put(uint64(s.Iter))
	for _, v := range s.V {
		put(math.Float64bits(v))
	}
	return h.Sum64()
}

// fold mixes received floats into the state deterministically.
func (s *State) fold(in []float64) {
	for i, v := range in {
		j := i % len(s.V)
		s.V[j] = s.V[j]*0.75 + v*0.25 + 1e-6*float64(j+1)
	}
}

// slice returns a small real payload derived from the state.
func (s *State) slice(k, salt int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = s.V[(i+salt)%len(s.V)] + float64(salt)*1e-9
	}
	return out
}

func newState(rank, width int) *State {
	v := make([]float64, width)
	for i := range v {
		v[i] = float64(rank+1) * (1.0 + float64(i)*0.01)
	}
	return &State{V: v}
}

// payloadFloats is the real payload width (floats) of kernel messages.
const payloadFloats = 4

// grid2D factors np into a near-square rows x cols grid.
func grid2D(np int) (rows, cols int) {
	r := int(math.Sqrt(float64(np)))
	for r > 1 && np%r != 0 {
		r--
	}
	if r < 1 {
		r = 1
	}
	return r, np / r
}

// grid3D factors np into near-cubic x*y*z.
func grid3D(np int) (x, y, z int) {
	z = int(math.Cbrt(float64(np)))
	for z > 1 && np%z != 0 {
		z--
	}
	if z < 1 {
		z = 1
	}
	rem := np / z
	x, y = grid2D(rem)
	return x, y, z
}

// wire converts a modeled byte count through the size scale.
func wire(bytes float64, p Params) int {
	w := int(bytes * p.SizeScale)
	if w < 8*payloadFloats {
		w = 8 * payloadFloats
	}
	return w
}

// compute converts seconds of class-D work through the compute scale.
func compute(sec float64, p Params) vtime.Duration {
	return vtime.Duration(sec * p.ComputeScale * 1e9)
}

// Registry lists the six NAS kernels in the paper's Table I order.
func Registry() []Kernel {
	return []Kernel{BT(), CG(), FT(), LU(), MG(), SP()}
}

// Get returns the kernel with the given name.
func Get(name string) (Kernel, error) {
	for _, k := range Registry() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("apps: unknown kernel %q", name)
}
