package apps

import (
	"hydee/internal/mpi"
)

// CG is the conjugate-gradient kernel. NPB CG arranges ranks in a
// npcols x nprows grid; the sparse matrix-vector product reduces partial
// sums across each grid row (log2(cols) butterfly exchanges) and exchanges
// the result with the transpose partner; two dot products reduce globally.
// Row traffic dominates, so the clustering tool finds one cluster per grid
// row (16 clusters of 16 at np=256), logging only the transpose and
// reduction traffic — the paper's 18.98%.
//
// Class D moves 2318 GB on 256 ranks; with ~2500 inner iterations that is
// ~3.6 MB per rank-iteration.
func CG() Kernel {
	const (
		classIters = 2500
		rowMsg     = 750e3 // per butterfly stage
		trMsg      = 600e3 // transpose partner exchange
		computeSec = 0.010
	)
	return Kernel{
		Name:             "cg",
		ClassIters:       classIters,
		BytesPerRankIter: 4*rowMsg + trMsg,
		Make: func(p Params) (mpi.Program, error) {
			p = p.normalize()
			return func(c *mpi.Comm) error {
				np := c.Size()
				rows, cols := grid2D(np)
				rank := c.Rank()
				r, col := rank/cols, rank%cols

				// Transpose partner (exists when the grid is square).
				tr := -1
				if rows == cols && np > 1 {
					tr = col*cols + r
				} else if np > 1 {
					tr = (rank + np/2) % np
				}

				st := newState(rank, 8)
				if _, err := c.Restore(st); err != nil {
					return err
				}
				c.SetStateBytes(int64(6 * rowMsg * p.SizeScale))

				rw := wire(rowMsg, p)
				tw := wire(trMsg, p)
				const (
					tagRow = 201
					tagTr  = 202
				)
				for st.Iter < p.Iters {
					// Row butterfly: reduce partial sums across the row.
					for k := 1; k < cols; k <<= 1 {
						partner := col ^ k
						if partner >= cols {
							continue
						}
						peer := r*cols + partner
						got, err := c.SendRecvW(peer, tagRow+k,
							mpi.Float64sToBytes(st.slice(payloadFloats, k)), rw,
							peer, tagRow+k)
						if err != nil {
							return err
						}
						in, err := mpi.BytesToFloat64s(got)
						if err != nil {
							return err
						}
						st.fold(in)
					}
					if err := c.Compute(compute(computeSec*0.7, p)); err != nil {
						return err
					}
					// Transpose exchange.
					if tr >= 0 && tr != rank {
						got, err := c.SendRecvW(tr, tagTr,
							mpi.Float64sToBytes(st.slice(payloadFloats, 9)), tw,
							tr, tagTr)
						if err != nil {
							return err
						}
						in, err := mpi.BytesToFloat64s(got)
						if err != nil {
							return err
						}
						st.fold(in)
					}
					if err := c.Compute(compute(computeSec*0.3, p)); err != nil {
						return err
					}
					// Two dot products per inner iteration.
					for d := 0; d < 2; d++ {
						res, err := c.Allreduce([]float64{st.V[d]}, mpi.OpSum, 8)
						if err != nil {
							return err
						}
						st.fold(res)
					}

					st.Iter++
					if err := c.Checkpoint(); err != nil {
						return err
					}
				}
				c.SetResult(st.digest(rank))
				return nil
			}, nil
		},
	}
}
