package apps

import (
	"hydee/internal/mpi"
)

// MG is the multigrid V-cycle kernel on a 3D process grid: at every grid
// level each rank exchanges its six faces with its neighbors, with face
// sizes shrinking by 4x per coarser level. The z faces are the smallest
// (the paper's 256-rank runs use an 8x8x4 grid), so the clustering tool
// cuts the grid into z slabs: 4 clusters of 64, logging ~20% (Table I).
//
// Class D moves 66 GB on 256 ranks; with ~50 V-cycles that is ~5.2 MB per
// rank-iteration.
func MG() Kernel {
	const (
		classIters = 50
		faceXY     = 800e3 // finest-level x/y face
		faceZ      = 400e3 // finest-level z face
		levels     = 3
		computeSec = 0.014
	)
	var perIter float64
	scale := 1.0
	for l := 0; l < levels; l++ {
		perIter += 2 * (2*faceXY + faceZ) * scale
		scale /= 4
	}
	return Kernel{
		Name:             "mg",
		ClassIters:       classIters,
		BytesPerRankIter: perIter,
		Make: func(p Params) (mpi.Program, error) {
			p = p.normalize()
			return func(c *mpi.Comm) error {
				np := c.Size()
				nx, ny, nz := grid3D(np)
				rank := c.Rank()
				// rank = (z*ny + y)*nx + x
				x := rank % nx
				y := (rank / nx) % ny
				z := rank / (nx * ny)
				at := func(xx, yy, zz int) int {
					return (zz*ny+yy)*nx + xx
				}
				xp, xm := at((x+1)%nx, y, z), at((x-1+nx)%nx, y, z)
				yp, ym := at(x, (y+1)%ny, z), at(x, (y-1+ny)%ny, z)
				zp, zm := at(x, y, (z+1)%nz), at(x, y, (z-1+nz)%nz)

				st := newState(rank, 8)
				if _, err := c.Restore(st); err != nil {
					return err
				}
				c.SetStateBytes(int64(2 * (2*faceXY + faceZ) * p.SizeScale))

				const tagMG = 401
				exchange := func(plus, minus, w, tag int, salt int) error {
					if plus == c.Rank() {
						return nil // dimension of extent 1
					}
					got, err := c.SendRecvW(plus, tag,
						mpi.Float64sToBytes(st.slice(payloadFloats, salt)), w,
						minus, tag)
					if err != nil {
						return err
					}
					in, err := mpi.BytesToFloat64s(got)
					if err != nil {
						return err
					}
					st.fold(in)
					got, err = c.SendRecvW(minus, tag+1,
						mpi.Float64sToBytes(st.slice(payloadFloats, salt+1)), w,
						plus, tag+1)
					if err != nil {
						return err
					}
					if in, err = mpi.BytesToFloat64s(got); err != nil {
						return err
					}
					st.fold(in)
					return nil
				}
				for st.Iter < p.Iters {
					lscale := 1.0
					for l := 0; l < levels; l++ {
						wxy := wire(faceXY*lscale, p)
						wz := wire(faceZ*lscale, p)
						tag := tagMG + 10*l
						if err := exchange(xp, xm, wxy, tag, l); err != nil {
							return err
						}
						if err := exchange(yp, ym, wxy, tag+2, l+3); err != nil {
							return err
						}
						if err := exchange(zp, zm, wz, tag+4, l+5); err != nil {
							return err
						}
						if err := c.Compute(compute(computeSec/levels, p)); err != nil {
							return err
						}
						lscale /= 4
					}
					// Norm check.
					res, err := c.Allreduce([]float64{st.V[2]}, mpi.OpSum, 8)
					if err != nil {
						return err
					}
					st.fold(res)

					st.Iter++
					if err := c.Checkpoint(); err != nil {
						return err
					}
				}
				c.SetResult(st.digest(rank))
				return nil
			}, nil
		},
	}
}
