package apps

import (
	"hydee/internal/mpi"
)

// LU is the SSOR solver. Its lower- and upper-triangular sweeps form a
// pipelined wavefront across the 2D process grid: each rank receives from
// its north and west neighbors, relaxes a block of k-planes, and forwards
// to south and east (the upper sweep runs the reverse diagonal). This is
// the longest causal chain of the six kernels — ideal for exercising phase
// propagation. Traffic is row-biased, so the clustering tool cuts the grid
// into row stripes (8 clusters of 32, 13.26% logged in Table I).
//
// Class D moves 337 GB on 256 ranks over ~300 timesteps: ~4.4 MB per
// rank-iteration, in many medium-sized pipeline messages.
func LU() Kernel {
	const (
		classIters = 300
		steps      = 16    // wavefront k-plane blocks per sweep
		southMsg   = 34e3  // per-step column-direction message
		eastMsg    = 103e3 // per-step row-direction message (3x heavier)
		computeSec = 0.012
	)
	return Kernel{
		Name:             "lu",
		ClassIters:       classIters,
		BytesPerRankIter: 2 * steps * (southMsg + eastMsg),
		Make: func(p Params) (mpi.Program, error) {
			p = p.normalize()
			return func(c *mpi.Comm) error {
				np := c.Size()
				rows, cols := grid2D(np)
				rank := c.Rank()
				r, col := rank/cols, rank%cols
				north, south := -1, -1
				west, east := -1, -1
				if r > 0 {
					north = (r-1)*cols + col
				}
				if r < rows-1 {
					south = (r+1)*cols + col
				}
				if col > 0 {
					west = r*cols + (col - 1)
				}
				if col < cols-1 {
					east = r*cols + (col + 1)
				}

				st := newState(rank, 8)
				if _, err := c.Restore(st); err != nil {
					return err
				}
				c.SetStateBytes(int64(steps * (southMsg + eastMsg) * p.SizeScale))

				sw := wire(southMsg, p)
				ew := wire(eastMsg, p)
				stepCompute := compute(computeSec/(2*steps), p)
				const (
					tagLow = 301
					tagUp  = 302
				)
				recvFold := func(src, tag int) error {
					got, _, err := c.Recv(src, tag)
					if err != nil {
						return err
					}
					in, err := mpi.BytesToFloat64s(got)
					if err != nil {
						return err
					}
					st.fold(in)
					return nil
				}
				for st.Iter < p.Iters {
					// Lower-triangular sweep: wavefront from (0,0).
					for s := 0; s < steps; s++ {
						if north >= 0 {
							if err := recvFold(north, tagLow); err != nil {
								return err
							}
						}
						if west >= 0 {
							if err := recvFold(west, tagLow); err != nil {
								return err
							}
						}
						if err := c.Compute(stepCompute); err != nil {
							return err
						}
						if south >= 0 {
							if err := c.SendW(south, tagLow, mpi.Float64sToBytes(st.slice(payloadFloats, s)), sw); err != nil {
								return err
							}
						}
						if east >= 0 {
							if err := c.SendW(east, tagLow, mpi.Float64sToBytes(st.slice(payloadFloats, s+1)), ew); err != nil {
								return err
							}
						}
					}
					// Upper-triangular sweep: wavefront from (rows-1,cols-1).
					for s := 0; s < steps; s++ {
						if south >= 0 {
							if err := recvFold(south, tagUp); err != nil {
								return err
							}
						}
						if east >= 0 {
							if err := recvFold(east, tagUp); err != nil {
								return err
							}
						}
						if err := c.Compute(stepCompute); err != nil {
							return err
						}
						if north >= 0 {
							if err := c.SendW(north, tagUp, mpi.Float64sToBytes(st.slice(payloadFloats, s+2)), sw); err != nil {
								return err
							}
						}
						if west >= 0 {
							if err := c.SendW(west, tagUp, mpi.Float64sToBytes(st.slice(payloadFloats, s+3)), ew); err != nil {
								return err
							}
						}
					}
					// Residual norm.
					res, err := c.Allreduce([]float64{st.V[0], st.V[3]}, mpi.OpSum, 16)
					if err != nil {
						return err
					}
					st.fold(res)

					st.Iter++
					if err := c.Checkpoint(); err != nil {
						return err
					}
				}
				c.SetResult(st.digest(rank))
				return nil
			}, nil
		},
	}
}
