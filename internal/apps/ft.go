package apps

import (
	"hydee/internal/mpi"
)

// FT is the 3D FFT kernel. Its distributed transpose is a global
// all-to-all: every rank sends a block to every other rank each timestep.
// No partition of an all-to-all graph has a small cut, which is why the
// clustering tool settles for two clusters and a ~50% logged fraction
// (Table I) — the paper's worst case.
//
// Class D on 256 ranks moves 860 GB over ~25 iterations: each rank's local
// slab is ~134 MB, re-distributed once per timestep (~527 KB per peer).
func FT() Kernel {
	const (
		classIters = 25
		slabBytes  = 134e6
		computeSec = 0.30
	)
	return Kernel{
		Name:             "ft",
		ClassIters:       classIters,
		BytesPerRankIter: slabBytes,
		Make: func(p Params) (mpi.Program, error) {
			p = p.normalize()
			return func(c *mpi.Comm) error {
				np := c.Size()
				rank := c.Rank()
				st := newState(rank, 8)
				if _, err := c.Restore(st); err != nil {
					return err
				}
				c.SetStateBytes(int64(slabBytes * p.SizeScale))

				blockWire := wire(slabBytes/float64(np), p)
				for st.Iter < p.Iters {
					// Local 1D FFTs.
					if err := c.Compute(compute(computeSec*0.5, p)); err != nil {
						return err
					}
					// Distributed transpose: global all-to-all.
					blocks := make([][]byte, np)
					for d := 0; d < np; d++ {
						blocks[d] = mpi.Float64sToBytes(st.slice(payloadFloats, d))
					}
					got, err := c.Alltoall(blocks, blockWire)
					if err != nil {
						return err
					}
					for s, b := range got {
						if s == rank || b == nil {
							continue
						}
						in, err := mpi.BytesToFloat64s(b)
						if err != nil {
							return err
						}
						// Commutative fold: the pairwise exchange defines
						// the order deterministically anyway.
						st.fold(in[:1])
					}
					// Remaining FFT dimension.
					if err := c.Compute(compute(computeSec*0.5, p)); err != nil {
						return err
					}
					// Checksum.
					res, err := c.Allreduce([]float64{st.V[0]}, mpi.OpSum, 8)
					if err != nil {
						return err
					}
					st.fold(res)

					st.Iter++
					if err := c.Checkpoint(); err != nil {
						return err
					}
				}
				c.SetResult(st.digest(rank))
				return nil
			}, nil
		},
	}
}
