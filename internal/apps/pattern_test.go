package apps_test

// Structural tests of the kernels' communication patterns: Table I depends
// on who talks to whom and how much, so each kernel's traffic matrix is
// pinned here independently of the clustering tool.

import (
	"testing"

	"hydee/internal/apps"
	"hydee/internal/mpi"
	"hydee/internal/rollback"
)

// traceMatrix runs a kernel at np ranks and returns the directed byte
// matrix.
func traceMatrix(t *testing.T, name string, np, iters int) []int64 {
	t.Helper()
	k, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Make(apps.Params{NP: np, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(mpi.Config{NP: np, Protocol: rollback.Native()}, prog)
	if err != nil {
		t.Fatal(err)
	}
	return res.PairBytes
}

// rowColBytes sums traffic within grid rows vs across rows for a 2D-grid
// kernel (allreduce crumbs included in "other").
func rowColBytes(np, cols int, m []int64) (sameRow, other int64) {
	for s := 0; s < np; s++ {
		for d := 0; d < np; d++ {
			if m[s*np+d] == 0 {
				continue
			}
			if s/cols == d/cols {
				sameRow += m[s*np+d]
			} else {
				other += m[s*np+d]
			}
		}
	}
	return
}

func TestBTAndSPAreRowDominant(t *testing.T) {
	for _, name := range []string{"bt", "sp"} {
		m := traceMatrix(t, name, 16, 2)
		row, other := rowColBytes(16, 4, m)
		if row <= other {
			t.Errorf("%s: row traffic %d not dominant over %d — row-stripe clustering would not emerge", name, row, other)
		}
	}
}

func TestCGRowButterflyDominates(t *testing.T) {
	m := traceMatrix(t, "cg", 16, 2)
	row, other := rowColBytes(16, 4, m)
	// The paper's CG clusters are grid rows: row traffic must carry the
	// bulk (transpose + dot products are the logged remainder).
	if float64(row)/float64(row+other) < 0.6 {
		t.Errorf("cg: row share %.2f too low", float64(row)/float64(row+other))
	}
}

func TestFTIsUniformAllToAll(t *testing.T) {
	np := 8
	m := traceMatrix(t, "ft", np, 1)
	var min, max int64
	for s := 0; s < np; s++ {
		for d := 0; d < np; d++ {
			if s == d {
				continue
			}
			b := m[s*np+d]
			if b == 0 {
				t.Fatalf("ft: no traffic %d->%d (all-to-all broken)", s, d)
			}
			if min == 0 || b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
	}
	// The transpose blocks dominate; collective crumbs make pairs only
	// slightly unequal.
	if float64(max)/float64(min) > 1.5 {
		t.Errorf("ft: pair traffic spread %d..%d too wide for an all-to-all", min, max)
	}
}

func TestLUIsWavefrontNeighborOnly(t *testing.T) {
	np := 16
	cols := 4
	m := traceMatrix(t, "lu", np, 1)
	var neighbor, far int64
	for s := 0; s < np; s++ {
		sr, sc := s/cols, s%cols
		for d := 0; d < np; d++ {
			if m[s*np+d] == 0 || s == d {
				continue
			}
			dr, dc := d/cols, d%cols
			manhattan := abs(sr-dr) + abs(sc-dc)
			if manhattan == 1 {
				neighbor += m[s*np+d]
			} else {
				far += m[s*np+d]
			}
		}
	}
	if float64(neighbor)/float64(neighbor+far) < 0.95 {
		t.Errorf("lu: neighbor share %.3f, want ~all traffic on grid edges",
			float64(neighbor)/float64(neighbor+far))
	}
	// The pipeline is bounded: corner rank (0,0) receives nothing in the
	// lower sweep before sending — check it has no incoming north/west.
	if m[0] != 0 {
		t.Error("lu: self traffic")
	}
}

func TestMGZFacesAreLighter(t *testing.T) {
	// 2x2x2 grid at np=8: z-partners differ by 4 in rank; x/y partners by
	// 1 or 2. The z share must be the smallest (the paper's clusters are
	// z slabs because cutting z is cheapest).
	np := 8
	m := traceMatrix(t, "mg", np, 2)
	var xy, z int64
	for s := 0; s < np; s++ {
		for d := 0; d < np; d++ {
			if m[s*np+d] == 0 {
				continue
			}
			if abs(s-d) == 4 {
				z += m[s*np+d]
			} else {
				xy += m[s*np+d]
			}
		}
	}
	if z == 0 {
		t.Fatal("mg: no z traffic")
	}
	if z >= xy {
		t.Errorf("mg: z traffic %d not lighter than x/y %d", z, xy)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestVolumeScalesWithIterations pins the per-iteration volume accounting
// the GB extrapolation of Table I rests on.
func TestVolumeScalesWithIterations(t *testing.T) {
	for _, name := range []string{"bt", "cg", "mg"} {
		one := traceMatrix(t, name, 16, 1)
		three := traceMatrix(t, name, 16, 3)
		var b1, b3 int64
		for i := range one {
			b1 += one[i]
			b3 += three[i]
		}
		ratio := float64(b3) / float64(b1)
		if ratio < 2.8 || ratio > 3.2 {
			t.Errorf("%s: 3-iteration volume is %.2fx the 1-iteration volume, want ~3x", name, ratio)
		}
	}
}
