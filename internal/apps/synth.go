package apps

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"hydee/internal/mpi"
)

// payloadHash is a deterministic 64-bit hash of a payload.
func payloadHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Synthetic applications used by tests, examples and the property suite.

// Ring builds a token-accumulation ring: iteration i, each rank sends its
// accumulator to (rank+1)%np and folds in the value from (rank-1+np)%np.
func Ring(iters, msgBytes int) mpi.Program {
	return func(c *mpi.Comm) error {
		np := c.Size()
		rank := c.Rank()
		next, prev := (rank+1)%np, (rank-1+np)%np
		st := newState(rank, 4)
		if _, err := c.Restore(st); err != nil {
			return err
		}
		for st.Iter < iters {
			if np > 1 {
				if err := c.SendW(next, 11, mpi.Float64sToBytes(st.slice(payloadFloats, st.Iter)), msgBytes); err != nil {
					return err
				}
				got, _, err := c.Recv(prev, 11)
				if err != nil {
					return err
				}
				in, err := mpi.BytesToFloat64s(got)
				if err != nil {
					return err
				}
				st.fold(in)
			}
			st.Iter++
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
		c.SetResult(st.digest(rank))
		return nil
	}
}

// Stencil2D builds a 4-neighbor halo-exchange iteration on a 2D torus,
// the generic pattern the paper's introduction motivates.
func Stencil2D(iters, msgBytes int) mpi.Program {
	return func(c *mpi.Comm) error {
		np := c.Size()
		rows, cols := grid2D(np)
		rank := c.Rank()
		r, col := rank/cols, rank%cols
		east := r*cols + (col+1)%cols
		west := r*cols + (col-1+cols)%cols
		south := ((r+1)%rows)*cols + col
		north := ((r-1+rows)%rows)*cols + col

		st := newState(rank, 8)
		if _, err := c.Restore(st); err != nil {
			return err
		}
		const tag = 21
		for st.Iter < iters {
			if cols > 1 {
				got, err := c.SendRecvW(east, tag, mpi.Float64sToBytes(st.slice(payloadFloats, 0)), msgBytes, west, tag)
				if err != nil {
					return err
				}
				in, err := mpi.BytesToFloat64s(got)
				if err != nil {
					return err
				}
				st.fold(in)
				got, err = c.SendRecvW(west, tag+1, mpi.Float64sToBytes(st.slice(payloadFloats, 1)), msgBytes, east, tag+1)
				if err != nil {
					return err
				}
				if in, err = mpi.BytesToFloat64s(got); err != nil {
					return err
				}
				st.fold(in)
			}
			if rows > 1 {
				got, err := c.SendRecvW(south, tag+2, mpi.Float64sToBytes(st.slice(payloadFloats, 2)), msgBytes, north, tag+2)
				if err != nil {
					return err
				}
				in, err := mpi.BytesToFloat64s(got)
				if err != nil {
					return err
				}
				st.fold(in)
				got, err = c.SendRecvW(north, tag+3, mpi.Float64sToBytes(st.slice(payloadFloats, 3)), msgBytes, south, tag+3)
				if err != nil {
					return err
				}
				if in, err = mpi.BytesToFloat64s(got); err != nil {
					return err
				}
				st.fold(in)
			}
			st.Iter++
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
		c.SetResult(st.digest(rank))
		return nil
	}
}

// MasterWorker builds the one pattern the send-deterministic model excludes
// (§II-B): rank 0 hands tasks to whichever worker answers first
// (MPI_ANY_SOURCE), so the sequence of sends depends on message arrival
// order. Used as a negative control in the determinism tests.
func MasterWorker(tasks int) mpi.Program {
	return func(c *mpi.Comm) error {
		np := c.Size()
		if np < 2 {
			return fmt.Errorf("apps: masterworker needs at least 2 ranks")
		}
		const (
			tagTask = 31
			tagDone = 32
			tagStop = 33
		)
		if c.Rank() == 0 {
			issued := 0
			// Prime one task per worker.
			for w := 1; w < np && issued < tasks; w++ {
				if err := c.Send(w, tagTask, mpi.Float64sToBytes([]float64{float64(issued)})); err != nil {
					return err
				}
				issued++
			}
			var order []int
			// Every issued task produces exactly one completion.
			for done := 0; done < tasks; done++ {
				got, stat, err := c.Recv(mpi.AnySource, tagDone)
				if err != nil {
					return err
				}
				_ = got
				order = append(order, stat.Source)
				if issued < tasks {
					if err := c.Send(stat.Source, tagTask, mpi.Float64sToBytes([]float64{float64(issued)})); err != nil {
						return err
					}
					issued++
				}
			}
			for w := 1; w < np; w++ {
				if err := c.Send(w, tagStop, nil); err != nil {
					return err
				}
			}
			c.SetResult(fmt.Sprintf("%v", order))
			return nil
		}
		var acc float64
		for {
			data, stat, err := c.Recv(0, mpi.AnyTag)
			if err != nil {
				return err
			}
			if stat.Tag == tagStop {
				break
			}
			in, err := mpi.BytesToFloat64s(data)
			if err != nil {
				return err
			}
			acc += in[0]
			if err := c.Send(0, tagDone, mpi.Float64sToBytes([]float64{acc})); err != nil {
				return err
			}
		}
		c.SetResult(acc)
		return nil
	}
}

// RandomDAG builds a seeded random—but send-deterministic—communication
// pattern for the property tests. Every rank derives the same global
// schedule from the seed: each round lists directed (src, dst) pairs. A
// receiver posts one wildcard receive per expected message and folds
// payloads commutatively, so delivery order (which genuinely varies between
// runs) cannot influence what it later sends — the defining property of
// Definition 3.
func RandomDAG(seed int64, rounds, maxFanout, msgBytes int) mpi.Program {
	return func(c *mpi.Comm) error {
		np := c.Size()
		rank := c.Rank()
		rng := rand.New(rand.NewSource(seed))
		// Global schedule: schedule[round][src] = destinations.
		sched := make([][][]int, rounds)
		for rd := range sched {
			sched[rd] = make([][]int, np)
			for src := 0; src < np; src++ {
				n := rng.Intn(maxFanout + 1)
				for k := 0; k < n; k++ {
					dst := rng.Intn(np)
					if dst != src {
						sched[rd][src] = append(sched[rd][src], dst)
					}
				}
			}
		}
		st := newState(rank, 8)
		if _, err := c.Restore(st); err != nil {
			return err
		}
		for st.Iter < rounds {
			rd := st.Iter
			// The tag encodes the round so a fast sender's next-round
			// message cannot match this round's wildcard receives.
			tag := 41_000 + rd
			// Sends first: payload depends only on the state before this
			// round's receives.
			out := mpi.Float64sToBytes(st.slice(payloadFloats, rd))
			for _, dst := range sched[rd][rank] {
				if err := c.SendW(dst, tag, out, msgBytes); err != nil {
					return err
				}
			}
			// Count expected messages and receive them in arrival order.
			expected := 0
			for src := 0; src < np; src++ {
				for _, dst := range sched[rd][src] {
					if dst == rank {
						expected++
					}
				}
			}
			// Exactly order-independent fold: uint64 wraparound addition
			// of payload hashes. Floating-point addition would leak the
			// arrival order through rounding and break send-determinism.
			var sum uint64
			for k := 0; k < expected; k++ {
				got, _, err := c.Recv(mpi.AnySource, tag)
				if err != nil {
					return err
				}
				sum += payloadHash(got)
			}
			idx := rd % len(st.V)
			st.V[idx] = float64((math.Float64bits(st.V[idx]) + sum) % (1 << 40))
			st.Iter++
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
		c.SetResult(st.digest(rank))
		return nil
	}
}
