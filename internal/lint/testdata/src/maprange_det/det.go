// Package maprange_det seeds maprange violations and the
// order-independent shapes that must pass without annotation.
package maprange_det

import (
	"fmt"
	"sort"
)

func send(m map[int]string, ch chan<- string) {
	for _, v := range m { // want `range over map m in nondeterministic order while the body sends on a channel`
		ch <- v
	}
}

func call(m map[int]string) {
	for _, v := range m { // want `range over map m in nondeterministic order while the body calls fmt.Println`
		fmt.Println(v)
	}
}

func appendValues(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `appends loop-dependent values to out declared outside the loop`
		out = append(out, v)
	}
	return out
}

// sortedKeys is the blessed idiom: collect only the keys, sort, then
// range over the slice. Neither loop may be flagged.
func sortedKeys(m map[int]string, ch chan<- string) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		ch <- m[k]
	}
}

// perKeyWrites touch a distinct slot per iteration: order-independent.
func perKeyWrites(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// localAccumulator is a commutative min: plain assignment to a
// function-local scalar stays allowed (documented soundness gap).
func localAccumulator(m map[int]int) int {
	lo := int(^uint(0) >> 1)
	for _, v := range m {
		if v < lo {
			lo = v
		}
	}
	return lo
}

// pruning deletes from the ranged map itself: delete is a builtin and
// well-defined during iteration.
func pruning(m map[int]int, cutoff int) {
	for k, v := range m {
		if v < cutoff {
			delete(m, k)
		}
	}
}

func offKeyWrite(m map[int]int, other map[int]int) {
	for _, v := range m { // want `writes other at a key that is not this loop's range key`
		other[v] = 1
	}
}

func fieldWrite(m map[int]int, s *struct{ sum int }) {
	for _, v := range m { // want `mutates s.sum, state declared outside the loop`
		s.sum += v
	}
}

// annotated shows the escape hatch for a genuinely order-independent
// effect the analyzer cannot prove.
func annotated(m map[int]chan struct{}) {
	//hydee:allow maprange(non-blocking nudge; delivery order immaterial)
	for _, ch := range m {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}
