// Package wallclock_det seeds wallclock violations: the "_det" name
// suffix opts the package into the deterministic set (see
// lint.deterministicPkg).
package wallclock_det

import (
	"math/rand"
	"time"
)

const tick = 2 * time.Millisecond // constants are arithmetic, not clock reads

func clockReads() time.Duration {
	start := time.Now()      // want `time.Now reads the wall clock`
	time.Sleep(tick)         // want `time.Sleep reads the wall clock`
	<-time.After(tick)       // want `time.After reads the wall clock`
	t := time.NewTimer(tick) // want `time.NewTimer reads the wall clock`
	defer t.Stop()           // methods on a timer are fine
	return time.Since(start) // want `time.Since reads the wall clock`
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `math/rand.Shuffle draws from the global rand source`
	return rand.Intn(10)               // want `math/rand.Intn draws from the global rand source`
}

// seededRand is the allowed construction: deterministic by seed, the
// idiom internal/graph and internal/apps use for workloads.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// allowedProbe shows the escape hatch: a wall-clock liveness knob with
// no virtual-time effect.
func allowedProbe() {
	//hydee:allow wallclock(liveness probe; fires only at quiescence)
	time.Sleep(tick)
	time.Sleep(tick) //hydee:allow wallclock(same-line suppression form)
}

// emptyReason does not suppress: the annotation grammar requires one.
func emptyReason() {
	//hydee:allow wallclock()
	time.Sleep(tick) // want `time.Sleep reads the wall clock`
}
