// Package wallclock_free is host-plane code (no "_det" suffix): the
// wallclock analyzer must stay silent here — cmd binaries and the HTTP
// server keep their wall clock.
package wallclock_free

import (
	"math/rand"
	"time"
)

func wall() time.Time {
	rand.Seed(42)
	time.Sleep(time.Millisecond)
	return time.Now()
}
