// Package selectorder_det seeds selectorder violations.
package selectorder_det

func race(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func threeWay(a, b chan int, done chan struct{}) int {
	select { // want `select with 3 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	case <-done:
		return 0
	}
}

// nonBlocking is one comm case plus default: readiness alone decides.
func nonBlocking(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return -1
	}
}

// annotated drain: either order empties both channels before returning,
// so the outcome is order-independent.
func annotated(evs chan int, done chan struct{}) {
	for {
		//hydee:allow selectorder(drain loop; stray events are discarded either way)
		select {
		case <-evs:
		case <-done:
			return
		}
	}
}
