// Package lockdiscipline_det seeds *Locked discipline violations. The
// analyzer runs in every package; the _det suffix just keeps the
// testdata layout uniform.
package lockdiscipline_det

import "sync"

type box struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	val int
}

// selfDeadlock acquires the receiver's own mutex inside a *Locked
// method: with the caller already holding it, this blocks forever.
func (b *box) selfDeadlockLocked() {
	b.mu.Lock() // want `Lock acquires b.mu inside selfDeadlockLocked`
	b.val++
	b.mu.Unlock()
}

func (b *box) rlockLocked() int {
	b.rw.RLock() // want `RLock acquires b.rw inside rlockLocked`
	defer b.rw.RUnlock()
	return b.val
}

func (b *box) bumpLocked() { b.val++ }

// naked calls a *Locked helper with no lock in sight.
func (b *box) naked() {
	b.bumpLocked() // want `bumpLocked is called without a mutex visibly held`
}

// held acquires first: allowed.
func (b *box) held() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bumpLocked()
}

// chained *Locked callers are allowed: the promise propagates.
func (b *box) chainLocked() {
	b.bumpLocked()
}

// goroutine bodies do not inherit the caller's lock.
func (b *box) leaky() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.bumpLocked() // want `bumpLocked is called without a mutex visibly held`
	}()
}

// closureHeld locks inside the literal itself: allowed.
func (b *box) closureHeld() func() {
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.bumpLocked()
	}
}

// annotated documents a scheme the analyzer cannot see (e.g. the lock
// is taken by a wrapper generated elsewhere).
func (b *box) external() {
	//hydee:allow lockdiscipline(lock held by caller via runWith wrapper)
	b.bumpLocked()
}
