package lint

import (
	"go/ast"
	"go/types"

	"hydee/internal/lint/analysis"
)

// Wallclock forbids reading the wall clock or the global math/rand
// source inside the virtual-time plane. Everything observable there must
// be a pure function of virtual time: a time.Now() or an unseeded
// rand.Intn() in an event-emitting path makes two runs of the same
// experiment diverge. Explicitly seeded generators
// (rand.New(rand.NewSource(seed))) stay allowed — they are deterministic
// by construction and are how internal/graph and internal/apps build
// reproducible workloads.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now/Since/Sleep/After/timers) and global math/rand " +
		"functions in deterministic packages; seeded rand.New(rand.NewSource(...)) is allowed",
	Run: runWallclock,
}

// bannedTime is the wall-clock surface of package time: functions that
// read the clock or schedule against it. Conversions and constants
// (time.Duration, time.Millisecond) are fine — they are arithmetic, not
// clock reads.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandOK is the allowed subset of math/rand (and rand/v2)
// package-level functions: constructors for explicitly seeded
// generators. Every other package-level function draws from the global
// source, which is seeded nondeterministically.
var seededRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 seeded constructors
}

func runWallclock(pass *analysis.Pass) (interface{}, error) {
	if !deterministicPkg(pass) {
		return nil, nil
	}
	allow := buildAllowlist(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods (timer.Stop, rng.Intn) are fine
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] && !allow.allowed(pass.Fset, sel.Pos(), "wallclock") {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock: forbidden in deterministic package %s; "+
						"use virtual time, or annotate //hydee:allow wallclock(reason)", fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandOK[fn.Name()] && !allow.allowed(pass.Fset, sel.Pos(), "wallclock") {
					pass.Reportf(sel.Pos(), "%s.%s draws from the global rand source: forbidden in deterministic package %s; "+
						"use rand.New(rand.NewSource(seed)), or annotate //hydee:allow wallclock(reason)",
						fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil, nil
}
