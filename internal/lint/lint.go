// Package lint implements hydee's determinism analyzers: the invariants
// DESIGN.md states in prose — no wall clock in the virtual-time plane,
// sorted iteration where map order could leak into emitted events, the
// *Locked mutex discipline, and no order-sensitive multi-case selects —
// encoded as static checks so a violation fails `make lint` instead of
// flaking (or worse, not flaking) in the run-it-twice determinism gate.
//
// The analyzers are written against internal/lint/analysis, a
// self-contained mirror of golang.org/x/tools/go/analysis, and run via
// cmd/hydee-lint.
//
// # Suppressions
//
// Every analyzer honors the annotation
//
//	//hydee:allow <analyzer>(<reason>)
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory — an empty reason does not suppress — and should say why
// the invariant holds anyway (e.g. a wall-clock timer that is a liveness
// knob with no virtual-time effect). One annotation suppresses one
// analyzer on one line; repeat the comment to suppress several.
package lint

import (
	"go/token"
	"regexp"
	"strings"

	"hydee/internal/lint/analysis"
)

// Analyzers returns the full hydee suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Wallclock, Maprange, Lockdiscipline, Selectorder}
}

// deterministicPkgs is the virtual-time plane: packages whose outputs
// must be byte-reproducible run to run. The wallclock, maprange and
// selectorder analyzers only fire here; host-plane code (cmd binaries,
// the HTTP server, the harness worker pool) keeps its wall clock.
var deterministicPkgs = map[string]bool{
	"hydee":                     true, // engine root: Run, exporters, failure specs
	"hydee/internal/transport":  true,
	"hydee/internal/mpi":        true,
	"hydee/internal/core":       true,
	"hydee/internal/vtime":      true,
	"hydee/internal/netmodel":   true,
	"hydee/internal/checkpoint": true,
	"hydee/internal/erasure":    true, // pure codec: no clocks, no maps, no rand
	"hydee/internal/graph":      true, // workload generation: seeded rand only
	"hydee/internal/apps":       true,
}

// deterministicPkg reports whether the pass's package is in the
// virtual-time plane. Testdata packages opt in by naming themselves with
// a "_det" suffix — they load with no module context, so their path is
// their package name (see load.Dir).
func deterministicPkg(pass *analysis.Pass) bool {
	return deterministicPkgs[pass.Pkg.Path()] || strings.HasSuffix(pass.Pkg.Path(), "_det")
}

// allowRe matches one suppression: //hydee:allow name(reason). The
// reason group deliberately requires at least one character.
var allowRe = regexp.MustCompile(`^//hydee:allow\s+([A-Za-z]+)\(\s*(.+?)\s*\)\s*$`)

// allowlist indexes every //hydee:allow annotation in a pass:
// filename -> line -> analyzer names suppressed on that line.
type allowlist map[string]map[int][]string

func buildAllowlist(pass *analysis.Pass) allowlist {
	idx := allowlist{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], m[1])
			}
		}
	}
	return idx
}

// allowed reports whether a finding of the named analyzer at pos is
// suppressed by an annotation on the same line or the line above.
func (a allowlist) allowed(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	byLine := a[p.Filename]
	if byLine == nil {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		for _, n := range byLine[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}
