// Package load turns Go package patterns into parsed, type-checked
// packages for the lint analyzers — a minimal, offline-friendly stand-in
// for golang.org/x/tools/go/packages.
//
// Dependencies are never type-checked from source: the loader shells out
// to `go list -export`, which compiles each dependency (standard library
// included) into the local build cache and reports the export-data file,
// and the stock go/importer reads those files back. Only the packages
// under analysis are parsed, so the loader needs nothing beyond the Go
// toolchain already required to build the repo.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path; for packages loaded with Dir it is
	// the package name instead (there is no module context).
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// exportCache maps import paths to export-data files discovered by prior
// `go list -export` runs; shared so repeated Dir calls (analysistest)
// resolve the standard library once.
var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

// goList runs `go list -export -deps -json` on args and records every
// reported export file in the cache, returning the listed packages.
func goList(dir string, args []string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-deps", "-json", "--"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export %v: %v\n%s", args, err, stderr.Bytes())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listedPkg
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -export: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list -export: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	exportMu.Lock()
	for _, p := range pkgs {
		if p.Export != "" {
			exportCache[p.ImportPath] = p.Export
		}
	}
	exportMu.Unlock()
	return pkgs, nil
}

// newImporter returns an importer resolving every import from the
// export-data files the cache knows about.
func newImporter(fset *token.FileSet) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		exportMu.Lock()
		file := exportCache[path]
		exportMu.Unlock()
		if file == "" {
			return nil, fmt.Errorf("no export data for %q (not listed by go list -export)", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Packages loads the module packages matching patterns (e.g. "./...")
// rooted at dir ("" means the current directory). Test files are not
// loaded: the determinism invariants guard the virtual-time plane, and
// tests are host-plane code by definition.
func Packages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newImporter(fset)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := check(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		out = append(out, &Package{PkgPath: lp.ImportPath, Fset: fset, Files: files, Types: pkg, TypesInfo: info})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// Dir loads the single package in dir (testdata layout: no module
// membership, standard-library imports only). The package's PkgPath is
// its package name, which is how testdata opts into the deterministic
// set (see lint.deterministicPkg).
func Dir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			if path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	var missing []string
	exportMu.Lock()
	for path := range importSet {
		if exportCache[path] == "" {
			missing = append(missing, path)
		}
	}
	exportMu.Unlock()
	if len(missing) > 0 {
		sort.Strings(missing)
		if _, err := goList(dir, missing); err != nil {
			return nil, err
		}
	}
	name := files[0].Name.Name
	pkg, info, err := check(fset, newImporter(fset), name, files)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{PkgPath: name, Fset: fset, Files: files, Types: pkg, TypesInfo: info}, nil
}

func check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := newInfo()
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
