package lint_test

import (
	"testing"

	"hydee/internal/lint"
	"hydee/internal/lint/analysistest"
)

func TestSelectorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Selectorder, "selectorder_det")
}
