// Package analysis is a self-contained mirror of the public surface of
// golang.org/x/tools/go/analysis that hydee's analyzers are written
// against. The repo builds with zero module dependencies so lint runs on
// fully offline checkouts (x/tools is not vendored and cannot be
// fetched); analyzers written against this shim port to the real
// go/analysis API by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: a named invariant plus the function
// that checks a single package for violations of it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hydee:allow annotations. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description printed by `hydee-lint -help`.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an error only for internal failures (a
	// clean package returns (nil, nil)).
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer run and the driver: a
// single type-checked package plus the Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver sets it; analyzers
	// call it (usually through Reportf).
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}
