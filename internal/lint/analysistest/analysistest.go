// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source —
// the same contract as golang.org/x/tools/go/analysis/analysistest,
// reimplemented over internal/lint/load so it works with zero module
// dependencies.
//
// Expectations are trailing comments of the form
//
//	code // want `regexp`
//
// one or more backquoted (or double-quoted) regexps per comment, each of
// which must match a diagnostic reported on that line. Every diagnostic
// must be matched by some expectation and vice versa.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hydee/internal/lint/analysis"
	"hydee/internal/lint/load"
)

// TestData returns the canonical testdata directory for the calling
// test's package: ./testdata relative to the working directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each named package from testdata/src/<name>, applies the
// analyzer, and reports mismatches between its diagnostics and the
// packages' `// want` comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := load.Dir(dir)
		if err != nil {
			t.Errorf("loading %s: %v", dir, err)
			continue
		}
		wants, err := collectWants(pkg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d analysis.Diagnostic) {
			p := pkg.Fset.Position(d.Pos)
			for _, w := range wants {
				if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
					w.matched = true
					return
				}
			}
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: running %s: %v", name, a.Name, err)
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			}
		}
	}
}

// collectWants parses every `// want` comment in the package.
func collectWants(pkg *load.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns extracts the quoted regexps from the text after "want".
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` in want comment")
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			rest := s[1:]
			end := strings.IndexByte(rest, '"')
			if end < 0 {
				return nil, fmt.Errorf(`unterminated " in want comment`)
			}
			p, err := strconv.Unquote(s[:end+2])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want comment must hold backquoted or quoted regexps, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
