package lint_test

import (
	"testing"

	"hydee/internal/lint"
	"hydee/internal/lint/analysistest"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Maprange, "maprange_det")
}
