package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hydee/internal/lint/analysis"
)

// Lockdiscipline enforces the *Locked naming convention used by
// internal/transport (and any package that adopts it): a function whose
// name ends in "Locked" documents that its caller already holds the
// mutex. Two rules follow:
//
//  1. a *Locked method must not acquire its own receiver's mutex — that
//     is a self-deadlock with sync.Mutex and a latent one with RWMutex;
//  2. a call to a *Locked function is only legal from another *Locked
//     function, or from a function that visibly acquires a mutex
//     (mu.Lock/mu.RLock) before the call.
//
// Rule 2 is deliberately approximate: it checks that *some* lock is
// held in the enclosing function, not that it is the right one, because
// relating a callee's receiver to the caller's mutex expression is
// aliasing analysis (transport endpoints share their Network's dmu via
// sync.NewCond(&n.dmu)). The convention plus "a lock is held" catches
// the mistakes refactors actually make: calling a *Locked helper from a
// fresh code path with no lock in sight.
var Lockdiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "*Locked functions must not acquire their receiver's mutex and must only be called " +
		"with a mutex visibly held (or from another *Locked function)",
	Run: runLockdiscipline,
}

func runLockdiscipline(pass *analysis.Pass) (interface{}, error) {
	allow := buildAllowlist(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				checkSelfAcquire(pass, allow, fd)
			}
			checkLockedCalls(pass, allow, fd)
		}
	}
	return nil, nil
}

// checkSelfAcquire flags mu.Lock()/mu.RLock() inside a *Locked method
// when the mutex expression is rooted at the method's receiver.
func checkSelfAcquire(pass *analysis.Pass, allow allowlist, fd *ast.FuncDecl) {
	recv := receiverObj(pass, fd)
	if recv == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure runs on its own schedule
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, kind := mutexAcquire(pass, call)
		if sel == nil {
			return true
		}
		if rootObj(pass, sel.X) != recv {
			return true
		}
		if !allow.allowed(pass.Fset, call.Pos(), "lockdiscipline") {
			pass.Reportf(call.Pos(), "%s acquires %s inside %s: the *Locked suffix promises the caller "+
				"already holds it (self-deadlock); annotate //hydee:allow lockdiscipline(reason) if intentional",
				kind, render(sel.X), fd.Name.Name)
		}
		return true
	})
}

// checkLockedCalls flags calls to *Locked functions from enclosing
// functions that neither end in Locked nor acquire any mutex before the
// call site.
func checkLockedCalls(pass *analysis.Pass, allow allowlist, fd *ast.FuncDecl) {
	callerLocked := strings.HasSuffix(fd.Name.Name, "Locked")
	// Scopes tracks the innermost function body: fd.Body, or a FuncLit's.
	var visit func(body ast.Node, lockedScope bool)
	visit = func(body ast.Node, lockedScope bool) {
		var acquires []token.Pos // positions of mu.Lock/mu.RLock in this scope
		if !lockedScope {
			ast.Inspect(body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if sel, _ := mutexAcquire(pass, call); sel != nil {
						acquires = append(acquires, call.Pos())
					}
				}
				return true
			})
		}
		lockHeldBefore := func(pos token.Pos) bool {
			for _, p := range acquires {
				if p < pos {
					return true
				}
			}
			return false
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				// A function literal does not inherit the caller's lock:
				// by the time it runs the lock may be long released.
				visit(lit.Body, false)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeName(pass, call)
			if callee == "" || !strings.HasSuffix(callee, "Locked") {
				return true
			}
			if lockedScope || lockHeldBefore(call.Pos()) {
				return true
			}
			if !allow.allowed(pass.Fset, call.Pos(), "lockdiscipline") {
				pass.Reportf(call.Pos(), "%s is called without a mutex visibly held: *Locked functions require "+
					"the caller to hold the lock (acquire it first, rename the callee, or annotate "+
					"//hydee:allow lockdiscipline(reason))", callee)
			}
			return true
		})
	}
	visit(fd.Body, callerLocked)
}

// mutexAcquire recognizes calls of the form expr.Lock() / expr.RLock()
// where the method belongs to sync.Mutex or sync.RWMutex (directly or by
// embedding), returning the selector and the method name.
func mutexAcquire(pass *analysis.Pass, call *ast.CallExpr) (*ast.SelectorExpr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return nil, ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	return sel, sel.Sel.Name
}

// calleeName returns the bare name of a called function or method, ""
// when the callee is not a simple identifier/selector.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fun.Name
		}
	case *ast.SelectorExpr:
		if _, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fun.Sel.Name
		}
	}
	return ""
}

// receiverObj returns the object of fd's receiver variable, nil for
// plain functions or anonymous receivers.
func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}
