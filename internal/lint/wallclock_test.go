package lint_test

import (
	"testing"

	"hydee/internal/lint"
	"hydee/internal/lint/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Wallclock, "wallclock_det")
}

// TestWallclockHostPlane asserts the analyzer is silent outside the
// deterministic set: the testdata package has wall-clock reads and no
// want comments.
func TestWallclockHostPlane(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Wallclock, "wallclock_free")
}
