package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hydee/internal/lint/analysis"
)

// Maprange flags `for ... range` over a map in deterministic packages
// when the loop body's effects could depend on Go's randomized iteration
// order: channel sends, calls (which may emit events or mutate plane
// state), appends of loop-dependent values to state declared outside the
// loop, and writes to outer state that are not per-key slots.
//
// Order-independent shapes pass without annotation:
//   - the sorted-keys idiom's collection half — a body that only appends
//     the range *key* to an outer slice (sorted before use);
//   - per-key writes, m2[k] = ... keyed by the loop's own range key
//     (each iteration touches a distinct slot);
//   - reads, builtin calls (len, delete, ...), and plain assignments to
//     function-local scalars (commutative accumulators like min/max —
//     a documented soundness gap, see DESIGN.md).
var Maprange = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag range-over-map loops in deterministic packages whose body sends, calls, or " +
		"mutates outer state (map order is randomized); iterate sorted keys or annotate",
	Run: runMaprange,
}

func runMaprange(pass *analysis.Pass) (interface{}, error) {
	if !deterministicPkg(pass) {
		return nil, nil
	}
	allow := buildAllowlist(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if allow.allowed(pass.Fset, rs.Pos(), "maprange") {
				return true // nested loops are still visited independently
			}
			if why := mapLoopViolation(pass, rs); why != "" {
				pass.Reportf(rs.Pos(), "range over map %s in nondeterministic order while the body %s; "+
					"iterate sorted keys instead, or annotate //hydee:allow maprange(reason)",
					render(rs.X), why)
			}
			return true
		})
	}
	return nil, nil
}

// mapLoopViolation walks the loop body and returns a description of the
// first order-sensitive effect, or "" if the body is order-independent
// under the analyzer's rules.
func mapLoopViolation(pass *analysis.Pass, rs *ast.RangeStmt) string {
	keyObj := rangeVarObj(pass, rs.Key)
	why := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			why = "sends on a channel"
		case *ast.GoStmt:
			why = "starts a goroutine"
		case *ast.DeferStmt:
			why = "defers a call"
		case *ast.CallExpr:
			if name, bad := callViolation(pass, n); bad {
				why = fmt.Sprintf("calls %s, which may emit events or mutate plane state", name)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if w := writeViolation(pass, rs, keyObj, lhs, rhs); w != "" {
					why = w
					break
				}
			}
		case *ast.IncDecStmt:
			why = writeViolation(pass, rs, keyObj, n.X, nil)
		}
		return why == ""
	})
	return why
}

// allowedBuiltins are side-effect-shaped builtins whose use inside a
// range-over-map stays order-independent (append is handled separately
// through the assignment it feeds).
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "delete": true, "make": true, "new": true,
	"min": true, "max": true, "copy": true, "clear": true, "append": true,
	"real": true, "imag": true, "complex": true, "panic": true,
	"print": true, "println": true,
}

// callViolation reports whether call is a non-builtin, non-conversion
// call, returning its rendered name.
func callViolation(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return "", false // type conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return "", !allowedBuiltins[b.Name()]
		}
	}
	return render(call.Fun), true
}

// writeViolation classifies one assignment target inside the loop body.
// rhs is the paired right-hand side when the assignment is 1:1 (used to
// recognize append).
func writeViolation(pass *analysis.Pass, rs *ast.RangeStmt, keyObj types.Object, lhs, rhs ast.Expr) string {
	lhs = ast.Unparen(lhs)
	root := rootObj(pass, lhs)
	if root == nil || declaredWithin(root, rs) {
		return "" // loop-local target (includes the range variables)
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass, call, "append") {
		for _, arg := range call.Args[1:] {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok || keyObj == nil || pass.TypesInfo.Uses[id] != keyObj {
				return fmt.Sprintf("appends loop-dependent values to %s declared outside the loop "+
					"(append only the range key and sort, the sorted-keys idiom)", render(lhs))
			}
		}
		return "" // sorted-keys idiom: collecting the keys
	}
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if root.Parent() == pass.Pkg.Scope() {
			return fmt.Sprintf("writes package-level variable %s", lhs.Name)
		}
		return "" // plain local accumulator (commutative by convention)
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(lhs.Index).(*ast.Ident); ok && keyObj != nil && pass.TypesInfo.Uses[id] == keyObj {
			return "" // per-key slot: each iteration writes a distinct key
		}
		return fmt.Sprintf("writes %s at a key that is not this loop's range key", render(lhs.X))
	default: // field or pointer write through an outer variable
		return fmt.Sprintf("mutates %s, state declared outside the loop", render(lhs))
	}
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// rangeVarObj resolves a range clause variable (key or value) to its
// object; nil for `_`, absent, or non-identifier clauses.
func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// rootObj walks to the leftmost identifier of an lvalue (x in
// x.f[i].g) and returns its object.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[v]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the range
// statement (loop-local variables, including the range clause's own).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() != token.NoPos && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
}
