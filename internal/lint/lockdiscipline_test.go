package lint_test

import (
	"testing"

	"hydee/internal/lint"
	"hydee/internal/lint/analysistest"
)

func TestLockdiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Lockdiscipline, "lockdiscipline_det")
}
