package lint

import (
	"go/ast"
	"go/types"

	"hydee/internal/lint/analysis"
)

// Selectorder flags select statements with two or more communication
// cases in deterministic packages: when several cases are ready, Go
// picks one pseudo-randomly, so anything observable that depends on the
// choice differs run to run. A single case plus `default` is fine (the
// choice is determined by readiness alone). Selects whose outcome is
// genuinely order-independent — drain loops that discard either way,
// non-blocking nudges — carry a //hydee:allow selectorder(reason)
// annotation saying why.
var Selectorder = &analysis.Analyzer{
	Name: "selectorder",
	Doc: "flag multi-case selects in deterministic packages (ready-case choice is randomized); " +
		"annotate //hydee:allow selectorder(reason) when the outcome is order-independent",
	Run: runSelectorder,
}

func runSelectorder(pass *analysis.Pass) (interface{}, error) {
	if !deterministicPkg(pass) {
		return nil, nil
	}
	allow := buildAllowlist(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			comm := 0
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 && !allow.allowed(pass.Fset, sel.Pos(), "selectorder") {
				pass.Reportf(sel.Pos(), "select with %d communication cases: Go chooses among ready cases "+
					"pseudo-randomly; restructure, or annotate //hydee:allow selectorder(reason) stating why "+
					"the outcome is order-independent", comm)
			}
			return true
		})
	}
	return nil, nil
}

// render prints an expression for diagnostics.
func render(e ast.Expr) string { return types.ExprString(e) }
