package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138089935299395) > 1e-12 {
		t.Fatalf("stddev %v", got)
	}
}

func TestNormalizeAndPct(t *testing.T) {
	out := Normalize([]float64{2, 4}, 2)
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("normalize %v", out)
	}
	if got := PctOver(1.05, 1.0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("pct %v", got)
	}
	if PctOver(1, 0) != 0 {
		t.Fatal("zero base should yield 0")
	}
}

func TestMaxInt(t *testing.T) {
	if MaxInt(nil) != 0 || MaxInt([]int{-5, -2, -9}) != -2 {
		t.Fatal("MaxInt wrong")
	}
}

// Property: mean is within [min, max] of its inputs.
func TestMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			// Skip inputs whose running sum could overflow.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		m := Mean(xs)
		return m >= lo-1e-9*math.Abs(lo)-1e-9 && m <= hi+1e-9*math.Abs(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
