// Package stats provides the small statistical helpers the experiment
// harness uses when aggregating runs.
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Normalize divides each element by base; base must be nonzero.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// PctOver reports the percentage by which x exceeds base ((x/base-1)*100).
func PctOver(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (x/base - 1) * 100
}

// MaxInt returns the largest value in xs (0 for empty input).
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}
