package failure

import (
	"testing"

	"hydee/internal/vtime"
)

func TestTriggerAtVT(t *testing.T) {
	in := NewInjector(NewSchedule(Event{
		Ranks: []int{2},
		When:  Trigger{AtVT: vtime.Time(100)},
	}))
	if got := in.Due(2, Progress{VT: 99}); got != nil {
		t.Fatalf("fired early: %v", got)
	}
	if got := in.Due(1, Progress{VT: 1000}); got != nil {
		t.Fatal("fired for the wrong rank")
	}
	got := in.Due(2, Progress{VT: 100})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("due: %v", got)
	}
	// Fires only once.
	if got := in.Due(2, Progress{VT: 200}); got != nil {
		t.Fatal("fired twice")
	}
	if !in.AllFired() {
		t.Fatal("AllFired false")
	}
}

func TestTriggerAfterSends(t *testing.T) {
	in := NewInjector(NewSchedule(Event{
		Ranks: []int{0, 5},
		When:  Trigger{AfterSends: 3},
	}))
	if in.Due(0, Progress{Sends: 2}) != nil {
		t.Fatal("fired early")
	}
	got := in.Due(0, Progress{Sends: 3})
	if len(got) != 2 || got[1] != 5 {
		t.Fatalf("multi-rank event wrong: %v", got)
	}
}

func TestTriggerAfterCheckpoints(t *testing.T) {
	in := NewInjector(NewSchedule(Event{
		Ranks: []int{1},
		When:  Trigger{AfterCheckpoints: 2},
	}))
	if in.Due(1, Progress{Checkpoints: 1}) != nil {
		t.Fatal("fired early")
	}
	if in.Due(1, Progress{Checkpoints: 2}) == nil {
		t.Fatal("did not fire")
	}
}

func TestMultipleEventsIndependent(t *testing.T) {
	in := NewInjector(NewSchedule(
		Event{Ranks: []int{0}, When: Trigger{AfterSends: 1}},
		Event{Ranks: []int{1}, When: Trigger{AfterSends: 1}},
	))
	if in.Remaining() != 2 {
		t.Fatalf("remaining %d", in.Remaining())
	}
	if in.Due(0, Progress{Sends: 1}) == nil {
		t.Fatal("event 0 did not fire")
	}
	if in.Remaining() != 1 {
		t.Fatalf("remaining %d after one", in.Remaining())
	}
	if in.Due(1, Progress{Sends: 5}) == nil {
		t.Fatal("event 1 did not fire")
	}
	if !in.AllFired() {
		t.Fatal("AllFired false")
	}
}

func TestNilScheduleNeverFires(t *testing.T) {
	in := NewInjector(nil)
	if in.Due(0, Progress{VT: 1 << 60, Sends: 1 << 40}) != nil {
		t.Fatal("nil schedule fired")
	}
	if !in.AllFired() {
		t.Fatal("empty injector should report all fired")
	}
}

func TestEmptyTriggerNeverFires(t *testing.T) {
	in := NewInjector(NewSchedule(Event{Ranks: []int{0}}))
	if in.Due(0, Progress{VT: 1 << 60, Sends: 1 << 40, Checkpoints: 1 << 30}) != nil {
		t.Fatal("empty trigger fired")
	}
}
