// Package failure injects fail-stop process failures into a run.
//
// The paper assumes a fail-stop failure model with multiple concurrent
// failures (§II-A). A Schedule is a list of Events; each event names the
// process(es) that die together and the condition under which the event
// fires. Conditions are evaluated at the victims' own interaction points
// with the runtime (sends, receives, checkpoint calls), which makes the
// injection deterministic with respect to virtual time and operation counts.
package failure

import (
	"fmt"
	"sync"

	"hydee/internal/vtime"
)

// Trigger describes when an event fires, evaluated against the first listed
// victim's progress. Exactly one field should be set.
type Trigger struct {
	// AtVT fires once the victim's virtual clock reaches this time.
	AtVT vtime.Time
	// AfterSends fires once the victim has posted this many application
	// sends.
	AfterSends int64
	// AfterCheckpoints fires once the victim has completed this many
	// checkpoints.
	AfterCheckpoints int
}

// Event is one (possibly multi-process) concurrent failure.
type Event struct {
	// Ranks lists the processes that fail together. With a clustered
	// protocol, killing one process rolls back its whole cluster; listing
	// ranks from different clusters exercises multiple concurrent cluster
	// failures.
	Ranks []int
	When  Trigger
}

// Schedule is an ordered list of failure events.
type Schedule struct {
	Events []Event
}

// NewSchedule builds a schedule from events.
func NewSchedule(events ...Event) *Schedule {
	return &Schedule{Events: events}
}

// Validate reports whether every event is well formed for a run of np
// ranks: at least one victim, victims within [0, np), and exactly one
// positive trigger condition. The runtime validates eagerly at
// configuration time — a mistyped rank or an empty trigger would
// otherwise just never fire and silently produce a failure-free run.
func (s *Schedule) Validate(np int) error {
	for i, ev := range s.Events {
		if len(ev.Ranks) == 0 {
			return fmt.Errorf("failure: event %d: no victim ranks", i)
		}
		for _, r := range ev.Ranks {
			if r < 0 || r >= np {
				return fmt.Errorf("failure: event %d: victim rank %d outside [0,%d)", i, r, np)
			}
		}
		if err := ev.When.Validate(); err != nil {
			return fmt.Errorf("failure: event %d: %w", i, err)
		}
	}
	return nil
}

// Validate reports whether exactly one trigger condition is set with a
// positive value.
func (t Trigger) Validate() error {
	set := 0
	if t.AtVT != 0 {
		if t.AtVT < 0 {
			return fmt.Errorf("failure: AtVT must be positive, got %v", t.AtVT)
		}
		set++
	}
	if t.AfterSends != 0 {
		if t.AfterSends < 0 {
			return fmt.Errorf("failure: AfterSends must be positive, got %d", t.AfterSends)
		}
		set++
	}
	if t.AfterCheckpoints != 0 {
		if t.AfterCheckpoints < 0 {
			return fmt.Errorf("failure: AfterCheckpoints must be positive, got %d", t.AfterCheckpoints)
		}
		set++
	}
	if set == 0 {
		return fmt.Errorf("failure: trigger sets no condition (want exactly one of AtVT, AfterSends, AfterCheckpoints)")
	}
	if set > 1 {
		return fmt.Errorf("failure: trigger sets %d conditions (want exactly one of AtVT, AfterSends, AfterCheckpoints)", set)
	}
	return nil
}

// Injector tracks progress and decides when a process must die. It is safe
// for concurrent use by all process goroutines.
type Injector struct {
	mu     sync.Mutex
	events []Event
	fired  []bool
}

// NewInjector compiles a schedule. A nil schedule yields an injector that
// never fires.
func NewInjector(s *Schedule) *Injector {
	if s == nil {
		return &Injector{}
	}
	return &Injector{
		events: append([]Event(nil), s.Events...),
		fired:  make([]bool, len(s.Events)),
	}
}

// Progress is the victim-side state a trigger is evaluated against.
type Progress struct {
	VT          vtime.Time
	Sends       int64
	Checkpoints int
}

// Due reports, for the process `rank` at the given progress, the ranks that
// must be killed now (including rank itself). It returns nil if no event
// fires. An event fires at most once, when its first victim reaches the
// trigger.
func (in *Injector) Due(rank int, p Progress) []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, ev := range in.events {
		if in.fired[i] || len(ev.Ranks) == 0 || ev.Ranks[0] != rank {
			continue
		}
		t := ev.When
		hit := false
		switch {
		case t.AtVT > 0:
			hit = p.VT >= t.AtVT
		case t.AfterSends > 0:
			hit = p.Sends >= t.AfterSends
		case t.AfterCheckpoints > 0:
			hit = p.Checkpoints >= t.AfterCheckpoints
		}
		if hit {
			in.fired[i] = true
			return append([]int(nil), ev.Ranks...)
		}
	}
	return nil
}

// Remaining reports how many events have not fired yet.
func (in *Injector) Remaining() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.fired {
		if !f {
			n++
		}
	}
	return n
}

// AllFired reports whether every scheduled event has fired.
func (in *Injector) AllFired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.fired {
		if !f {
			return false
		}
	}
	return true
}
