package graph

import (
	"math"
	"testing"
	"testing/quick"
)

// torus2D builds a rows x cols torus with the given x/y edge weights.
func torus2D(rows, cols int, wx, wy float64) *Graph {
	g := New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 {
				g.AddTraffic(at(r, c), at(r, (c+1)%cols), wx)
			}
			if rows > 1 {
				g.AddTraffic(at(r, c), at((r+1)%rows, c), wy)
			}
		}
	}
	return g
}

func TestCutFractionHandGraph(t *testing.T) {
	// Two triangles joined by one edge.
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		g.AddTraffic(e[0], e[1], 10)
	}
	g.AddTraffic(2, 3, 5)
	assign := []int{0, 0, 0, 1, 1, 1}
	if got := g.CutFraction(assign); math.Abs(got-5.0/65.0) > 1e-12 {
		t.Fatalf("cut fraction %v, want %v", got, 5.0/65.0)
	}
	if got := g.CutBytes(assign); got != 5 {
		t.Fatalf("cut bytes %v", got)
	}
}

func TestExpectedRollback(t *testing.T) {
	// Paper Table I arithmetic: 16 clusters of 16 on 256 -> 6.25%;
	// 2 of 128 -> 50%; 4 of 64 -> 25%; 8 of 32 -> 12.5%.
	cases := []struct {
		k, n int
		want float64
	}{
		{16, 256, 0.0625},
		{2, 256, 0.5},
		{4, 256, 0.25},
		{8, 256, 0.125},
	}
	for _, c := range cases {
		assign := make([]int, c.n)
		for i := range assign {
			assign[i] = i % c.k
		}
		if got := ExpectedRollback(assign, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("k=%d: got %v want %v", c.k, got, c.want)
		}
	}
}

func TestNormalizeAndSizes(t *testing.T) {
	assign := []int{7, 7, 3, 3, 3, 9}
	k := Normalize(assign)
	if k != 3 {
		t.Fatalf("k=%d", k)
	}
	want := []int{0, 0, 1, 1, 1, 2}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("normalize: %v", assign)
		}
	}
	sizes := ClusterSizes(assign)
	if sizes[0] != 2 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("sizes: %v", sizes)
	}
}

func TestPartitionerFindsRowStripes(t *testing.T) {
	// Row traffic 5x the column traffic on a 8x8 torus: row stripes are
	// clearly optimal; a 4-way partition should cut only column edges.
	g := torus2D(8, 8, 50, 10)
	opt := DefaultOptions()
	opt.CandidateK = []int{4}
	opt.Restarts = 8
	res := Cluster(g, opt)
	assign := res.Assign
	if res.K != 4 {
		t.Fatalf("k=%d", res.K)
	}
	cut := g.CutFraction(assign)
	// Ideal 2-row stripes: cut = half of column traffic = (1/6)*... total
	// row weight 64*50, col weight 64*10; stripes of 2 cut all stripe
	// boundaries = 64 col edges of... 8 rows in stripes of 2 -> every
	// rank has one cut col edge = 64*10/2... accept anything close to the
	// ideal 1/6*...: compute ideal directly.
	ideal := 64.0 * 10 / 2 / g.Total // half the col edges cross
	if cut > ideal*1.3 {
		t.Fatalf("cut %.4f far above ideal %.4f", cut, ideal)
	}
	// Every cluster must be a full pair of rows for the ideal cut.
	if ExpectedRollback(assign, 64) != 0.25 {
		t.Fatalf("unbalanced stripes: %v", ClusterSizes(assign))
	}
}

func TestClusterSweepAllToAll(t *testing.T) {
	// Uniform all-to-all (FT): any k-way equal partition logs ~ 1-1/k of
	// the traffic, so the sweep must settle on k=2 at ~50% (Table I).
	n := 32
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddTraffic(i, j, 1)
		}
	}
	res := Cluster(g, DefaultOptions())
	if res.K != 2 {
		t.Fatalf("k=%d, want 2", res.K)
	}
	if res.CutFrac < 0.45 || res.CutFrac > 0.55 {
		t.Fatalf("cut %.3f, want ~0.5", res.CutFrac)
	}
	if math.Abs(res.ExpRollback-0.5) > 0.05 {
		t.Fatalf("rollback %.3f, want ~0.5", res.ExpRollback)
	}
}

func TestClusterRespectsMaxSize(t *testing.T) {
	g := torus2D(8, 8, 50, 10)
	opt := DefaultOptions()
	opt.MaxClusterFrac = 0.25
	res := Cluster(g, opt)
	maxAllowed := int(0.25*64) + 1
	for _, s := range ClusterSizes(res.Assign) {
		if s > maxAllowed {
			t.Fatalf("cluster size %d exceeds bound %d", s, maxAllowed)
		}
	}
}

func TestClusterEmptyGraph(t *testing.T) {
	g := New(8)
	res := Cluster(g, DefaultOptions())
	if len(res.Assign) != 8 {
		t.Fatalf("assign length %d", len(res.Assign))
	}
}

func TestSwapPassEscapesBalancedMinimum(t *testing.T) {
	// Two "communities" interleaved so single moves are size-blocked:
	// vertices 0..3 talk to each other, 4..7 talk to each other; start
	// from the worst balanced split and check swaps fix it.
	g := New(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddTraffic(i, j, 10)
			g.AddTraffic(i+4, j+4, 10)
		}
	}
	assign := []int{0, 1, 0, 1, 0, 1, 0, 1} // fully mixed
	for pass := 0; pass < 8; pass++ {
		if !swapPass(g, assign) {
			break
		}
	}
	if cut := g.CutFraction(assign); cut != 0 {
		t.Fatalf("swap refinement left cut %.3f, want 0 (assign %v)", cut, assign)
	}
}

func TestFromPairBytesSymmetrizes(t *testing.T) {
	bytes := make([]int64, 9)
	bytes[0*3+1] = 100 // 0->1
	bytes[1*3+0] = 50  // 1->0
	g := FromPairBytes(3, bytes)
	if g.W[0][1] != 150 || g.W[1][0] != 150 {
		t.Fatalf("symmetrization wrong: %v", g.W[0][1])
	}
	if g.Total != 150 {
		t.Fatalf("total %v", g.Total)
	}
}

// Properties: for random graphs and partitions, the cut fraction is in
// [0,1], expected rollback is in (0,1], and a one-cluster partition has
// zero cut and rollback 1.
func TestPartitionProperties(t *testing.T) {
	f := func(edges []uint16, parts []uint8) bool {
		const n = 12
		g := New(n)
		for i, e := range edges {
			a := int(e) % n
			b := (int(e) / n) % n
			if a != b {
				g.AddTraffic(a, b, float64(i%7+1))
			}
		}
		assign := make([]int, n)
		for i := range assign {
			if len(parts) > 0 {
				assign[i] = int(parts[i%len(parts)]) % 4
			}
		}
		cut := g.CutFraction(assign)
		rb := ExpectedRollback(assign, n)
		if cut < 0 || cut > 1 || rb <= 0 || rb > 1 {
			return false
		}
		one := make([]int, n)
		return g.CutFraction(one) == 0 && ExpectedRollback(one, n) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
