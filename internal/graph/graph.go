// Package graph implements the communication-graph clustering tool HydEE
// depends on.
//
// The paper (§V-B3) clusters application processes with the off-line tool of
// Ropars et al. (Euro-Par 2011): given a weighted graph of the bytes
// exchanged on every channel, find a partition that trades off the size of
// the clusters (which bounds how many processes roll back after a failure)
// against the volume of inter-cluster traffic (which must be logged).
//
// This package provides the weighted graph, quality metrics (logged-byte
// fraction, expected rollback fraction), and a partitioner: greedy seeded
// growth followed by Kernighan–Lin style refinement, swept over candidate
// cluster counts and scored by the combined objective. The outputs populate
// Table I of the paper.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected weighted communication graph: W[i][j] is the number
// of bytes exchanged between processes i and j (both directions summed).
type Graph struct {
	N     int
	W     [][]float64
	Total float64 // sum over unordered pairs
}

// New creates an empty graph over n vertices.
func New(n int) *Graph {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return &Graph{N: n, W: w}
}

// AddTraffic accumulates bytes exchanged between i and j (symmetric).
func (g *Graph) AddTraffic(i, j int, bytes float64) {
	if i == j || bytes == 0 {
		return
	}
	g.W[i][j] += bytes
	g.W[j][i] += bytes
	g.Total += bytes
}

// FromPairBytes builds a graph from an np*np row-major matrix of directed
// byte counts (row = sender), symmetrizing it. A nil or short matrix yields
// an empty graph over np vertices.
func FromPairBytes(np int, bytes []int64) *Graph {
	g := New(np)
	if len(bytes) < np*np {
		return g
	}
	for i := 0; i < np; i++ {
		for j := i + 1; j < np; j++ {
			b := float64(bytes[i*np+j] + bytes[j*np+i])
			if b > 0 {
				g.AddTraffic(i, j, b)
			}
		}
	}
	return g
}

// Degree is the total traffic of vertex i.
func (g *Graph) Degree(i int) float64 {
	var d float64
	for j := 0; j < g.N; j++ {
		d += g.W[i][j]
	}
	return d
}

// CutFraction reports the fraction of total traffic crossing the partition:
// the fraction of bytes HydEE would log. assign[i] is the cluster of i.
func (g *Graph) CutFraction(assign []int) float64 {
	if g.Total == 0 {
		return 0
	}
	var cut float64
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if assign[i] != assign[j] {
				cut += g.W[i][j]
			}
		}
	}
	return cut / g.Total
}

// CutBytes reports the absolute inter-cluster traffic in bytes.
func (g *Graph) CutBytes(assign []int) float64 {
	var cut float64
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if assign[i] != assign[j] {
				cut += g.W[i][j]
			}
		}
	}
	return cut
}

// ExpectedRollback is the average fraction of processes that roll back after
// a single failure when failures are uniformly distributed over processes
// (Table I, column 2): sum over clusters of (size/N)^2.
func ExpectedRollback(assign []int, n int) float64 {
	sizes := ClusterSizes(assign)
	var s float64
	for _, sz := range sizes {
		f := float64(sz) / float64(n)
		s += f * f
	}
	return s
}

// ClusterSizes returns the size of each cluster indexed by cluster id,
// compacting ids to 0..k-1 in order of first appearance.
func ClusterSizes(assign []int) []int {
	idx := make(map[int]int)
	var sizes []int
	for _, c := range assign {
		k, ok := idx[c]
		if !ok {
			k = len(sizes)
			idx[c] = k
			sizes = append(sizes, 0)
		}
		sizes[k]++
	}
	return sizes
}

// Normalize rewrites assign in place so cluster ids are 0..k-1 in order of
// first appearance, and returns the number of clusters.
func Normalize(assign []int) int {
	idx := make(map[int]int)
	for i, c := range assign {
		k, ok := idx[c]
		if !ok {
			k = len(idx)
			idx[c] = k
		}
		assign[i] = k
	}
	return len(idx)
}

// Options configures the clustering sweep.
type Options struct {
	// CandidateK lists the cluster counts to try. Empty uses a default
	// sweep.
	CandidateK []int
	// MaxClusterFrac bounds every cluster to at most this fraction of the
	// processes (0 disables the bound). The paper's tool keeps clusters
	// small enough that a failure rolls back a limited share of processes.
	MaxClusterFrac float64
	// Lambda weighs the expected-rollback fraction against the logged
	// fraction in the objective score = cut + Lambda*rollback.
	Lambda float64
	// Refinements is the number of KL refinement passes per candidate.
	Refinements int
	// Restarts is the number of random greedy seedings tried per
	// candidate k (best cut kept).
	Restarts int
	// Seed makes the sweep deterministic.
	Seed int64
}

// DefaultOptions mirrors the trade-off of the paper's tool: clusters of at
// most ~25% of the processes, mild pressure toward more, smaller clusters.
func DefaultOptions() Options {
	return Options{
		CandidateK:     []int{2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32},
		MaxClusterFrac: 0.30,
		Lambda:         0.50,
		Refinements:    8,
		Restarts:       4,
		Seed:           1,
	}
}

// Result is the outcome of a clustering sweep.
type Result struct {
	Assign      []int
	K           int
	CutFrac     float64
	CutBytes    float64
	TotalBytes  float64
	ExpRollback float64
	Score       float64
}

// Cluster runs the sweep and returns the best-scoring partition.
func Cluster(g *Graph, opt Options) Result {
	if len(opt.CandidateK) == 0 {
		opt = DefaultOptions()
	}
	best := Result{Score: -1}
	restarts := opt.Restarts
	if restarts < 1 {
		restarts = 1
	}
	for _, k := range opt.CandidateK {
		if k < 1 || k > g.N {
			continue
		}
		maxSize := g.N
		if opt.MaxClusterFrac > 0 {
			maxSize = int(opt.MaxClusterFrac * float64(g.N))
			if maxSize < (g.N+k-1)/k {
				maxSize = (g.N + k - 1) / k // must be feasible
			}
		}
		for r := 0; r < restarts; r++ {
			assign := PartitionK(g, k, maxSize, opt.Refinements, opt.Seed+int64(31*r))
			kk := Normalize(assign)
			cut := g.CutFraction(assign)
			rb := ExpectedRollback(assign, g.N)
			score := cut + opt.Lambda*rb
			if best.Score < 0 || score < best.Score {
				best = Result{
					Assign:      assign,
					K:           kk,
					CutFrac:     cut,
					CutBytes:    g.CutBytes(assign),
					TotalBytes:  g.Total,
					ExpRollback: rb,
					Score:       score,
				}
			}
		}
	}
	if best.Score < 0 {
		assign := make([]int, g.N)
		best = Result{Assign: assign, K: 1, ExpRollback: 1, TotalBytes: g.Total}
	}
	return best
}

// PartitionK partitions g into k clusters of at most maxSize vertices using
// greedy seeded growth followed by refinement: alternating single-vertex
// move passes and pairwise swap passes (swaps escape the balance-locked
// minima that plain moves cannot leave on symmetric graphs).
func PartitionK(g *Graph, k, maxSize, refine int, seed int64) []int {
	n := g.N
	assign := greedyGrow(g, k, maxSize, seed)
	for pass := 0; pass < refine; pass++ {
		moved := klPass(g, assign, maxSize)
		swapped := swapPass(g, assign)
		if !moved && !swapped {
			break
		}
	}
	if len(assign) != n {
		panic(fmt.Sprintf("graph: partition size %d != %d", len(assign), n))
	}
	return assign
}

// greedyGrow seeds k clusters on high-traffic vertices spread apart, then
// grows them by repeatedly giving the least-filled cluster the unassigned
// vertex with the highest connectivity to it.
func greedyGrow(g *Graph, k, maxSize int, seed int64) []int {
	n := g.N
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	// Seed selection: highest-degree vertex first, then farthest (least
	// connected to chosen seeds) among high-degree candidates. The
	// pre-shuffle randomizes tie-breaking on symmetric graphs so restarts
	// explore different partitions.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	sort.SliceStable(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })
	seeds := []int{order[0]}
	for len(seeds) < k {
		bestV, bestConn := -1, 0.0
		for _, v := range order {
			if assign[v] != -1 || contains(seeds, v) {
				continue
			}
			var conn float64
			for _, s := range seeds {
				conn += g.W[v][s]
			}
			if bestV == -1 || conn < bestConn {
				bestV, bestConn = v, conn
			}
		}
		if bestV == -1 {
			bestV = rng.Intn(n)
		}
		seeds = append(seeds, bestV)
	}
	sizes := make([]int, k)
	for c, s := range seeds {
		assign[s] = c
		sizes[c]++
	}
	// conn[v][c] = traffic between v and cluster c.
	conn := make([][]float64, n)
	for v := range conn {
		conn[v] = make([]float64, k)
		for c, s := range seeds {
			conn[v][c] = g.W[v][s]
		}
	}
	remaining := n - k
	for remaining > 0 {
		// Pick the least-filled cluster that can still grow.
		c := -1
		for cc := 0; cc < k; cc++ {
			if sizes[cc] >= maxSize {
				continue
			}
			if c == -1 || sizes[cc] < sizes[c] {
				c = cc
			}
		}
		if c == -1 {
			// All clusters full: dump remainder round-robin.
			for v := 0; v < n; v++ {
				if assign[v] == -1 {
					assign[v] = v % k
					remaining--
				}
			}
			break
		}
		bestV, bestGain := -1, -1.0
		for v := 0; v < n; v++ {
			if assign[v] != -1 {
				continue
			}
			if bestV == -1 || conn[v][c] > bestGain {
				bestV, bestGain = v, conn[v][c]
			}
		}
		assign[bestV] = c
		sizes[c]++
		remaining--
		for v := 0; v < n; v++ {
			if assign[v] == -1 {
				conn[v][c] += g.W[v][bestV]
			}
		}
	}
	return assign
}

// klPass performs one Kernighan–Lin style refinement sweep: move any vertex
// whose connectivity to another cluster exceeds its connectivity to its own
// (strictly, and respecting the size bound). Returns whether any move was
// made.
func klPass(g *Graph, assign []int, maxSize int) bool {
	n := g.N
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	conn := make([]float64, k)
	moved := false
	for v := 0; v < n; v++ {
		for c := range conn {
			conn[c] = 0
		}
		for u := 0; u < n; u++ {
			if w := g.W[v][u]; w > 0 {
				conn[assign[u]] += w
			}
		}
		cur := assign[v]
		if sizes[cur] <= 1 {
			continue // never empty a cluster
		}
		bestC, bestGain := cur, 0.0
		for c := 0; c < k; c++ {
			if c == cur || sizes[c] >= maxSize {
				continue
			}
			gain := conn[c] - conn[cur]
			if gain > bestGain {
				bestC, bestGain = c, gain
			}
		}
		if bestC != cur {
			sizes[cur]--
			sizes[bestC]++
			assign[v] = bestC
			moved = true
		}
	}
	return moved
}

// swapPass exchanges vertex pairs between clusters when the combined gain
// is positive; sizes are preserved so the move is always balance-feasible.
// Returns whether any swap was made.
func swapPass(g *Graph, assign []int) bool {
	n := g.N
	k := 0
	for _, c := range assign {
		if c+1 > k {
			k = c + 1
		}
	}
	// conn[v][c]: traffic between v and cluster c.
	conn := make([][]float64, n)
	for v := 0; v < n; v++ {
		conn[v] = make([]float64, k)
		for u := 0; u < n; u++ {
			if w := g.W[v][u]; w > 0 {
				conn[v][assign[u]] += w
			}
		}
	}
	swapped := false
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			a, b := assign[u], assign[v]
			if a == b {
				continue
			}
			gain := (conn[u][b] - conn[u][a]) + (conn[v][a] - conn[v][b]) - 2*g.W[u][v]
			if gain <= 1e-12 {
				continue
			}
			assign[u], assign[v] = b, a
			swapped = true
			for x := 0; x < n; x++ {
				if w := g.W[x][u]; w > 0 {
					conn[x][a] -= w
					conn[x][b] += w
				}
				if w := g.W[x][v]; w > 0 {
					conn[x][b] -= w
					conn[x][a] += w
				}
			}
		}
	}
	return swapped
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
