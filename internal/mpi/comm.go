package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"hydee/internal/checkpoint"
	"hydee/internal/vtime"
)

// Wildcards for Recv.
const (
	// AnySource matches any sender (MPI_ANY_SOURCE). Send-deterministic
	// applications may use it when the reception order has no impact on
	// the messages they send (§II-C).
	AnySource = -1
	// AnyTag matches any tag.
	AnyTag = -1
)

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	// Bytes is the modeled payload size.
	Bytes int
}

// Comm is the communicator handed to a Program: an MPI-like interface over
// the simulated process.
type Comm struct {
	p *Proc
}

// Rank is the calling process's rank.
func (c *Comm) Rank() int { return c.p.rank }

// Size is the number of application processes.
func (c *Comm) Size() int { return c.p.rt.cfg.NP }

// Cluster is the calling process's cluster id.
func (c *Comm) Cluster() int { return c.p.cluster() }

// ClusterOf reports the cluster of any rank.
func (c *Comm) ClusterOf(rank int) int { return c.p.rt.topo.ClusterOf[rank] }

// Now is the process's current virtual time.
func (c *Comm) Now() vtime.Time { return c.p.clock.Now() }

// Restarted reports whether this incarnation was restarted after a failure.
func (c *Comm) Restarted() bool { return c.p.round != nil }

// Send posts a message of len(data) modeled bytes.
func (c *Comm) Send(dst, tag int, data []byte) error {
	return c.p.send(dst, tag, data, 0)
}

// SendW posts a message whose modeled size is wireBytes while carrying the
// (possibly smaller) real payload data. The kernels use it to reproduce the
// paper's class-D communication volumes without moving gigabytes.
func (c *Comm) SendW(dst, tag int, data []byte, wireBytes int) error {
	return c.p.send(dst, tag, data, wireBytes)
}

// Recv blocks until a message matching (src, tag) is delivered. src may be
// AnySource and tag AnyTag.
func (c *Comm) Recv(src, tag int) ([]byte, Status, error) {
	m, err := c.p.recvMatch(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return m.Data, Status{Source: m.Src, Tag: m.Tag, Bytes: m.WireLen}, nil
}

// Compute advances the process's virtual clock by d of local work.
func (c *Comm) Compute(d vtime.Duration) error {
	c.p.clock.Advance(d)
	c.p.publish()
	return c.p.maybeFail()
}

// Checkpoint is the cooperative checkpoint point. All processes must call
// it collectively the same number of times; whether a call actually takes a
// coordinated checkpoint is decided by the configured schedule.
//
// Contract: at the call, the registered state (see Restore) must fully
// describe the work that remains — typically, increment the iteration
// counter before calling Checkpoint. If the state still describes an
// iteration whose communication already happened, a restart re-executes
// sends and receives the protocol has already accounted for, and the
// recovered execution diverges.
func (c *Comm) Checkpoint() error { return c.p.checkpointCall() }

// Restore registers state as the process image for checkpointing and, when
// this incarnation restarts from a checkpoint, decodes the saved image into
// it. It reports whether state was loaded.
func (c *Comm) Restore(state any) (bool, error) {
	c.p.stateTarget = state
	s := c.p.snapshot
	if s == nil || len(s.AppState) == 0 {
		return false, nil
	}
	if err := checkpoint.DecodeState(s.AppState, state); err != nil {
		return false, err
	}
	return true, nil
}

// SetStateBytes declares the modeled size of the process image, used by the
// storage cost model (a class-D rank image is far larger than the small
// simulated state).
func (c *Comm) SetStateBytes(n int64) { c.p.stateBytes = n }

// SetResult stores the rank's final result (e.g. a state digest); the
// harness compares results across runs to validate recovery.
func (c *Comm) SetResult(v any) {
	c.p.result = v
	c.p.resultSet = true
}

// Request is a nonblocking operation handle.
type Request struct {
	c      *Comm
	isRecv bool
	src    int
	tag    int
	data   []byte
	status Status
	done   bool
	err    error
}

// Isend posts a send immediately (eager buffering makes sends nonblocking)
// and returns a completed request.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	return c.IsendW(dst, tag, data, 0)
}

// IsendW is Isend with a modeled wire size.
func (c *Comm) IsendW(dst, tag int, data []byte, wireBytes int) *Request {
	err := c.p.send(dst, tag, data, wireBytes)
	return &Request{c: c, done: true, err: err}
}

// Irecv posts a receive request; the matching happens at Wait.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{c: c, isRecv: true, src: src, tag: tag}
}

// Wait completes the request and returns its data (receives only).
func (r *Request) Wait() ([]byte, Status, error) {
	if r.done {
		return r.data, r.status, r.err
	}
	r.done = true
	if r.isRecv {
		r.data, r.status, r.err = r.c.Recv(r.src, r.tag)
	}
	return r.data, r.status, r.err
}

// WaitAll completes all requests, returning the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SendRecv sends to dst and receives from src (deadlock-free because sends
// are eager).
func (c *Comm) SendRecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, error) {
	return c.SendRecvW(dst, sendTag, data, 0, src, recvTag)
}

// SendRecvW is SendRecv with a modeled wire size for the outgoing message.
func (c *Comm) SendRecvW(dst, sendTag int, data []byte, wireBytes, src, recvTag int) ([]byte, error) {
	if err := c.p.send(dst, sendTag, data, wireBytes); err != nil {
		return nil, err
	}
	got, _, err := c.Recv(src, recvTag)
	return got, err
}

// Float64sToBytes encodes a float64 slice little-endian.
func Float64sToBytes(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// BytesToFloat64s decodes a little-endian float64 slice.
func BytesToFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: float payload length %d not a multiple of 8", len(b))
	}
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v, nil
}
