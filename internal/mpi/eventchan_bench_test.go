package mpi

// Benchmarks of the supervisor event channel — the single funnel every
// rank goroutine reports through (finish, death, failure detection).
// ROADMAP: very large runs (np >= 1024) serialize on this channel; these
// numbers are the baseline for batching it.

import (
	"sync"
	"testing"

	"hydee/internal/vtime"
)

// benchEventChannel pushes b.N procEvents through a channel sized like
// the runtime's (4*np+16) with a draining consumer, from `producers`
// concurrent goroutines emulating rank goroutines.
func benchEventChannel(b *testing.B, np, producers int) {
	evCh := make(chan procEvent, 4*np+16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range evCh {
		}
	}()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / producers
	for p := 0; p < producers; p++ {
		n := per
		if p == 0 {
			n += b.N % producers
		}
		wg.Add(1)
		go func(rank, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				evCh <- procEvent{kind: evFinished, rank: rank, vt: vtime.Time(i)}
			}
		}(p, n)
	}
	wg.Wait()
	close(evCh)
	<-done
}

func BenchmarkSupervisorEventChannel_NP256(b *testing.B)  { benchEventChannel(b, 256, 256) }
func BenchmarkSupervisorEventChannel_NP1024(b *testing.B) { benchEventChannel(b, 1024, 1024) }

// BenchmarkSupervisorEventChannelUncontended is the single-producer
// floor: the channel cost without cross-rank contention.
func BenchmarkSupervisorEventChannelUncontended(b *testing.B) { benchEventChannel(b, 1024, 1) }
