// Package mpi is the message-passing runtime the HydEE protocol stack runs
// on: an MPI-like communicator (ranks, tags, blocking and nonblocking
// point-to-point, collectives built over point-to-point) bound to one
// goroutine per simulated process, with cooperative checkpointing,
// fail-stop failure injection, restart-from-checkpoint, and a per-failure
// recovery-coordinator round, all accounted in virtual time.
package mpi

import (
	"errors"
	"fmt"
	"time"

	"hydee/internal/checkpoint"
	"hydee/internal/failure"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/trace"
	"hydee/internal/vtime"
)

// Program is the code of one simulated MPI process. It must propagate
// errors from Comm operations: transport.ErrKilled unwinds the process when
// its cluster is rolled back.
type Program func(c *Comm) error

// Config describes one run.
type Config struct {
	// NP is the number of application processes.
	NP int
	// Model is the network cost model; nil defaults to netmodel.Ideal().
	Model netmodel.Model
	// Topo is the process clustering; nil defaults to a single cluster.
	Topo *rollback.Topology
	// Protocol is the rollback-recovery protocol; nil defaults to the
	// native (no fault tolerance) baseline.
	Protocol rollback.Protocol
	// Store is the stable storage for checkpoints; nil defaults to an
	// in-memory store without a bandwidth model.
	Store checkpoint.Store
	// CheckpointEvery fires a coordinated checkpoint every k-th
	// cooperative Comm.Checkpoint() call; 0 disables checkpointing.
	CheckpointEvery int
	// CheckpointStagger offsets the checkpoint schedule per cluster to
	// avoid I/O bursts (experiment E5).
	CheckpointStagger bool
	// Failures is the fail-stop schedule; nil injects none.
	Failures *failure.Schedule
	// Recorder, when non-nil, records application-level events for the
	// property tests.
	Recorder *trace.Recorder
	// Observer, when non-nil, receives structured lifecycle events
	// (checkpoints, failures, recovery rounds, completion). Use
	// NewLogObserver for a debug stream comparable to the former
	// Config.Log writer.
	Observer Observer
	// MaxRounds caps recovery rounds as a runaway backstop; 0 derives it
	// from the failure schedule.
	MaxRounds int
	// Watchdog aborts the run if the supervisor sees no event for this
	// real duration (deadlock guard); 0 defaults to 60s.
	Watchdog time.Duration
}

func (cfg *Config) watchdog() time.Duration {
	if cfg.Watchdog > 0 {
		return cfg.Watchdog
	}
	return 60 * time.Second
}

// Validate reports whether the configuration is runnable without mutating
// it (defaults are applied to a copy).
func Validate(cfg Config) error { return cfg.normalize() }

func (cfg *Config) normalize() error {
	if cfg.NP <= 0 {
		return errors.New("mpi: NP must be positive")
	}
	if cfg.CheckpointEvery < 0 {
		return fmt.Errorf("mpi: CheckpointEvery must be >= 0, got %d", cfg.CheckpointEvery)
	}
	if cfg.MaxRounds < 0 {
		return fmt.Errorf("mpi: MaxRounds must be >= 0, got %d", cfg.MaxRounds)
	}
	if cfg.Watchdog < 0 {
		return fmt.Errorf("mpi: Watchdog must be >= 0, got %v", cfg.Watchdog)
	}
	if cfg.Model == nil {
		cfg.Model = netmodel.Ideal()
	}
	if cfg.Topo == nil {
		cfg.Topo = rollback.SingleCluster(cfg.NP)
	}
	if err := cfg.Topo.Validate(); err != nil {
		return err
	}
	if cfg.Topo.NP != cfg.NP {
		return fmt.Errorf("mpi: topology covers %d ranks, config has %d", cfg.Topo.NP, cfg.NP)
	}
	if cfg.Protocol == nil {
		cfg.Protocol = rollback.Native()
	}
	if cfg.Failures != nil {
		if err := cfg.Failures.Validate(cfg.NP); err != nil {
			return err
		}
	}
	if cfg.Store == nil {
		cfg.Store = checkpoint.NewMemStore(0, 0)
	}
	if cfg.MaxRounds == 0 {
		if cfg.Failures != nil {
			cfg.MaxRounds = len(cfg.Failures.Events) + 2
		} else {
			cfg.MaxRounds = 2
		}
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	// Makespan is the largest final virtual clock across processes.
	Makespan vtime.Time
	// PerRank aggregates protocol metrics per rank across incarnations.
	PerRank []rollback.Metrics
	// Totals sums PerRank.
	Totals rollback.Metrics
	// Results holds the per-rank values passed to Comm.SetResult by the
	// final incarnation.
	Results []any
	// Rounds lists the recovery rounds that ran.
	Rounds []rollback.RecoveryStats
	// StoreStats reports stable-storage activity.
	StoreStats checkpoint.StoreStats
	// PairBytes is the np*np row-major matrix of modeled application
	// payload bytes sent per ordered rank pair; the clustering tool
	// builds its communication graph from it.
	PairBytes []int64
	// PairMsgs is the matching message-count matrix.
	PairMsgs []int64
}
