package mpi

import (
	"errors"
	"fmt"
)

// Sentinel errors a run can return. Callers match them with errors.Is; the
// concrete error is always a *RunError carrying the failing rank, round and
// phase.
var (
	// ErrCanceled reports that the run's context was canceled or its
	// deadline expired before the run completed.
	ErrCanceled = errors.New("mpi: run canceled")
	// ErrDeadlock reports that the real-time watchdog saw no supervisor
	// event for the configured duration — the usual symptom of a
	// deadlocked program or of overlapping unsupported failures.
	ErrDeadlock = errors.New("mpi: deadlock suspected")
	// ErrCheckpointLost reports that a checkpoint the store had announced
	// via LatestSeq could not be loaded during a restart. Restarting the
	// rank from its initial state instead would silently diverge from the
	// surviving processes (skewed clock, replayed sends the protocol never
	// accounted for), so the run aborts.
	ErrCheckpointLost = errors.New("mpi: checkpoint lost from store")
)

// Phase names for RunError.Phase.
const (
	// PhaseConfig is configuration validation, before any goroutine runs.
	PhaseConfig = "config"
	// PhaseProgram is application code executing on a rank.
	PhaseProgram = "program"
	// PhaseSupervise is the supervisor loop (watchdog, cancellation,
	// failure bookkeeping).
	PhaseSupervise = "supervise"
	// PhaseRecovery is a protocol recovery round.
	PhaseRecovery = "recovery"
)

// RunError is the typed error a run returns: it locates the failure (rank,
// recovery round, phase) and wraps the underlying cause, which may be one
// of the sentinels above or rollback.ErrNotSendDeterministic.
type RunError struct {
	// Rank is the application rank whose failure surfaced the error, or
	// -1 when no single rank is responsible.
	Rank int
	// Round is the recovery round in flight when the error occurred, or
	// -1 outside recovery.
	Round int
	// Phase is one of the Phase* constants.
	Phase string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *RunError) Error() string {
	loc := e.Phase
	if e.Rank >= 0 {
		loc = fmt.Sprintf("%s rank %d", loc, e.Rank)
	}
	if e.Round >= 0 {
		loc = fmt.Sprintf("%s round %d", loc, e.Round)
	}
	return fmt.Sprintf("mpi: %s: %v", loc, e.Err)
}

// Unwrap supports errors.Is / errors.As matching on the cause.
func (e *RunError) Unwrap() error { return e.Err }

// runErr builds a *RunError.
func runErr(rank, round int, phase string, err error) *RunError {
	return &RunError{Rank: rank, Round: round, Phase: phase, Err: err}
}
