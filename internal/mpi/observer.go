package mpi

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"hydee/internal/rollback"
	"hydee/internal/vtime"
)

// EventKind discriminates the lifecycle events a run emits.
type EventKind int

// The lifecycle events.
const (
	// EvRunStart fires once, before any process goroutine starts.
	EvRunStart EventKind = iota
	// EvCheckpoint fires when a rank completes a coordinated checkpoint.
	EvCheckpoint
	// EvFailure fires when an injected fail-stop event is detected.
	EvFailure
	// EvRankFinished fires when a rank's program returns successfully.
	EvRankFinished
	// EvRecoveryStart fires when a recovery round begins (restart scope
	// computed, victims being killed).
	EvRecoveryStart
	// EvRecoveryEnd fires when a recovery round completes.
	EvRecoveryEnd
	// EvRunComplete fires once, after every rank finished and lingering
	// processes were shut down.
	EvRunComplete
	// EvRunAbort fires once instead of EvRunComplete when the run ends
	// in an error (cancellation, watchdog, fatal rank error, failed
	// recovery); Err carries the cause. Every EvRunStart is therefore
	// terminated by exactly one EvRunComplete or EvRunAbort.
	EvRunAbort
)

func (k EventKind) String() string {
	switch k {
	case EvRunStart:
		return "run-start"
	case EvCheckpoint:
		return "checkpoint"
	case EvFailure:
		return "failure"
	case EvRankFinished:
		return "rank-finished"
	case EvRecoveryStart:
		return "recovery-start"
	case EvRecoveryEnd:
		return "recovery-end"
	case EvRunComplete:
		return "run-complete"
	case EvRunAbort:
		return "run-abort"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one structured lifecycle event.
type Event struct {
	Kind EventKind
	// Run identifies the run that emitted the event: unique within the
	// process, assigned in run-start order. A context observer shared by
	// a parallel sweep sees several runs' events interleaved; Run is what
	// lets a sink demultiplex them (e.g. one output file per run).
	Run int64
	// VT is the virtual time the event was observed at.
	VT vtime.Time
	// Rank is the emitting rank (EvCheckpoint, EvRankFinished), -1
	// otherwise.
	Rank int
	// Ranks lists the victims of an EvFailure, the restart scope of an
	// EvRecoveryStart.
	Ranks []int
	// Round is the recovery round in flight when the event was emitted,
	// -1 when none is active.
	Round int
	// Seq is the checkpoint sequence number (EvCheckpoint).
	Seq int
	// Stats carries the round outcome on EvRecoveryEnd.
	Stats *rollback.RecoveryStats
	// Err carries the run's error on EvRunAbort.
	Err error
}

// Observer receives lifecycle events. OnEvent may be called from the
// supervisor and from rank goroutines; the runtime serializes calls, so an
// implementation needs no locking of its own, but it must not block for
// long — it runs on the run's critical path.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }

// MultiObserver fans events out to several observers in order.
func MultiObserver(obs ...Observer) Observer {
	return ObserverFunc(func(ev Event) {
		for _, o := range obs {
			if o != nil {
				o.OnEvent(ev)
			}
		}
	})
}

// NewLogObserver renders events as a human-readable debug log — the
// successor of the removed Config.Log writer. It narrates the structured
// lifecycle only; the old writer's per-rank "unwound (n left)" kill-phase
// lines have no event equivalent.
func NewLogObserver(w io.Writer) Observer {
	return ObserverFunc(func(ev Event) {
		switch ev.Kind {
		case EvRunStart:
			fmt.Fprintf(w, "[runtime] run start\n")
		case EvCheckpoint:
			fmt.Fprintf(w, "[runtime] rank %d checkpoint seq %d at %v\n", ev.Rank, ev.Seq, ev.VT)
		case EvFailure:
			fmt.Fprintf(w, "[runtime] failure of ranks %v detected at %v\n", ev.Ranks, ev.VT)
		case EvRankFinished:
			fmt.Fprintf(w, "[runtime] rank %d finished at %v\n", ev.Rank, ev.VT)
		case EvRecoveryStart:
			fmt.Fprintf(w, "[runtime] recovery round %d: rolling back ranks %v\n", ev.Round, ev.Ranks)
		case EvRecoveryEnd:
			fmt.Fprintf(w, "[runtime] recovery round %d done at %v\n", ev.Round, ev.VT)
		case EvRunComplete:
			fmt.Fprintf(w, "[runtime] run complete at %v\n", ev.VT)
		case EvRunAbort:
			fmt.Fprintf(w, "[runtime] run aborted: %v\n", ev.Err)
		default:
			fmt.Fprintf(w, "[runtime] %s %+v\n", ev.Kind, ev)
		}
	})
}

// observerMux serializes concurrent emissions (rank goroutines emit
// checkpoints while the supervisor emits round events) and stamps every
// event with the owning run's id.
type observerMux struct {
	mu    sync.Mutex
	obs   Observer
	runID int64
}

// runIDs hands out process-unique run identifiers in run-start order.
var runIDs atomic.Int64

func (m *observerMux) emit(ev Event) {
	if m == nil || m.obs == nil {
		return
	}
	ev.Run = m.runID
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obs.OnEvent(ev)
}
