package mpi

// White-box tests for Config.normalize: every validation branch and every
// default derivation.

import (
	"testing"
	"time"

	"hydee/internal/failure"
	"hydee/internal/rollback"
)

func TestNormalizeRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero NP", Config{NP: 0}},
		{"negative NP", Config{NP: -4}},
		{"negative CheckpointEvery", Config{NP: 2, CheckpointEvery: -1}},
		{"negative MaxRounds", Config{NP: 2, MaxRounds: -3}},
		{"negative Watchdog", Config{NP: 2, Watchdog: -time.Second}},
		{"topology/NP mismatch", Config{NP: 3, Topo: rollback.SingleCluster(2)}},
		{"invalid topology", Config{NP: 2, Topo: rollback.NewTopology([]int{0, 2})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			if err := cfg.normalize(); err == nil {
				t.Fatalf("normalize accepted %+v", tc.cfg)
			}
			// The exported wrapper must agree.
			if err := Validate(tc.cfg); err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			}
		})
	}
}

func TestNormalizeAppliesDefaults(t *testing.T) {
	cfg := Config{NP: 4}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Model == nil || cfg.Model.Name() != "ideal" {
		t.Errorf("Model default: %+v", cfg.Model)
	}
	if cfg.Topo == nil || cfg.Topo.NP != 4 || cfg.Topo.K() != 1 {
		t.Errorf("Topo default: %+v", cfg.Topo)
	}
	if cfg.Protocol == nil || cfg.Protocol.Name() != "native" {
		t.Errorf("Protocol default: %v", cfg.Protocol)
	}
	if cfg.Store == nil {
		t.Error("Store default missing")
	}
	if cfg.MaxRounds != 2 {
		t.Errorf("MaxRounds default without failures: %d", cfg.MaxRounds)
	}
	if cfg.watchdog() != 60*time.Second {
		t.Errorf("watchdog default: %v", cfg.watchdog())
	}
}

func TestNormalizeDerivesMaxRoundsFromSchedule(t *testing.T) {
	cfg := Config{NP: 4, Failures: failure.NewSchedule(
		failure.Event{Ranks: []int{1}, When: failure.Trigger{AfterSends: 1}},
		failure.Event{Ranks: []int{2}, When: failure.Trigger{AfterSends: 2}},
		failure.Event{Ranks: []int{3}, When: failure.Trigger{AfterSends: 3}},
	)}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxRounds != 5 {
		t.Errorf("MaxRounds = %d, want len(events)+2 = 5", cfg.MaxRounds)
	}

	// An explicit positive MaxRounds is kept as-is.
	cfg = Config{NP: 4, MaxRounds: 9}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxRounds != 9 {
		t.Errorf("MaxRounds = %d, want explicit 9", cfg.MaxRounds)
	}
}

func TestValidateDoesNotMutate(t *testing.T) {
	cfg := Config{NP: 4}
	if err := Validate(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Model != nil || cfg.Topo != nil || cfg.Protocol != nil || cfg.Store != nil || cfg.MaxRounds != 0 {
		t.Errorf("Validate mutated its argument: %+v", cfg)
	}
}
