package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"hydee/internal/checkpoint"
	"hydee/internal/failure"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/trace"
	"hydee/internal/transport"
	"hydee/internal/vtime"
)

// shutdownBody is the runtime-internal control message that ends lingering
// process loops once the whole run has completed.
type shutdownBody struct{}

// shutdownSendVT stamps the end-of-run shutdown messages at the far virtual
// future, so they sort after every real message still queued and a lingering
// process drains its mailbox in virtual-time order before exiting.
const shutdownSendVT = vtime.Time(math.MaxInt64 >> 1)

// errShutdown reports a shutdown observed while a program was still
// running; it indicates a runtime bug or a program that ignored errors.
var errShutdown = errors.New("mpi: shutdown during program execution")

// markerWire is the modeled size of a checkpoint flush marker.
const markerWire = 8

// Proc is one simulated process: the runtime side of a Comm. All fields are
// owned by the process goroutine except where noted.
type Proc struct {
	rt    *Runtime
	rank  int
	ep    *transport.Endpoint
	clock *vtime.Clock

	engine  rollback.Engine
	metrics rollback.Metrics

	// pending holds application messages popped from the endpoint but not
	// yet matched by a receive.
	pending []*transport.Msg
	// markers tracks flush markers received, per checkpoint sequence.
	markers map[int]map[int]bool

	epoch       int
	ckptCallIdx int
	ckptsDone   int
	collSeq     int64

	snapshot *checkpoint.Snapshot
	round    *rollback.RoundInfo
	inc      int32

	stateTarget any
	stateBytes  int64
	result      any
	resultSet   bool

	comm *Comm
}

func (rt *Runtime) newProc(rank int, snap *checkpoint.Snapshot, round *rollback.RoundInfo, startVT vtime.Time) *Proc {
	p := &Proc{
		rt:      rt,
		rank:    rank,
		ep:      rt.net.Endpoint(rank),
		clock:   vtime.NewClock(startVT),
		markers: make(map[int]map[int]bool),
		round:   round,
		inc:     rt.net.IncOf(rank),
	}
	if snap != nil {
		p.snapshot = snap
		p.epoch = snap.Seq
		p.ckptCallIdx = snap.CkptCallIdx
		p.collSeq = snap.CollSeq
		for _, m := range snap.Mailbox {
			mm := *m
			mm.Data = append([]byte(nil), m.Data...)
			p.pending = append(p.pending, &mm)
		}
	}
	p.engine = rt.prot.NewEngine(rank, p)
	p.comm = &Comm{p: p}
	return p
}

// run executes the program (and the linger phase) on a fresh goroutine.
func (p *Proc) run() {
	defer p.rt.wg.Done()
	defer p.collect()

	if p.round != nil {
		snap := p.snapshot
		if snap == nil {
			// No checkpoint yet: the process rolls back to its initial
			// state; the engine still runs the restart protocol.
			snap = &checkpoint.Snapshot{Rank: p.rank}
		}
		p.engine.OnRestore(snap, p.round)
		p.metrics.Restarts++
	}

	err := p.rt.program(p.comm)
	switch {
	case err == nil:
		p.rt.event(procEvent{kind: evFinished, rank: p.rank, vt: p.clock.Now()})
		lerr := p.linger()
		if errors.Is(lerr, transport.ErrKilled) {
			p.rt.event(procEvent{kind: evDied, rank: p.rank, vt: p.clock.Now()})
		}
	case errors.Is(err, transport.ErrKilled):
		p.rt.event(procEvent{kind: evDied, rank: p.rank, vt: p.clock.Now()})
	default:
		p.rt.event(procEvent{kind: evFatal, rank: p.rank, vt: p.clock.Now(), err: err})
	}
}

// collect publishes the incarnation's metrics and result to the runtime.
func (p *Proc) collect() {
	p.rt.mu.Lock()
	defer p.rt.mu.Unlock()
	p.rt.metrics[p.rank].Add(&p.metrics)
	if p.clock.Now() > p.rt.finalVT[p.rank] {
		p.rt.finalVT[p.rank] = p.clock.Now()
	}
	if p.resultSet {
		p.rt.results[p.rank] = p.result
	}
}

// linger keeps servicing protocol traffic after the program finished, so
// the process can still answer rollback notifications, re-send logged
// messages, and take part in recovery rounds of other clusters.
func (p *Proc) linger() error {
	for {
		m, err := p.ep.Recv(p.clock.Now())
		if err != nil {
			return err
		}
		sd, err := p.handle(m)
		if err != nil {
			return err
		}
		if sd {
			return nil
		}
	}
}

// handle dispatches one incoming message. It reports whether a shutdown was
// observed.
func (p *Proc) handle(m *transport.Msg) (bool, error) {
	switch m.Kind {
	case transport.Ctl:
		if _, ok := m.CtlBody.(shutdownBody); ok {
			return true, nil
		}
		p.clock.MergeAtLeast(m.ArriveVT)
		p.engine.OnCtl(m)
	case transport.Marker:
		p.clock.MergeAtLeast(m.ArriveVT)
		seq := m.Epoch
		set := p.markers[seq]
		if set == nil {
			set = make(map[int]bool)
			p.markers[seq] = set
		}
		set[m.Src] = true
	case transport.App:
		if p.engine.Admit(m) {
			p.pending = append(p.pending, m)
		}
	}
	return false, nil
}

// waitCtl blocks until pred holds, processing control traffic and buffering
// application traffic meanwhile.
func (p *Proc) waitCtl(pred func() bool) error {
	for !pred() {
		m, err := p.ep.Recv(p.clock.Now())
		if err != nil {
			return err
		}
		sd, err := p.handle(m)
		if err != nil {
			return err
		}
		if sd {
			return errShutdown
		}
	}
	return nil
}

// maybeFail consults the failure injector at this interaction point.
func (p *Proc) maybeFail() error {
	inj := p.rt.inj
	if inj == nil {
		return nil
	}
	ranks := inj.Due(p.rank, failure.Progress{
		VT:          p.clock.Now(),
		Sends:       atomic.LoadInt64(&p.rt.cumSends[p.rank]),
		Checkpoints: p.ckptsDone,
	})
	if ranks == nil {
		return nil
	}
	p.rt.event(procEvent{kind: evFail, rank: p.rank, vt: p.clock.Now(), ranks: ranks})
	// The victim stops acting immediately; the supervisor kills the rest
	// of the scope.
	return transport.ErrKilled
}

// send implements the application-level Post event.
func (p *Proc) send(dst, tag int, data []byte, wire int) error {
	if err := p.maybeFail(); err != nil {
		return err
	}
	if dst < 0 || dst >= p.rt.cfg.NP {
		return fmt.Errorf("mpi: rank %d: send to invalid rank %d", p.rank, dst)
	}
	if dst == p.rank {
		return fmt.Errorf("mpi: rank %d: self-send not supported", p.rank)
	}
	if wire <= 0 {
		wire = len(data)
	}
	m := &transport.Msg{
		Src:     p.rank,
		Dst:     dst,
		Kind:    transport.App,
		Tag:     tag,
		Data:    append([]byte(nil), data...),
		WireLen: wire,
	}
	verdict, err := p.engine.PreSend(m)
	if err != nil {
		return err
	}
	p.metrics.AppSends++
	p.metrics.AppBytes += int64(wire)
	atomic.AddInt64(&p.rt.cumSends[p.rank], 1)
	if rec := p.rt.rec; rec != nil {
		rec.Record(trace.Event{
			Op: trace.Send, Proc: p.rank, Peer: dst,
			Date: m.Date, MsgDate: m.Date, Phase: m.Phase, MsgPhase: m.Phase,
			Tag: tag, Bytes: wire, Digest: trace.PayloadDigest(m.Data),
			Replay: p.round != nil, Inc: p.inc,
		})
	}
	if verdict.Suppress {
		p.metrics.Suppressed++
		return nil
	}
	m.PiggyLen = verdict.PiggyWire
	p.metrics.PiggyBytes += int64(verdict.PiggyWire)
	p.clock.Advance(p.rt.model.SendOverhead(m.Wire()) + verdict.ExtraCPU)
	m.SendVT = p.clock.Now()
	m.Epoch = p.epoch
	return p.rt.net.Send(m)
}

func matches(m *transport.Msg, src, tag int) bool {
	if src != AnySource && m.Src != src {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// recvMatch implements the application-level Delivery event.
func (p *Proc) recvMatch(src, tag int) (*transport.Msg, error) {
	if err := p.maybeFail(); err != nil {
		return nil, err
	}
	for {
		for i, m := range p.pending {
			if matches(m, src, tag) {
				p.pending = append(p.pending[:i], p.pending[i+1:]...)
				p.deliver(m)
				return m, nil
			}
		}
		m, err := p.ep.Recv(p.clock.Now())
		if err != nil {
			return nil, err
		}
		sd, err := p.handle(m)
		if err != nil {
			return nil, err
		}
		if sd {
			return nil, errShutdown
		}
	}
}

func (p *Proc) deliver(m *transport.Msg) {
	p.clock.MergeAtLeast(m.ArriveVT)
	p.clock.Advance(p.rt.model.RecvOverhead(m.Wire()))
	p.engine.OnDeliver(m)
	p.metrics.AppDelivers++
	if rec := p.rt.rec; rec != nil {
		ev := trace.Event{
			Op: trace.Deliver, Proc: p.rank, Peer: m.Src,
			MsgDate: m.Date, Phase: m.Phase, MsgPhase: m.Phase,
			Tag: m.Tag, Bytes: m.WireLen, Digest: trace.PayloadDigest(m.Data),
			Replay: p.round != nil, Inc: p.inc,
		}
		if pr, ok := p.engine.(rollback.PhaseReporter); ok {
			ev.Phase = pr.CurrentPhase()
			ev.Date = pr.CurrentDate()
		}
		rec.Record(ev)
	}
}

// checkpointCall is the cooperative checkpoint point. The checkpoint fires
// only when the schedule says so; all members of the engine's checkpoint
// scope reach the same call index and flush their mutual channels with
// in-band markers before capturing (blocking coordinated checkpointing).
func (p *Proc) checkpointCall() error {
	p.ckptCallIdx++
	scope := p.engine.CheckpointScope()
	if len(scope) == 0 || !p.rt.ckptScheduled(p.cluster(), p.ckptCallIdx) {
		return nil
	}
	seq := p.epoch + 1
	p.epoch = seq
	for _, r := range scope {
		if r == p.rank {
			continue
		}
		p.clock.Advance(p.rt.model.SendOverhead(markerWire))
		mm := &transport.Msg{
			Src: p.rank, Dst: r, Kind: transport.Marker,
			Epoch: seq, WireLen: markerWire, SendVT: p.clock.Now(),
		}
		if err := p.rt.net.Send(mm); err != nil {
			return err
		}
	}
	if err := p.waitCtl(func() bool { return p.haveMarkers(seq, scope) }); err != nil {
		return err
	}
	delete(p.markers, seq)

	snap, err := p.capture(seq, scope)
	if err != nil {
		return err
	}
	// Stable-storage admission is ordered in virtual time: the write is
	// issued only once no other live process can still act earlier, so the
	// store's shared-bandwidth queue builds up in a deterministic order. A
	// doomed process is granted the turn only for writes issued at or
	// below its death fence; later ones are cancelled with ErrKilled, so
	// the set of completed saves is a pure function of virtual time.
	issueVT := p.clock.Now()
	if err := p.rt.net.AwaitTurn(p.rank, issueVT); err != nil {
		return err
	}
	endVT, err := p.rt.store.Save(snap, issueVT)
	if err != nil {
		return err
	}
	p.rt.mu.Lock()
	p.rt.ckptDone[p.rank] = append(p.rt.ckptDone[p.rank], savePoint{seq: seq, vt: issueVT})
	p.rt.mu.Unlock()
	p.clock.MergeAtLeast(endVT)
	p.publish()
	p.metrics.Checkpoints++
	p.metrics.CkptBytes += snap.CostBytes()
	p.ckptsDone++
	round := -1
	if p.round != nil {
		round = p.round.Round
	}
	p.rt.obs.emit(Event{Kind: EvCheckpoint, Rank: p.rank, Round: round, Seq: seq, VT: p.clock.Now()})
	return p.maybeFail()
}

func (p *Proc) haveMarkers(seq int, scope []int) bool {
	set := p.markers[seq]
	for _, r := range scope {
		if r == p.rank {
			continue
		}
		if !set[r] {
			return false
		}
	}
	return true
}

// capture builds the snapshot: process image, protocol state, and the
// in-transit messages the checkpoint must hold (DESIGN.md note 3).
func (p *Proc) capture(seq int, scope []int) (*checkpoint.Snapshot, error) {
	snap := &checkpoint.Snapshot{
		Rank:        p.rank,
		Seq:         seq,
		TakenVT:     p.clock.Now(),
		CkptCallIdx: p.ckptCallIdx,
		CollSeq:     p.collSeq,
		ModelBytes:  p.stateBytes,
	}
	if p.stateTarget != nil {
		b, err := checkpoint.EncodeState(p.stateTarget)
		if err != nil {
			return nil, err
		}
		snap.AppState = b
	}
	p.engine.OnCheckpoint(snap)
	inScope := make(map[int]bool, len(scope))
	for _, r := range scope {
		inScope[r] = true
	}
	for _, m := range p.pending {
		if inScope[m.Src] {
			// Intra-scope traffic: include exactly the pre-snapshot
			// epoch; later-epoch messages belong to the post-checkpoint
			// execution and will be regenerated on rollback.
			if m.Epoch < seq {
				snap.Mailbox = append(snap.Mailbox, m)
			}
		} else {
			// Inter-cluster traffic: the checkpoint holds it; the
			// sender-side log watermark accounts for it.
			snap.Mailbox = append(snap.Mailbox, m)
		}
	}
	for _, m := range snap.Mailbox {
		// Modeled wire size (payload + piggybacked protocol data) plus an
		// envelope constant, matching Snapshot.EncodedSize.
		snap.ModelBytes += int64(m.Wire()) + 64
	}
	return snap, nil
}

func (p *Proc) cluster() int { return p.rt.topo.ClusterOf[p.rank] }

// publish advances the process's send frontier to its clock, letting gated
// receivers elsewhere stop waiting on a stale lower bound. Purely a
// real-time liveness aid: frontiers never reorder deliveries.
func (p *Proc) publish() { p.rt.net.Publish(p.rank, p.clock.Now()) }

// --- rollback.Proc interface ---

// Rank implements rollback.Proc.
func (p *Proc) Rank() int { return p.rank }

// Topo implements rollback.Proc.
func (p *Proc) Topo() *rollback.Topology { return p.rt.topo }

// Clock implements rollback.Proc.
func (p *Proc) Clock() *vtime.Clock { return p.clock }

// Model implements rollback.Proc.
func (p *Proc) Model() netmodel.Model { return p.rt.model }

// Metrics implements rollback.Proc.
func (p *Proc) Metrics() *rollback.Metrics { return &p.metrics }

// SendCtl implements rollback.Proc.
func (p *Proc) SendCtl(dst int, body any, wireBytes int) {
	p.clock.Advance(p.rt.model.SendOverhead(wireBytes))
	m := &transport.Msg{
		Src: p.rank, Dst: dst, Kind: transport.Ctl,
		CtlBody: body, WireLen: wireBytes,
		SendVT: p.clock.Now(), Epoch: p.epoch,
	}
	p.metrics.CtlMsgs++
	_ = p.rt.net.Send(m)
}

// SendAppRaw implements rollback.Proc: log replay of a fully formed
// application message.
func (p *Proc) SendAppRaw(m *transport.Msg) {
	p.clock.Advance(p.rt.model.SendOverhead(m.Wire()))
	m.SendVT = p.clock.Now()
	m.Epoch = p.epoch
	_ = p.rt.net.Send(m)
}

// WaitCtl implements rollback.Proc.
func (p *Proc) WaitCtl(pred func() bool) error { return p.waitCtl(pred) }

// RecoveryID implements rollback.Proc.
func (p *Proc) RecoveryID() int { return p.rt.cfg.NP }

// HeldFrom implements rollback.Proc: the maximum application-message date
// held undelivered from src.
func (p *Proc) HeldFrom(src int) int64 {
	var max int64
	for _, m := range p.pending {
		if m.Src == src && m.Date > max {
			max = m.Date
		}
	}
	return max
}

// HeldEntries implements rollback.Proc.
func (p *Proc) HeldEntries(src int) []rollback.HeldMsg {
	var out []rollback.HeldMsg
	for _, m := range p.pending {
		if m.Src == src {
			out = append(out, rollback.HeldMsg{Date: m.Date, Phase: m.Phase})
		}
	}
	return out
}
