package mpi_test

import (
	"fmt"
	"testing"
	"time"

	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/vtime"
)

// ringState is a simple checkpointable iterative program: each iteration,
// rank r sends its accumulator to (r+1)%np, receives from (r-1+np)%np, and
// folds the received value in. Fully send-deterministic.
type ringState struct {
	Iter int
	Acc  int64
}

func ringProgram(iters int) mpi.Program {
	return func(c *mpi.Comm) error {
		st := &ringState{Acc: int64(c.Rank() + 1)}
		if _, err := c.Restore(st); err != nil {
			return err
		}
		np := c.Size()
		next := (c.Rank() + 1) % np
		prev := (c.Rank() - 1 + np) % np
		for st.Iter < iters {
			payload := fmt.Sprintf("%d", st.Acc)
			if err := c.Send(next, 7, []byte(payload)); err != nil {
				return err
			}
			got, _, err := c.Recv(prev, 7)
			if err != nil {
				return err
			}
			var v int64
			fmt.Sscanf(string(got), "%d", &v)
			st.Acc = st.Acc*31 + v
			if err := c.Compute(10 * vtime.Microsecond); err != nil {
				return err
			}
			// The state must describe the next iteration before the
			// checkpoint point (see Comm.Checkpoint).
			st.Iter++
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
		c.SetResult(st.Acc)
		return nil
	}
}

func ringResults(t *testing.T, res *mpi.Result) []int64 {
	t.Helper()
	out := make([]int64, len(res.Results))
	for i, v := range res.Results {
		acc, ok := v.(int64)
		if !ok {
			t.Fatalf("rank %d: missing result (%T)", i, v)
		}
		out[i] = acc
	}
	return out
}

func TestRingNativeFailureFree(t *testing.T) {
	res, err := mpi.Run(mpi.Config{
		NP:       6,
		Model:    netmodel.Myrinet10G(),
		Protocol: rollback.Native(),
		Watchdog: 30 * time.Second,
	}, ringProgram(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan not positive: %v", res.Makespan)
	}
	accs := ringResults(t, res)
	if accs[0] == 0 {
		t.Fatal("rank 0 produced zero accumulator")
	}
	if res.Totals.AppSends != 6*10 {
		t.Fatalf("expected 60 sends, got %d", res.Totals.AppSends)
	}
}

func TestRingHydEEFailureFreeMatchesNative(t *testing.T) {
	native, err := mpi.Run(mpi.Config{
		NP: 6, Protocol: rollback.Native(), Watchdog: 30 * time.Second,
	}, ringProgram(10))
	if err != nil {
		t.Fatal(err)
	}
	topo := rollback.NewTopology([]int{0, 0, 1, 1, 2, 2})
	hydee, err := mpi.Run(mpi.Config{
		NP: 6, Topo: topo, Protocol: core.New(),
		CheckpointEvery: 3, Watchdog: 30 * time.Second,
	}, ringProgram(10))
	if err != nil {
		t.Fatal(err)
	}
	na, hy := ringResults(t, native), ringResults(t, hydee)
	for r := range na {
		if na[r] != hy[r] {
			t.Fatalf("rank %d: native acc %d != hydee acc %d", r, na[r], hy[r])
		}
	}
	if hydee.Totals.LoggedMsgs == 0 {
		t.Fatal("hydee logged no inter-cluster messages")
	}
	if hydee.Totals.LoggedMsgs >= hydee.Totals.AppSends {
		t.Fatalf("hydee logged all messages (%d of %d); clustering ineffective",
			hydee.Totals.LoggedMsgs, hydee.Totals.AppSends)
	}
}

func TestRingHydEERecoversFromFailure(t *testing.T) {
	topo := rollback.NewTopology([]int{0, 0, 1, 1, 2, 2})
	run := func(sched *failure.Schedule) []int64 {
		t.Helper()
		res, err := mpi.Run(mpi.Config{
			NP: 6, Topo: topo, Protocol: core.New(),
			CheckpointEvery: 3,
			Failures:        sched,
			Watchdog:        30 * time.Second,
		}, ringProgram(12))
		if err != nil {
			t.Fatal(err)
		}
		if sched != nil && len(res.Rounds) != len(sched.Events) {
			t.Fatalf("expected %d recovery rounds, got %d", len(sched.Events), len(res.Rounds))
		}
		return ringResults(t, res)
	}
	clean := run(nil)
	failed := run(failure.NewSchedule(failure.Event{
		Ranks: []int{2},
		When:  failure.Trigger{AfterCheckpoints: 2},
	}))
	for r := range clean {
		if clean[r] != failed[r] {
			t.Fatalf("rank %d: failure-free acc %d != recovered acc %d", r, clean[r], failed[r])
		}
	}
}

func TestRingHydEEConcurrentClusterFailures(t *testing.T) {
	topo := rollback.NewTopology([]int{0, 0, 1, 1, 2, 2})
	run := func(sched *failure.Schedule) []int64 {
		t.Helper()
		res, err := mpi.Run(mpi.Config{
			NP: 6, Topo: topo, Protocol: core.New(),
			CheckpointEvery: 4,
			Failures:        sched,
			Watchdog:        30 * time.Second,
		}, ringProgram(12))
		if err != nil {
			t.Fatal(err)
		}
		return ringResults(t, res)
	}
	clean := run(nil)
	failed := run(failure.NewSchedule(failure.Event{
		Ranks: []int{0, 5}, // two clusters fail concurrently
		When:  failure.Trigger{AfterCheckpoints: 1},
	}))
	for r := range clean {
		if clean[r] != failed[r] {
			t.Fatalf("rank %d: failure-free acc %d != recovered acc %d", r, clean[r], failed[r])
		}
	}
}
