package mpi_test

import (
	"fmt"
	"testing"
	"time"

	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/rollback"
)

// mpiFailureSchedule wraps an optional failure schedule for test helpers.
type mpiFailureSchedule struct{ s *failure.Schedule }

func failAfterCkpt(rank, n int) *mpiFailureSchedule {
	return &mpiFailureSchedule{s: failure.NewSchedule(failure.Event{
		Ranks: []int{rank},
		When:  failure.Trigger{AfterCheckpoints: n},
	})}
}

// runColl executes a program on np ranks under HydEE with two clusters so
// collectives cross cluster boundaries (their legs are protocol-visible).
func runColl(t *testing.T, np int, prog mpi.Program) *mpi.Result {
	t.Helper()
	assign := make([]int, np)
	for i := range assign {
		assign[i] = i * 2 / np
	}
	res, err := mpi.Run(mpi.Config{
		NP:       np,
		Topo:     rollback.NewTopology(assign),
		Protocol: core.New(),
		Watchdog: 30 * time.Second,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBarrier(t *testing.T) {
	for _, np := range []int{1, 2, 3, 5, 8} {
		res := runColl(t, np, func(c *mpi.Comm) error {
			for i := 0; i < 3; i++ {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			c.SetResult(true)
			return nil
		})
		for r := 0; r < np; r++ {
			if res.Results[r] != true {
				t.Fatalf("np=%d: rank %d did not pass the barrier", np, r)
			}
		}
	}
}

func TestBcast(t *testing.T) {
	for _, np := range []int{1, 2, 3, 6, 7, 8} {
		for root := 0; root < np; root += 2 {
			res := runColl(t, np, func(c *mpi.Comm) error {
				var data []byte
				if c.Rank() == root {
					data = []byte(fmt.Sprintf("root=%d", root))
				}
				got, err := c.Bcast(root, data, 0)
				if err != nil {
					return err
				}
				c.SetResult(string(got))
				return nil
			})
			want := fmt.Sprintf("root=%d", root)
			for r := 0; r < np; r++ {
				if res.Results[r] != want {
					t.Fatalf("np=%d root=%d: rank %d got %q", np, root, r, res.Results[r])
				}
			}
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, np := range []int{1, 2, 4, 5, 8} {
		// Sum of ranks 0..np-1 and max.
		wantSum := float64(np*(np-1)) / 2
		res := runColl(t, np, func(c *mpi.Comm) error {
			v := []float64{float64(c.Rank()), float64(c.Rank())}
			sum, err := c.Reduce(0, []float64{v[0]}, mpi.OpSum, 0)
			if err != nil {
				return err
			}
			all, err := c.Allreduce([]float64{v[1]}, mpi.OpMax, 0)
			if err != nil {
				return err
			}
			mn, err := c.Allreduce([]float64{v[0]}, mpi.OpMin, 0)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				c.SetResult([3]float64{sum[0], all[0], mn[0]})
			} else {
				c.SetResult([3]float64{-1, all[0], mn[0]})
			}
			return nil
		})
		got := res.Results[0].([3]float64)
		if got[0] != wantSum {
			t.Fatalf("np=%d: reduce sum %v, want %v", np, got[0], wantSum)
		}
		for r := 0; r < np; r++ {
			g := res.Results[r].([3]float64)
			if g[1] != float64(np-1) || g[2] != 0 {
				t.Fatalf("np=%d rank %d: allreduce max/min %v", np, r, g)
			}
		}
	}
}

func TestAllgather(t *testing.T) {
	np := 6
	res := runColl(t, np, func(c *mpi.Comm) error {
		out, err := c.Allgather([]byte{byte(c.Rank() + 100)}, 0)
		if err != nil {
			return err
		}
		s := ""
		for _, b := range out {
			s += fmt.Sprint(int(b[0]) - 100)
		}
		c.SetResult(s)
		return nil
	})
	for r := 0; r < np; r++ {
		if res.Results[r] != "012345" {
			t.Fatalf("rank %d allgather %q", r, res.Results[r])
		}
	}
}

func TestAlltoall(t *testing.T) {
	np := 5
	res := runColl(t, np, func(c *mpi.Comm) error {
		blocks := make([][]byte, np)
		for d := range blocks {
			blocks[d] = []byte{byte(c.Rank()), byte(d)}
		}
		got, err := c.Alltoall(blocks, 0)
		if err != nil {
			return err
		}
		// got[s] must be {s, myrank}.
		for s, b := range got {
			if int(b[0]) != s || int(b[1]) != c.Rank() {
				return fmt.Errorf("rank %d: block from %d is %v", c.Rank(), s, b)
			}
		}
		c.SetResult(true)
		return nil
	})
	for r := 0; r < np; r++ {
		if res.Results[r] != true {
			t.Fatalf("rank %d alltoall failed", r)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	np := 6
	res := runColl(t, np, func(c *mpi.Comm) error {
		got, err := c.Gather(2, []byte{byte(c.Rank() * 3)}, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			for r := 0; r < np; r++ {
				if int(got[r][0]) != r*3 {
					return fmt.Errorf("gather slot %d = %v", r, got[r])
				}
			}
		}
		var blocks [][]byte
		if c.Rank() == 2 {
			blocks = make([][]byte, np)
			for r := range blocks {
				blocks[r] = []byte{byte(r * 5)}
			}
		}
		mine, err := c.Scatter(2, blocks, 0)
		if err != nil {
			return err
		}
		c.SetResult(int(mine[0]))
		return nil
	})
	for r := 0; r < np; r++ {
		if res.Results[r] != r*5 {
			t.Fatalf("rank %d scatter got %v", r, res.Results[r])
		}
	}
}

func TestCollectivesSurviveFailure(t *testing.T) {
	// An allreduce-heavy program recovers correctly: collective legs are
	// logged/replayed like any message, and the restored collSeq keeps
	// re-executed collectives aligned with survivors.
	np := 8
	assign := []int{0, 0, 0, 0, 1, 1, 1, 1}
	prog := func(c *mpi.Comm) error {
		st := &struct {
			Iter int
			Acc  float64
		}{Acc: float64(c.Rank())}
		if _, err := c.Restore(st); err != nil {
			return err
		}
		for st.Iter < 10 {
			out, err := c.Allreduce([]float64{st.Acc}, mpi.OpSum, 0)
			if err != nil {
				return err
			}
			st.Acc = st.Acc/2 + out[0]/16
			st.Iter++
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
		c.SetResult(st.Acc)
		return nil
	}
	run := func(sched *mpiFailureSchedule) *mpi.Result {
		res, err := mpi.Run(mpi.Config{
			NP: np, Topo: rollback.NewTopology(assign), Protocol: core.New(),
			CheckpointEvery: 3, Failures: sched.s, Watchdog: 30 * time.Second,
		}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(&mpiFailureSchedule{})
	failed := run(failAfterCkpt(6, 1))
	for r := 0; r < np; r++ {
		if clean.Results[r] != failed.Results[r] {
			t.Fatalf("rank %d: %v vs %v", r, clean.Results[r], failed.Results[r])
		}
	}
}
