package mpi_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/vtime"
)

func TestConfigValidation(t *testing.T) {
	if _, err := mpi.Run(mpi.Config{NP: 0}, func(c *mpi.Comm) error { return nil }); err == nil {
		t.Fatal("accepted NP=0")
	}
	topo := rollback.NewTopology([]int{0, 0})
	if _, err := mpi.Run(mpi.Config{NP: 3, Topo: topo}, func(c *mpi.Comm) error { return nil }); err == nil {
		t.Fatal("accepted mismatched topology")
	}
}

func TestProgramErrorIsFatal(t *testing.T) {
	boom := errors.New("boom")
	_, err := mpi.Run(mpi.Config{NP: 2, Watchdog: 10 * time.Second}, func(c *mpi.Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		_, _, err := c.Recv(1, 1) // would block forever
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("fatal error not propagated: %v", err)
	}
}

func TestNativeCannotTolerateFailures(t *testing.T) {
	_, err := mpi.Run(mpi.Config{
		NP:       2,
		Watchdog: 10 * time.Second,
		Failures: failure.NewSchedule(failure.Event{Ranks: []int{0}, When: failure.Trigger{AfterSends: 1}}),
	}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("x")); err != nil {
				return err
			}
			if err := c.Send(1, 1, []byte("y")); err != nil {
				return err
			}
		} else {
			for i := 0; i < 2; i++ {
				if _, _, err := c.Recv(0, 1); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "cannot tolerate") {
		t.Fatalf("native run with failure should fail loudly, got %v", err)
	}
}

func TestWatchdogDetectsDeadlock(t *testing.T) {
	_, err := mpi.Run(mpi.Config{
		NP:       2,
		Watchdog: 500 * time.Millisecond,
	}, func(c *mpi.Comm) error {
		// Both ranks wait for a message nobody sends.
		_, _, err := c.Recv((c.Rank()+1)%2, 42)
		return err
	})
	if !errors.Is(err, mpi.ErrDeadlock) {
		t.Fatalf("watchdog did not fire: %v", err)
	}
	var re *mpi.RunError
	if !errors.As(err, &re) || re.Phase != mpi.PhaseSupervise {
		t.Fatalf("want *RunError in phase %q, got %#v", mpi.PhaseSupervise, err)
	}
}

func TestSelfSendRejected(t *testing.T) {
	_, err := mpi.Run(mpi.Config{NP: 1, Watchdog: 10 * time.Second}, func(c *mpi.Comm) error {
		return c.Send(0, 1, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "self-send") {
		t.Fatalf("self-send accepted: %v", err)
	}
}

func TestInvalidDestinationRejected(t *testing.T) {
	_, err := mpi.Run(mpi.Config{NP: 1, Watchdog: 10 * time.Second}, func(c *mpi.Comm) error {
		return c.Send(7, 1, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("invalid destination accepted: %v", err)
	}
}

func TestWildcardReceive(t *testing.T) {
	res, err := mpi.Run(mpi.Config{NP: 4, Watchdog: 10 * time.Second}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			sum := 0
			for i := 0; i < 3; i++ {
				data, st, err := c.Recv(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return err
				}
				sum += int(data[0]) + st.Tag
			}
			c.SetResult(sum)
			return nil
		}
		return c.Send(0, c.Rank()*10, []byte{byte(c.Rank())})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0] != (1+10)+(2+20)+(3+30) {
		t.Fatalf("wildcard sum %v", res.Results[0])
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	res, err := mpi.Run(mpi.Config{NP: 2, Watchdog: 10 * time.Second}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			r1 := c.Isend(1, 1, []byte("a"))
			r2 := c.Isend(1, 2, []byte("b"))
			return mpi.WaitAll(r1, r2)
		}
		r1 := c.Irecv(0, 2)
		r2 := c.Irecv(0, 1)
		d1, _, err := r1.Wait()
		if err != nil {
			return err
		}
		d2, _, err := r2.Wait()
		if err != nil {
			return err
		}
		c.SetResult(string(d1) + string(d2))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[1] != "ba" {
		t.Fatalf("irecv got %v", res.Results[1])
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	res, err := mpi.Run(mpi.Config{
		NP:    2,
		Model: netmodel.Myrinet10G(),
	}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Compute(1 * vtime.Millisecond); err != nil {
				return err
			}
			return c.Send(1, 1, []byte("x"))
		}
		_, _, err := c.Recv(0, 1)
		c.SetResult(int64(c.Now()))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver's clock must include sender compute + wire latency.
	got := res.Results[1].(int64)
	if got < int64(vtime.Millisecond) {
		t.Fatalf("receiver clock %v did not inherit sender time", got)
	}
	if res.Makespan < vtime.Time(vtime.Millisecond) {
		t.Fatalf("makespan %v too small", res.Makespan)
	}
}

func TestCheckpointScheduleStagger(t *testing.T) {
	assign := []int{0, 0, 1, 1}
	run := func(stagger bool) *mpi.Result {
		res, err := mpi.Run(mpi.Config{
			NP: 4, Topo: rollback.NewTopology(assign), Protocol: core.New(),
			CheckpointEvery: 2, CheckpointStagger: stagger,
			Watchdog: 10 * time.Second,
		}, func(c *mpi.Comm) error {
			st := &struct{ Iter int }{}
			if _, err := c.Restore(st); err != nil {
				return err
			}
			next := (c.Rank() + 1) % 4
			prev := (c.Rank() + 3) % 4
			for st.Iter < 6 {
				if err := c.Send(next, 1, []byte{1}); err != nil {
					return err
				}
				if _, _, err := c.Recv(prev, 1); err != nil {
					return err
				}
				st.Iter++
				if err := c.Checkpoint(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	stag := run(true)
	if plain.Totals.Checkpoints == 0 || stag.Totals.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	// Staggering changes the schedule but not the count per cluster much;
	// both must have checkpointed all 4 ranks.
	if plain.Totals.Checkpoints%4 != 0 {
		t.Fatalf("unaligned checkpoint count %d", plain.Totals.Checkpoints)
	}
}

func TestPairByteMatrix(t *testing.T) {
	res, err := mpi.Run(mpi.Config{NP: 3, Watchdog: 10 * time.Second}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.SendW(2, 1, []byte{1}, 5000)
		}
		if c.Rank() == 2 {
			_, _, err := c.Recv(0, 1)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairBytes[0*3+2] != 5000 || res.PairMsgs[0*3+2] != 1 {
		t.Fatalf("pair matrix wrong: %v", res.PairBytes)
	}
}

func TestFinishedProcessStillServesRecovery(t *testing.T) {
	// Rank 0 (cluster 0) finishes immediately after one send; cluster 1
	// then fails and needs rank 0's logged message replayed. The
	// lingering process must answer the rollback notification.
	assign := []int{0, 1}
	prog := func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 9, []byte("payload"))
		}
		st := &struct{ Stage int }{}
		if _, err := c.Restore(st); err != nil {
			return err
		}
		d, _, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		// The compute gives the failure trigger an interaction point
		// after the delivery (the injector fires once, pre-restart).
		if err := c.Compute(vtime.Microsecond); err != nil {
			return err
		}
		c.SetResult(string(d))
		return nil
	}
	res, err := mpi.Run(mpi.Config{
		NP: 2, Topo: rollback.NewTopology(assign), Protocol: core.New(),
		Failures: failure.NewSchedule(failure.Event{
			Ranks: []int{1},
			When:  failure.Trigger{AtVT: vtime.Time(1)},
		}),
		Model:    netmodel.Myrinet10G(),
		Watchdog: 15 * time.Second,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[1] != "payload" {
		t.Fatalf("restarted rank got %v", res.Results[1])
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
}
