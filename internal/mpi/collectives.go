package mpi

import (
	"fmt"
)

// Collectives are built over point-to-point messages so the protocol layer
// sees every constituent message as a first-class application-level event:
// inter-cluster legs of a collective are logged and piggybacked exactly
// like plain sends, which is what makes FT's all-to-all traffic expensive
// to log (Table I).
//
// Every algorithm below uses source- and tag-directed receives with a
// deterministic combine order, so collectives are send-deterministic and
// replay identically during recovery.

// Reserved tag space for collectives: application tags must stay below
// collTagBase.
const (
	collTagBase = 1 << 26
	collOpShift = 20
	collSeqMask = 1<<collOpShift - 1
)

type collOp int

const (
	opBarrier collOp = iota + 1
	opBcast
	opReduce
	opAllgather
	opAlltoall
	opGatherScatter
)

// collTag derives the tag for one step of one collective instance. seq
// disambiguates successive collectives; stage disambiguates steps within
// algorithms that reuse (src, dst) pairs.
func collTag(op collOp, seq int64, stage int) int {
	return collTagBase + int(op)<<collOpShift + int((seq*64+int64(stage))&collSeqMask)
}

// ReduceOp is a reduction operator over float64 vectors.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(dst, src []float64) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// Barrier blocks until all ranks reach it (dissemination algorithm).
func (c *Comm) Barrier() error {
	np := c.Size()
	if np == 1 {
		return nil
	}
	seq := c.nextCollSeq()
	rank := c.Rank()
	stage := 0
	for k := 1; k < np; k <<= 1 {
		dst := (rank + k) % np
		src := (rank - k + np) % np
		tag := collTag(opBarrier, seq, stage)
		if err := c.p.send(dst, tag, nil, 1); err != nil {
			return err
		}
		if _, _, err := c.Recv(src, tag); err != nil {
			return err
		}
		stage++
	}
	return nil
}

// Bcast broadcasts root's data to all ranks over a binomial tree and
// returns the data everywhere. wireBytes models the payload size (0 uses
// len(data)).
func (c *Comm) Bcast(root int, data []byte, wireBytes int) ([]byte, error) {
	np := c.Size()
	if root < 0 || root >= np {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	if np == 1 {
		return data, nil
	}
	seq := c.nextCollSeq()
	rank := c.Rank()
	vrank := (rank - root + np) % np
	tag := collTag(opBcast, seq, 0)

	mask := 1
	if vrank != 0 {
		for ; mask < np; mask <<= 1 {
			if vrank&mask != 0 {
				src := ((vrank - mask) + root) % np
				got, _, err := c.Recv(src, tag)
				if err != nil {
					return nil, err
				}
				data = got
				break
			}
		}
	} else {
		for mask < np {
			mask <<= 1
		}
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank&mask == 0 && vrank+mask < np {
			dst := (vrank + mask + root) % np
			if err := c.p.send(dst, tag, data, wireBytes); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Reduce combines vals from all ranks at root over a binomial tree with a
// deterministic combine order; the result is meaningful at root only.
func (c *Comm) Reduce(root int, vals []float64, op ReduceOp, wireBytes int) ([]float64, error) {
	np := c.Size()
	if root < 0 || root >= np {
		return nil, fmt.Errorf("mpi: reduce root %d out of range", root)
	}
	acc := append([]float64(nil), vals...)
	if np == 1 {
		return acc, nil
	}
	seq := c.nextCollSeq()
	rank := c.Rank()
	vrank := (rank - root + np) % np
	tag := collTag(opReduce, seq, 0)

	for mask := 1; mask < np; mask <<= 1 {
		if vrank&mask == 0 {
			peer := vrank | mask
			if peer < np {
				src := (peer + root) % np
				got, _, err := c.Recv(src, tag)
				if err != nil {
					return nil, err
				}
				part, err := BytesToFloat64s(got)
				if err != nil {
					return nil, err
				}
				if len(part) != len(acc) {
					return nil, fmt.Errorf("mpi: reduce length mismatch: %d vs %d", len(part), len(acc))
				}
				op.apply(acc, part)
			}
		} else {
			dst := (vrank - mask + root) % np
			if err := c.p.send(dst, tag, Float64sToBytes(acc), wireBytes); err != nil {
				return nil, err
			}
			break
		}
	}
	return acc, nil
}

// Allreduce combines vals across all ranks and returns the result
// everywhere (reduce to rank 0, then broadcast).
func (c *Comm) Allreduce(vals []float64, op ReduceOp, wireBytes int) ([]float64, error) {
	red, err := c.Reduce(0, vals, op, wireBytes)
	if err != nil {
		return nil, err
	}
	var payload []byte
	if c.Rank() == 0 {
		payload = Float64sToBytes(red)
	}
	out, err := c.Bcast(0, payload, wireBytes)
	if err != nil {
		return nil, err
	}
	return BytesToFloat64s(out)
}

// Allgather gathers each rank's block at every rank (ring algorithm).
// wirePer models the per-block size.
func (c *Comm) Allgather(mine []byte, wirePer int) ([][]byte, error) {
	np := c.Size()
	out := make([][]byte, np)
	rank := c.Rank()
	out[rank] = mine
	if np == 1 {
		return out, nil
	}
	seq := c.nextCollSeq()
	next := (rank + 1) % np
	prev := (rank - 1 + np) % np
	for step := 1; step < np; step++ {
		sendIdx := (rank - step + 1 + np) % np
		recvIdx := (rank - step + np) % np
		tag := collTag(opAllgather, seq, step)
		if err := c.p.send(next, tag, out[sendIdx], wirePer); err != nil {
			return nil, err
		}
		got, _, err := c.Recv(prev, tag)
		if err != nil {
			return nil, err
		}
		out[recvIdx] = got
	}
	return out, nil
}

// Alltoall sends blocks[d] to rank d and returns the blocks received from
// every rank (pairwise-shift exchange). wirePer models the per-block size.
// This is FT's transpose workhorse.
func (c *Comm) Alltoall(blocks [][]byte, wirePer int) ([][]byte, error) {
	np := c.Size()
	if len(blocks) != np {
		return nil, fmt.Errorf("mpi: alltoall needs %d blocks, got %d", np, len(blocks))
	}
	rank := c.Rank()
	out := make([][]byte, np)
	out[rank] = blocks[rank]
	if np == 1 {
		return out, nil
	}
	seq := c.nextCollSeq()
	for step := 1; step < np; step++ {
		dst := (rank + step) % np
		src := (rank - step + np) % np
		tag := collTag(opAlltoall, seq, step)
		if err := c.p.send(dst, tag, blocks[dst], wirePer); err != nil {
			return nil, err
		}
		got, _, err := c.Recv(src, tag)
		if err != nil {
			return nil, err
		}
		out[src] = got
	}
	return out, nil
}

// Gather collects each rank's block at root (linear, deterministic order);
// non-roots receive nil.
func (c *Comm) Gather(root int, mine []byte, wirePer int) ([][]byte, error) {
	np := c.Size()
	seq := c.nextCollSeq()
	tag := collTag(opGatherScatter, seq, 0)
	if c.Rank() != root {
		return nil, c.p.send(root, tag, mine, wirePer)
	}
	out := make([][]byte, np)
	out[root] = mine
	for r := 0; r < np; r++ {
		if r == root {
			continue
		}
		got, _, err := c.Recv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = got
	}
	return out, nil
}

// Scatter distributes root's blocks to all ranks (linear) and returns this
// rank's block.
func (c *Comm) Scatter(root int, blocks [][]byte, wirePer int) ([]byte, error) {
	np := c.Size()
	seq := c.nextCollSeq()
	tag := collTag(opGatherScatter, seq, 1)
	if c.Rank() == root {
		if len(blocks) != np {
			return nil, fmt.Errorf("mpi: scatter needs %d blocks, got %d", np, len(blocks))
		}
		for r := 0; r < np; r++ {
			if r == root {
				continue
			}
			if err := c.p.send(r, tag, blocks[r], wirePer); err != nil {
				return nil, err
			}
		}
		return blocks[root], nil
	}
	got, _, err := c.Recv(root, tag)
	return got, err
}

func (c *Comm) nextCollSeq() int64 {
	c.p.collSeq++
	return c.p.collSeq
}
