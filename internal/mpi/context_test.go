package mpi_test

// Context plumbing tests: cancellation and deadlines unwind every rank
// goroutine promptly and surface ErrCanceled.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hydee/internal/mpi"
)

// deadlocked returns a program in which every rank waits forever.
func deadlocked(c *mpi.Comm) error {
	_, _, err := c.Recv((c.Rank()+1)%c.Size(), 42)
	return err
}

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing the test after two seconds.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRunContextCancelUnwindsDeadlock(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := mpi.RunContext(ctx, mpi.Config{NP: 8, Watchdog: time.Minute}, deadlocked)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let every rank block in Recv
	start := time.Now()
	cancel()
	select {
	case err := <-errCh:
		if took := time.Since(start); took > 100*time.Millisecond {
			t.Errorf("cancellation took %v, want < 100ms", took)
		}
		if !errors.Is(err, mpi.ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cause not preserved: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	waitGoroutines(t, before)
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := mpi.RunContext(ctx, mpi.Config{NP: 2, Watchdog: time.Minute}, deadlocked)
	if !errors.Is(err, mpi.ErrCanceled) {
		t.Fatalf("want ErrCanceled on deadline, got %v", err)
	}
}

func TestRunContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var events []mpi.EventKind
	_, err := mpi.RunContext(ctx, mpi.Config{
		NP: 2, Watchdog: time.Minute,
		Observer: mpi.ObserverFunc(func(ev mpi.Event) { events = append(events, ev.Kind) }),
	}, deadlocked)
	if !errors.Is(err, mpi.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// Every EvRunStart is terminated by exactly one terminal event; on
	// the error path that is EvRunAbort.
	if len(events) == 0 || events[0] != mpi.EvRunStart || events[len(events)-1] != mpi.EvRunAbort {
		t.Fatalf("lifecycle stream not delimited: %v", events)
	}
}

func TestRunContextCleanRunIgnoresContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := mpi.RunContext(ctx, mpi.Config{NP: 2, Watchdog: 10 * time.Second}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte{1})
		}
		_, _, err := c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
}
