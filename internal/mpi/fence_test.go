package mpi_test

// End-to-end tests of the virtual-time kill fence: failure rounds declare
// the scope dead at the detection timestamp, drain in-flight work at or
// below the fence, and only then kill — so the restored checkpoint
// sequence, the rolled-back incarnations' traffic and the recovery stats
// are byte-reproducible wherever the failure lands, including exact ties
// with queued checkpoint writes and failures overlapping a recovery round.

import (
	"reflect"
	"testing"
	"time"

	"hydee/internal/apps"
	"hydee/internal/checkpoint"
	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/vtime"
)

// runFenced executes cfg/prog twice with fresh failure schedules and fails
// unless the two results are indistinguishable — makespan, rounds, totals,
// per-rank metrics, traffic matrices, store stats and digests.
func runFenced(t *testing.T, cfg mpi.Config, prog mpi.Program) *mpi.Result {
	t.Helper()
	run := func() *mpi.Result {
		c := cfg
		if cfg.Failures != nil {
			c.Failures = failure.NewSchedule(cfg.Failures.Events...)
		}
		if cfg.Store != nil {
			// Stores accumulate state; each run builds its own of the same
			// shape via the spec below.
			t.Fatal("runFenced: use cfg.Store == nil and storeBPS instead")
		}
		res, err := mpi.Run(c, prog)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("makespan not reproducible: %v vs %v", a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.Rounds, b.Rounds) {
		t.Errorf("recovery stats not reproducible:\n  %+v\n  %+v", a.Rounds, b.Rounds)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("results differ beyond makespan/rounds:\n  %+v\n  %+v", a, b)
	}
	return a
}

// TestExactTieQueuedSaveKillReproducible pins the boundary of the fence: a
// failure detected at exactly the virtual time a scope peer's checkpoint
// write was issued must let that write complete ("at or below the fence"),
// so the whole cluster restores from the new sequence rather than racing
// between sequence 1 and the initial state.
func TestExactTieQueuedSaveKillReproducible(t *testing.T) {
	// Ranks 0,1 form cluster A, ranks 2,3 cluster B; the ideal model makes
	// every virtual stamp hand-computable (1ns minimum latency). All ranks
	// compute 100ns and checkpoint: markers merge the cluster clocks to
	// 101, so every save is issued at exactly VT 101. Rank 2 (cluster B)
	// fails at the post-save injection point of its first checkpoint, i.e.
	// at detection VT 101 — the exact issue VT of rank 3's queued save.
	cfg := mpi.Config{
		NP:              4,
		Topo:            rollback.NewTopology([]int{0, 0, 1, 1}),
		Protocol:        core.New(),
		Model:           netmodel.Ideal(),
		CheckpointEvery: 1,
		Failures: failure.NewSchedule(failure.Event{
			Ranks: []int{2},
			When:  failure.Trigger{AtVT: vtime.Time(101)},
		}),
		Watchdog: 30 * time.Second,
	}
	prog := func(c *mpi.Comm) error {
		st := &struct{ Iter int }{}
		if _, err := c.Restore(st); err != nil {
			return err
		}
		for st.Iter < 2 {
			if err := c.Compute(100 * vtime.Nanosecond); err != nil {
				return err
			}
			st.Iter++
			if err := c.Checkpoint(); err != nil {
				return err
			}
		}
		c.SetResult(st.Iter)
		return nil
	}
	res := runFenced(t, cfg, prog)
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds %d, want 1", len(res.Rounds))
	}
	if res.Rounds[0].StartVT != 101 {
		t.Fatalf("detection VT %v, want the exact-tie stamp 101", res.Rounds[0].StartVT)
	}
	// Both cluster-B saves were issued at the fence and must have
	// completed: the cluster restores from sequence 1 (two snapshot
	// loads), not from the initial state.
	if res.StoreStats.Loads != 2 {
		t.Fatalf("restore loaded %d snapshots, want 2 (cluster B from seq 1)", res.StoreStats.Loads)
	}
	for r, v := range res.Results {
		if v != 2 {
			t.Fatalf("rank %d result %v, want 2 iterations", r, v)
		}
	}
}

// TestTwoVictimsOneRoundReproducible kills two ranks of different clusters
// in one concurrent failure event, mid-checkpoint-wave under a storage
// bandwidth model, and asserts the round and everything downstream are
// byte-stable.
func TestTwoVictimsOneRoundReproducible(t *testing.T) {
	assign := []int{0, 0, 1, 1, 2, 2}
	cfg := mpi.Config{
		NP:              6,
		Topo:            rollback.NewTopology(assign),
		Protocol:        core.New(),
		Model:           netmodel.Myrinet10G(),
		CheckpointEvery: 2,
		Failures: failure.NewSchedule(failure.Event{
			Ranks: []int{2, 4},
			When:  failure.Trigger{AfterCheckpoints: 1},
		}),
		Watchdog: 30 * time.Second,
	}
	mkStore := func() checkpoint.Store { return checkpoint.NewMemStore(2e9, 2e9) }
	clean := runStoreBacked(t, cfg, mkStore, apps.Stencil2D(8, 4096), false)
	failed := runStoreBacked(t, cfg, mkStore, apps.Stencil2D(8, 4096), true)
	if len(failed.Rounds) != 1 {
		t.Fatalf("rounds %d, want 1 (two victims, one concurrent event)", len(failed.Rounds))
	}
	if failed.Rounds[0].RolledBack != 4 {
		t.Fatalf("rolled back %d ranks, want the 4 of clusters 1 and 2", failed.Rounds[0].RolledBack)
	}
	for r := range clean.Results {
		if clean.Results[r] != failed.Results[r] {
			t.Fatalf("rank %d diverged after recovery: %v vs %v", r, clean.Results[r], failed.Results[r])
		}
	}
}

// TestFailureDuringRecoveryReproducible injects a second failure whose
// detection lands while the first round's recovery is still in flight
// (disjoint clusters) and asserts both rounds and the final state are
// byte-stable: the queued round's fence is declared at detection, so its
// scope cannot race ahead while the active round completes.
func TestFailureDuringRecoveryReproducible(t *testing.T) {
	assign := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	base := mpi.Config{
		NP:              12,
		Topo:            rollback.NewTopology(assign),
		Protocol:        core.New(),
		Model:           netmodel.Myrinet10G(),
		CheckpointEvery: 3,
		Watchdog:        30 * time.Second,
	}
	prog := apps.Stencil2D(10, 8192)

	// Probe: run with only the first failure to locate round 0's span,
	// then aim the second failure's trigger inside it.
	first := failure.Event{Ranks: []int{2}, When: failure.Trigger{AfterCheckpoints: 1}}
	probeCfg := base
	probeCfg.Failures = failure.NewSchedule(first)
	probe := runStoreBacked(t, probeCfg, func() checkpoint.Store { return checkpoint.NewMemStore(2e9, 2e9) }, prog, true)
	if len(probe.Rounds) != 1 {
		t.Fatalf("probe rounds %d, want 1", len(probe.Rounds))
	}
	r0 := probe.Rounds[0]
	midVT := r0.StartVT.Add(r0.EndVT.Sub(r0.StartVT) / 2)

	cfg := base
	cfg.Failures = failure.NewSchedule(first, failure.Event{
		Ranks: []int{9},
		When:  failure.Trigger{AtVT: midVT},
	})
	failed := runStoreBacked(t, cfg, func() checkpoint.Store { return checkpoint.NewMemStore(2e9, 2e9) }, prog, true)
	if len(failed.Rounds) != 2 {
		t.Fatalf("rounds %d, want 2", len(failed.Rounds))
	}
	if s := failed.Rounds[1].StartVT; s >= r0.EndVT {
		t.Fatalf("second failure detected at %v, after round 0 ended (%v) — the rounds did not overlap", s, r0.EndVT)
	}
	clean := runStoreBacked(t, base, func() checkpoint.Store { return checkpoint.NewMemStore(2e9, 2e9) }, prog, false)
	for r := range clean.Results {
		if clean.Results[r] != failed.Results[r] {
			t.Fatalf("rank %d diverged after overlapping rounds: %v vs %v", r, clean.Results[r], failed.Results[r])
		}
	}
}

// TestBlockedScopePeerDrainReproducible is the naive-drain deadlock
// regression: the victim dies before sending the message its cluster peer
// is blocked on. Draining the plane to the detection time must reap the
// blocked peer (victim-aware bounds) instead of letting it pin the plane
// until the watchdog fires.
func TestBlockedScopePeerDrainReproducible(t *testing.T) {
	cfg := mpi.Config{
		NP:       3,
		Topo:     rollback.NewTopology([]int{0, 0, 1}),
		Protocol: core.New(),
		Model:    netmodel.Myrinet10G(),
		Failures: failure.NewSchedule(failure.Event{
			Ranks: []int{0},
			When:  failure.Trigger{AfterSends: 1},
		}),
		// Short watchdog: a deadlocked drain fails fast and loudly.
		Watchdog: 10 * time.Second,
	}
	prog := func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0:
			if err := c.Send(1, 1, []byte("one")); err != nil {
				return err
			}
			// The injector fires here on the first incarnation: rank 1
			// never gets the second message and blocks on its dead peer.
			if err := c.Compute(vtime.Microsecond); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("two"))
		case 1:
			if _, _, err := c.Recv(0, 1); err != nil {
				return err
			}
			d, _, err := c.Recv(0, 2)
			if err != nil {
				return err
			}
			c.SetResult(string(d))
			return nil
		default:
			return c.Compute(vtime.Microsecond)
		}
	}
	res := runFenced(t, cfg, prog)
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds %d, want 1", len(res.Rounds))
	}
	if res.Results[1] != "two" {
		t.Fatalf("rank 1 got %v, want the replayed second message", res.Results[1])
	}
}

// TestReverseOrderDetectionsMergeReproducible closes the reverse-VT-order
// watchdog caveat: a compute-only victim's detection is quantized to its
// chunk end, so a failure triggered early can reach the supervisor with a
// LATER virtual detection time than a communicating victim's failure that
// reaches it afterwards. The first-arriving round can then never collect a
// report from the second failure's already-dead scope. Instead of the old
// watchdog abort, the starved round must be superseded by a merged round
// rolling back both clusters at their own fences, byte-reproducibly.
func TestReverseOrderDetectionsMergeReproducible(t *testing.T) {
	cfg := mpi.Config{
		NP:       4,
		Topo:     rollback.NewTopology([]int{0, 0, 1, 1}),
		Protocol: core.New(),
		Model:    netmodel.Ideal(),
		Failures: failure.NewSchedule(
			// Cluster 1 is compute-only: the trigger at VT 50 fires at the
			// first interaction point past it — the end of rank 2's first
			// 1000ns chunk — so the detection lands at VT 1000.
			failure.Event{Ranks: []int{2}, When: failure.Trigger{AtVT: vtime.Time(50)}},
			// Cluster 0 ping-pongs in tens of nanoseconds; rank 0 dies at
			// its third send, i.e. at a detection time far BELOW 1000 —
			// but its evFail can only reach the supervisor after cluster
			// 1's frontiers unblocked the ping-pong, i.e. after rank 2's
			// failure was already emitted: reverse virtual-time order.
			failure.Event{Ranks: []int{0}, When: failure.Trigger{AfterSends: 3}},
		),
		Watchdog: 30 * time.Second,
	}
	prog := func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0, 1:
			peer := 1 - c.Rank()
			got := 0
			for i := 0; i < 6; i++ {
				if c.Rank() == 0 {
					if err := c.Send(peer, i, []byte("ping")); err != nil {
						return err
					}
					if _, _, err := c.Recv(peer, i); err != nil {
						return err
					}
				} else {
					if _, _, err := c.Recv(peer, i); err != nil {
						return err
					}
					if err := c.Send(peer, i, []byte("pong")); err != nil {
						return err
					}
				}
				got++
				if err := c.Compute(10 * vtime.Nanosecond); err != nil {
					return err
				}
			}
			c.SetResult(got)
			return nil
		default:
			for i := 0; i < 2; i++ {
				if err := c.Compute(1000 * vtime.Nanosecond); err != nil {
					return err
				}
			}
			c.SetResult(2)
			return nil
		}
	}
	res := runFenced(t, cfg, prog)
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds %d, want 1 (the starved round is superseded, only the merged round completes)", len(res.Rounds))
	}
	if res.Rounds[0].RolledBack != 4 {
		t.Fatalf("merged round rolled back %d ranks, want all 4", res.Rounds[0].RolledBack)
	}
	for r, v := range res.Results {
		want := 2
		if r < 2 {
			want = 6
		}
		if v != want {
			t.Fatalf("rank %d result %v, want %d", r, v, want)
		}
	}
}

// TestOverlappingScopeRefailureReproducible closes the overlapping-scope
// watchdog caveat: the same cluster is hit again while its own recovery
// round is mid-flight. Rank 0 logs inter-cluster sends, dies, and its
// restarted incarnation dies again after notifying only the first of two
// orphans — so round 0's coordinator waits forever on the second orphan
// notification. The starved round must be superseded by a merged round that
// re-rolls the cluster to the earliest fence and converges, with rank 2
// delivering every message exactly once.
func TestOverlappingScopeRefailureReproducible(t *testing.T) {
	cfg := mpi.Config{
		NP:       4,
		Topo:     rollback.NewTopology([]int{0, 0, 1, 1}),
		Protocol: core.New(),
		Model:    netmodel.Ideal(),
		Failures: failure.NewSchedule(
			// First incarnation of rank 0 dies entering its third send.
			failure.Event{Ranks: []int{0}, When: failure.Trigger{AfterSends: 2}},
			// The replay suppresses re-sends of the two orphans; the
			// cumulative send counter crosses 3 after the first suppressed
			// re-send, so the restarted incarnation dies entering the
			// second — leaving one orphan notification outstanding.
			failure.Event{Ranks: []int{0}, When: failure.Trigger{AfterSends: 3}},
		),
		Watchdog: 30 * time.Second,
	}
	prog := func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0:
			for i := 1; i <= 4; i++ {
				if err := c.Send(2, i, []byte{byte(i)}); err != nil {
					return err
				}
				if err := c.Compute(10 * vtime.Nanosecond); err != nil {
					return err
				}
			}
			c.SetResult(4)
			return nil
		case 2:
			sum := 0
			for i := 1; i <= 4; i++ {
				d, _, err := c.Recv(0, i)
				if err != nil {
					return err
				}
				sum += int(d[0])
			}
			c.SetResult(sum)
			return nil
		default:
			if err := c.Compute(100 * vtime.Nanosecond); err != nil {
				return err
			}
			c.SetResult(-1)
			return nil
		}
	}
	res := runFenced(t, cfg, prog)
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds %d, want 1 (round 0 is superseded, only the merged round completes)", len(res.Rounds))
	}
	if res.Rounds[0].RolledBack != 2 {
		t.Fatalf("merged round rolled back %d ranks, want cluster 0's 2", res.Rounds[0].RolledBack)
	}
	if res.Results[2] != 1+2+3+4 {
		t.Fatalf("rank 2 sum %v, want 10 (each message delivered exactly once)", res.Results[2])
	}
}

// runStoreBacked runs cfg with a fresh store per run; when twice is true it
// runs two times and asserts byte-identical results first.
func runStoreBacked(t *testing.T, cfg mpi.Config, mkStore func() checkpoint.Store, prog mpi.Program, twice bool) *mpi.Result {
	t.Helper()
	run := func() *mpi.Result {
		c := cfg
		c.Store = mkStore()
		if cfg.Failures != nil {
			c.Failures = failure.NewSchedule(cfg.Failures.Events...)
		}
		res, err := mpi.Run(c, prog)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a := run()
	if twice {
		b := run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("results not byte-stable:\n  %+v\n  %+v", a, b)
		}
	}
	return a
}
