package mpi

import "context"

// Context-carried observers: sweep helpers (harness, netpipe) launch runs
// several calls away from the code that owns an event sink, so the sink
// rides the context instead of threading an Observer parameter through
// every signature — the same pattern tracing libraries use. RunContext
// attaches a context observer alongside Config.Observer; both see every
// event.

type ctxObserverKey struct{}

// ContextWithObserver returns a context carrying o. Every run started
// under the returned context (directly or through sweep helpers) streams
// its lifecycle events to o in addition to its own Config.Observer.
// Unlike a run's own observer, o may receive events of several concurrent
// runs interleaved; implementations must be concurrency-safe.
func ContextWithObserver(ctx context.Context, o Observer) context.Context {
	if o == nil {
		return ctx
	}
	if prev := observerFromContext(ctx); prev != nil {
		o = MultiObserver(prev, o)
	}
	return context.WithValue(ctx, ctxObserverKey{}, o)
}

// observerFromContext extracts the context observer, or nil.
func observerFromContext(ctx context.Context) Observer {
	o, _ := ctx.Value(ctxObserverKey{}).(Observer)
	return o
}
