package mpi_test

import (
	"os"
	"testing"
	"time"

	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/rollback"
)

// TestDebugRecovery is a verbose variant of the recovery smoke test, gated
// behind HYDEE_DEBUG for interactive debugging of recovery deadlocks.
func TestDebugRecovery(t *testing.T) {
	if os.Getenv("HYDEE_DEBUG") == "" {
		t.Skip("set HYDEE_DEBUG=1 to run")
	}
	topo := rollback.NewTopology([]int{0, 0, 1, 1, 2, 2})
	res, err := mpi.Run(mpi.Config{
		NP: 6, Topo: topo, Protocol: core.New(),
		CheckpointEvery: 3,
		Failures: failure.NewSchedule(failure.Event{
			Ranks: []int{2},
			When:  failure.Trigger{AfterCheckpoints: 2},
		}),
		Watchdog: 60 * time.Second,
		Observer: mpi.NewLogObserver(os.Stderr),
	}, ringProgram(12))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rounds: %+v", res.Rounds)
}
