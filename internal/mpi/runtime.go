package mpi

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hydee/internal/checkpoint"
	"hydee/internal/failure"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/trace"
	"hydee/internal/transport"
	"hydee/internal/vtime"
)

// Runtime executes one run: it owns the network, supervises the process
// goroutines, kills and restarts clusters on failures, and serializes
// recovery rounds.
type Runtime struct {
	cfg     Config
	net     *transport.Network
	model   netmodel.Model
	topo    *rollback.Topology
	prot    rollback.Protocol
	store   checkpoint.Store
	inj     *failure.Injector
	rec     *trace.Recorder
	obs     *observerMux
	program Program

	evCh     chan procEvent
	cumSends []int64 // atomic, cumulative app sends per rank across incarnations

	// Supervisor-owned (touched only by the goroutine running supervise
	// and the setup code that precedes it):
	//
	// liveProcs counts process goroutines started and not yet observed to
	// die; recLive marks a recovery-coordinator goroutine in flight. Their
	// sum is the parked-goroutine count Network.Quiescent must see for the
	// plane to be provably stuck. pending holds failure events queued
	// behind the active round, ordered by (detection VT, first victim).
	liveProcs int
	recLive   bool
	pending   []procEvent

	mu       sync.Mutex
	metrics  []rollback.Metrics
	results  []any
	finalVT  []vtime.Time
	rounds   []rollback.RecoveryStats
	wg       sync.WaitGroup
	roundSeq int
	// ckptDone[rank] lists the checkpoint writes THIS run completed for
	// rank, with the virtual time each write was issued at (guarded by
	// mu). Restores consult it rather than the store's LatestSeq for two
	// reasons: a store pinned across several runs (engine WithStore) can
	// never leak a previous run's sequences into this run's restart
	// scope, and a failure round restores from the newest sequence issued
	// at or below its detection fence — a save that completed in real
	// time but was issued past the fence never enters the restart scope,
	// so the restored sequence is a pure function of virtual time.
	ckptDone [][]savePoint
}

// savePoint records one completed checkpoint write: the sequence saved and
// the virtual time the write was issued (admitted by Network.AwaitTurn) at.
type savePoint struct {
	seq int
	vt  vtime.Time
}

type evKind int

const (
	evFinished evKind = iota
	evDied
	evFail
	evFatal
	evRecoveryDone
)

type procEvent struct {
	kind  evKind
	rank  int
	vt    vtime.Time
	ranks []int // evFail: victims
	err   error
	stats rollback.RecoveryStats
}

func (rt *Runtime) event(ev procEvent) { rt.evCh <- ev }

// Run executes program under cfg and returns the aggregated result.
func Run(cfg Config, program Program) (*Result, error) {
	return RunContext(context.Background(), cfg, program)
}

// RunContext executes program under cfg, honoring ctx: when the context is
// canceled or its deadline expires, the supervisor kills every process
// endpoint, all rank goroutines unwind promptly, and the run returns a
// *RunError wrapping ErrCanceled.
func RunContext(ctx context.Context, cfg Config, program Program) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, runErr(-1, -1, PhaseConfig, err)
	}
	if o := observerFromContext(ctx); o != nil {
		if cfg.Observer != nil {
			cfg.Observer = MultiObserver(cfg.Observer, o)
		} else {
			cfg.Observer = o
		}
	}
	rt := &Runtime{
		cfg:      cfg,
		model:    cfg.Model,
		topo:     cfg.Topo,
		prot:     cfg.Protocol,
		store:    cfg.Store,
		rec:      cfg.Recorder,
		obs:      &observerMux{obs: cfg.Observer, runID: runIDs.Add(1)},
		program:  program,
		net:      transport.NewNetwork(cfg.NP, cfg.Model),
		evCh:     make(chan procEvent, 4*cfg.NP+16),
		cumSends: make([]int64, cfg.NP),
		metrics:  make([]rollback.Metrics, cfg.NP),
		results:  make([]any, cfg.NP),
		finalVT:  make([]vtime.Time, cfg.NP),
		ckptDone: make([][]savePoint, cfg.NP),
	}
	if cfg.Failures != nil {
		rt.inj = failure.NewInjector(cfg.Failures)
	}
	// Pre-create the recovery endpoint so early control traffic to it is
	// buffered rather than lost, and declare it as the latent failure
	// source: the delivery gate then never admits a stamp a future
	// recovery round could undercut.
	rt.net.DeclareRecovery(cfg.NP)

	rt.obs.emit(Event{Kind: EvRunStart, Rank: -1, Round: -1})
	for r := 0; r < cfg.NP; r++ {
		rt.startProc(r, nil, nil, 0)
	}
	err := rt.supervise(ctx)
	rt.drainAndJoin()
	if err != nil {
		rt.obs.emit(Event{Kind: EvRunAbort, Rank: -1, Round: -1, Err: err})
		return nil, err
	}

	res := &Result{
		PerRank:    append([]rollback.Metrics(nil), rt.metrics...),
		Results:    append([]any(nil), rt.results...),
		Rounds:     append([]rollback.RecoveryStats(nil), rt.rounds...),
		StoreStats: rt.store.Stats(),
	}
	stats := rt.net.Stats()
	res.PairBytes = make([]int64, len(stats))
	res.PairMsgs = make([]int64, len(stats))
	for i, s := range stats {
		res.PairBytes[i] = s.Bytes
		res.PairMsgs[i] = s.Msgs
	}
	for r := 0; r < cfg.NP; r++ {
		if rt.finalVT[r] > res.Makespan {
			res.Makespan = rt.finalVT[r]
		}
		res.Totals.Add(&rt.metrics[r])
	}
	rt.obs.emit(Event{Kind: EvRunComplete, Rank: -1, Round: -1, VT: res.Makespan})
	return res, nil
}

func (rt *Runtime) startProc(rank int, snap *checkpoint.Snapshot, round *rollback.RoundInfo, startVT vtime.Time) {
	p := rt.newProc(rank, snap, round, startVT)
	rt.liveProcs++
	rt.wg.Add(1)
	go p.run()
}

// roundState tracks an in-flight failure round through its three steps:
// declared (scope doomed at the detection fence, recovery endpoint
// attached), draining (waitingDeath non-empty: doomed goroutines finish
// their pre-fence work and unwind), and recovering (scope killed, restored
// and the recovery coordinator running).
type roundState struct {
	info         rollback.RoundInfo
	waitingDeath map[int]bool
	recovering   bool
	// fences maps each rolled-back cluster to its detection fence: the
	// virtual time its restore cut is judged against. A plain round fences
	// every cluster at its one detection time; a merged round (overlapping
	// scopes, or detections arriving in reverse virtual-time order) keeps
	// one fence per cluster.
	fences map[int]vtime.Time
	// superseded marks a starved round whose coordinator has been killed:
	// its evRecoveryDone carries ErrKilled and is replaced by a merged
	// round absorbing the queued failures, instead of aborting the run.
	superseded bool
	// startVT is the virtual time the round's restore and recovery
	// coordinator start at: one network hop after the detection time, or
	// — when this round chains directly behind another — one hop after
	// the previous round's end, so no stamp this round produces can
	// undercut a delivery the previous round's execution already
	// admitted.
	startVT vtime.Time
}

// insertPending inserts ev keeping the queue ordered by (detection VT,
// first victim): queued failure rounds begin in virtual-time order, not in
// the real-time order their evFail events happened to reach the
// supervisor's channel.
func insertPending(q []procEvent, ev procEvent) []procEvent {
	i := len(q)
	for i > 0 && (q[i-1].vt > ev.vt || (q[i-1].vt == ev.vt && q[i-1].ranks[0] > ev.ranks[0])) {
		i--
	}
	q = append(q, procEvent{})
	copy(q[i+1:], q[i:])
	q[i] = ev
	return q
}

// starveProbe is the real-time interval at which the supervisor checks a
// stalled plane for deterministic starvation (an active round that can
// never complete because a queued overlapping failure killed ranks it
// still needs). It is a liveness knob only: the supersession it triggers
// fires at a quiescent state that is a pure function of virtual time.
const starveProbe = 2 * time.Millisecond

func (rt *Runtime) supervise(ctx context.Context) error {
	np := rt.cfg.NP
	finished := make([]bool, np)
	finCount := 0
	var cur *roundState
	deadEarly := make(map[int]bool)
	roundsRun := 0

	watchdogDur := rt.cfg.watchdog()
	//hydee:allow wallclock(watchdog is a liveness knob: it only aborts hung runs, never shapes virtual time)
	watchdog := time.NewTimer(watchdogDur)
	defer watchdog.Stop()
	//hydee:allow wallclock(starvation probe fires only at transport quiescence, a pure function of virtual time)
	probe := time.NewTimer(starveProbe)
	defer probe.Stop()

	curRound := func() int {
		if cur != nil {
			return cur.info.Round
		}
		return -1
	}
	bumpRounds := func() error {
		roundsRun++
		if roundsRun > rt.cfg.MaxRounds {
			rt.abort()
			return runErr(-1, curRound(), PhaseSupervise,
				fmt.Errorf("more than MaxRounds=%d recovery rounds", rt.cfg.MaxRounds))
		}
		return nil
	}

	for finCount < np || cur != nil || len(rt.pending) > 0 {
		// The evCh case is the only one that shapes virtual time, and its
		// events arrive in plane-determined order; watchdog/probe are
		// wall-clock liveness aids that abort or inspect quiescent state.
		//hydee:allow selectorder(only evCh affects virtual time; timer cases abort or probe quiescence)
		select {
		case ev := <-rt.evCh:
			// Since Go 1.23, Reset on an active timer needs no stop-and-
			// drain; the old `if !watchdog.Stop() { <-watchdog.C }` idiom
			// can block forever here, because under the new semantics a
			// fired-but-unread timer's channel is emptied by Stop itself.
			watchdog.Reset(watchdogDur)
			switch ev.kind {
			case evFinished:
				if !finished[ev.rank] {
					finished[ev.rank] = true
					finCount++
				}
				rt.obs.emit(Event{Kind: EvRankFinished, Rank: ev.rank, Round: curRound(), VT: ev.vt})

			case evFatal:
				rt.abort()
				return runErr(ev.rank, curRound(), PhaseProgram, ev.err)

			case evFail:
				rt.obs.emit(Event{Kind: EvFailure, Rank: -1, Ranks: ev.ranks, Round: -1, VT: ev.vt})
				if !rt.prot.Tolerates() {
					rt.abort()
					return runErr(-1, -1, PhaseSupervise,
						fmt.Errorf("protocol %q cannot tolerate the injected failure of ranks %v", rt.prot.Name(), ev.ranks))
				}
				rt.pending = insertPending(rt.pending, ev)
				if cur == nil {
					// Pop before beginRound: it may reach launchRound
					// synchronously (whole scope already dead), and the
					// re-doom pass there must only see failures this round
					// does NOT handle.
					head := rt.pending[0]
					rt.pending = rt.pending[1:]
					var err error
					cur, err = rt.beginRound(head, 0, finished, &finCount, deadEarly)
					if err != nil {
						rt.abort()
						return err
					}
					if err := bumpRounds(); err != nil {
						return err
					}
				} else {
					// The round is queued behind the active one, but its
					// fence is declared immediately — on every scope member,
					// including ranks shared with the active round: a shared
					// rank's current incarnation stops at the new detection
					// time, and launchRound re-dooms restarted incarnations
					// covered by a still-pending failure (Kill/RestartAt
					// clear the fence). Nothing above ev.vt plus one hop has
					// been admitted yet — the victim's un-quiesced endpoint
					// still froze the plane when this event was emitted — so
					// the cut is a pure function of virtual time.
					for _, r := range rt.prot.RestartScope(rt.topo, ev.ranks) {
						rt.net.Doom(r, ev.vt)
					}
				}

			case evDied:
				rt.liveProcs--
				if cur != nil && cur.waitingDeath[ev.rank] {
					delete(cur.waitingDeath, ev.rank)
					// The goroutine has unwound; nothing at or below the
					// fence remains in flight for it. Stop the delivery
					// gate from waiting on its stale frontier while the
					// rest of the scope drains.
					rt.net.Quiesce(ev.rank)
					if len(cur.waitingDeath) == 0 && !cur.recovering {
						if err := rt.killAndLaunch(cur); err != nil {
							rt.abort()
							return err
						}
					}
				} else {
					deadEarly[ev.rank] = true
					// The goroutine is gone but its endpoint is not killed
					// yet (the rank's round is queued behind the active
					// one); stop the delivery gate from waiting on it.
					rt.net.Quiesce(ev.rank)
				}

			case evRecoveryDone:
				rt.recLive = false
				if cur != nil && cur.superseded {
					// The starved coordinator unwound after KillService;
					// its partial stats are discarded and a merged round —
					// the old scope plus every queued failure's — takes
					// over at a quiescent point of the virtual execution.
					if ev.err != nil && !errors.Is(ev.err, transport.ErrKilled) {
						rt.abort()
						return runErr(-1, ev.stats.Round, PhaseRecovery, ev.err)
					}
					var err error
					cur, err = rt.beginMerged(cur, finished, &finCount, deadEarly)
					if err != nil {
						rt.abort()
						return err
					}
					if err := bumpRounds(); err != nil {
						return err
					}
					continue
				}
				if ev.err != nil {
					rt.abort()
					return runErr(-1, ev.stats.Round, PhaseRecovery, ev.err)
				}
				rt.obs.emit(Event{Kind: EvRecoveryEnd, Rank: -1, Round: ev.stats.Round, VT: ev.stats.EndVT, Stats: &ev.stats})
				rt.mu.Lock()
				rt.rounds = append(rt.rounds, ev.stats)
				rt.mu.Unlock()
				cur = nil
				if len(rt.pending) > 0 {
					// Chain the queued round directly behind the one that
					// just ended: its coordinator and restores start one
					// network hop after the previous round's end, so no
					// stamp it produces can undercut a delivery admitted
					// while the previous round ran — the recovery endpoint
					// stays attached throughout, with no unconstrained
					// window in between.
					head := rt.pending[0]
					rt.pending = rt.pending[1:]
					var err error
					cur, err = rt.beginRound(head, ev.stats.EndVT.Add(rt.net.MinLatency()), finished, &finCount, deadEarly)
					if err != nil {
						rt.abort()
						return err
					}
					if err := bumpRounds(); err != nil {
						return err
					}
				} else {
					// No round follows: detach the recovery endpoint, which
					// falls back to being the plane's latent failure source.
					rt.net.Quiesce(rt.cfg.NP)
				}
			}

		case <-ctx.Done():
			rt.abort()
			return runErr(-1, curRound(), PhaseSupervise, fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx)))

		case <-probe.C:
			// Starvation check: an active round plus queued failures, with
			// every goroutine parked beyond waking and no event in flight,
			// is a round that can never complete — typically its coordinator
			// waits on a report from a rank a queued overlapping failure
			// already stopped. Quiescence is evaluated first: once it holds,
			// no actor can emit an event, so the channel check cannot race.
			// The stuck state (and everything derived from it) is a pure
			// function of virtual time, so the supersession is too.
			if cur != nil && len(rt.pending) > 0 {
				expected := rt.liveProcs
				if rt.recLive {
					expected++
				}
				if rt.net.Quiescent(expected) && len(rt.evCh) == 0 {
					if cur.recovering {
						if !cur.superseded {
							// Kill the starved coordinator; the merge happens
							// when its evRecoveryDone drains back here.
							cur.superseded = true
							rt.net.KillService(rt.cfg.NP)
						}
					} else {
						// Still draining: extend the declared round in place
						// (no coordinator or RoundStart exists yet).
						if err := rt.extendRound(cur, finished, &finCount, deadEarly); err != nil {
							rt.abort()
							return err
						}
						if err := bumpRounds(); err != nil {
							return err
						}
					}
				}
			}
			probe.Reset(starveProbe)

		case <-watchdog.C:
			plane := rt.net.DebugState()
			waiting := ""
			if cur != nil {
				waiting = fmt.Sprintf(", round %d waiting on deaths %v, recovering %v", cur.info.Round, cur.waitingDeath, cur.recovering)
			}
			rt.abort()
			return runErr(-1, curRound(), PhaseSupervise,
				fmt.Errorf("%w: no supervisor event for %v (deadlock or overlapping failures; %d/%d finished, round active: %v%s)\ndelivery plane:\n%s",
					ErrDeadlock, watchdogDur, finCount, np, cur != nil, waiting, plane))
		}
	}

	// Shut lingering processes down. The shutdown is stamped at the far
	// future so it sorts after every real message still queued: a lingering
	// process drains its remaining control traffic (whose clock merges are
	// part of the makespan) in virtual-time order before it exits, instead
	// of racing the supervisor's send in real time.
	for r := 0; r < np; r++ {
		m := &transport.Msg{Src: -1, Dst: r, Kind: transport.Ctl, CtlBody: shutdownBody{},
			WireLen: 1, SendVT: shutdownSendVT}
		_ = rt.net.Send(m)
	}
	return nil
}

// beginRound starts a failure round with the declare step of the
// three-step virtual-time kill protocol: it computes the restart scope,
// dooms every scope member at the detection fence (in-flight deliveries
// and checkpoint writes at or below the fence complete; anything later is
// cancelled deterministically), and waits (via evDied events) for the
// doomed goroutines to drain and unwind before killing and restarting
// them in killAndLaunch.
func (rt *Runtime) beginRound(ev procEvent, chainVT vtime.Time, finished []bool, finCount *int, deadEarly map[int]bool) (*roundState, error) {
	scope := rt.prot.RestartScope(rt.topo, ev.ranks)
	info := rollback.RoundInfo{
		Round:          rt.roundSeq,
		FailedClusters: rt.topo.ClustersOf(scope),
		RolledBack:     append([]int(nil), scope...),
		DetectVT:       ev.vt,
	}
	rt.roundSeq++
	rt.obs.emit(Event{Kind: EvRecoveryStart, Rank: -1, Round: info.Round, Ranks: info.RolledBack, VT: ev.vt})
	startVT := rt.recoveryVT(info.DetectVT)
	if chainVT > startVT {
		startVT = chainVT
	}
	// Attach the recovery endpoint before the first doom: from the moment
	// the scope's frontiers stop constraining the delivery gate, the
	// recovery actor's must, or survivors could deliver post-detection
	// stamps the recovery round has yet to undercut. The attach point is
	// one minimum-latency hop after the detection time — the round's
	// control traffic is stamped there (the detection propagates to the
	// coordinator over the network) — so the recovery's own bound never
	// holds doomed scope peers' drain at the fence itself; a chained round
	// starts after the previous round's end instead (chainVT). AttachAt
	// (not Publish) because this round's start may precede the virtual
	// time the previous round's recovery finished at.
	rt.net.AttachAt(rt.cfg.NP, startVT)
	rs := &roundState{
		info:         info,
		startVT:      startVT,
		waitingDeath: make(map[int]bool, len(scope)),
		fences:       make(map[int]vtime.Time, len(info.FailedClusters)),
	}
	for _, c := range info.FailedClusters {
		rs.fences[c] = info.DetectVT
	}
	for _, r := range scope {
		rs.waitingDeath[r] = true
	}
	for _, r := range scope {
		rt.net.Doom(r, info.DetectVT)
		if finished[r] {
			finished[r] = false
			*finCount--
		}
		if deadEarly[r] {
			delete(deadEarly, r)
			delete(rs.waitingDeath, r)
		}
	}
	if len(rs.waitingDeath) == 0 {
		if err := rt.killAndLaunch(rs); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// absorbPending folds every queued failure into rs: scope members are added
// to the round, and each affected cluster's fence drops to the earliest
// detection that covers it. It returns the ranks newly added to the scope
// and leaves the pending queue empty.
func (rt *Runtime) absorbPending(rs *roundState) []int {
	var added []int
	for _, ev := range rt.pending {
		for _, r := range rt.prot.RestartScope(rt.topo, ev.ranks) {
			c := rt.topo.ClusterOf[r]
			if f, ok := rs.fences[c]; !ok || ev.vt < f {
				rs.fences[c] = ev.vt
			}
			if !rs.info.Includes(r) {
				rs.info.RolledBack = append(rs.info.RolledBack, r)
				added = append(added, r)
			}
		}
	}
	rt.pending = rt.pending[:0]
	sort.Ints(rs.info.RolledBack)
	rs.info.FailedClusters = rt.topo.ClustersOf(rs.info.RolledBack)
	first := true
	var min vtime.Time
	for _, f := range rs.fences {
		if first || f < min {
			min, first = f, false
		}
	}
	rs.info.DetectVT = min
	return added
}

// extendRound handles a starved round still in its drain phase: the doomed
// scope and the queued failures' scopes block each other (overlapping
// scopes, or detections that reached the supervisor in reverse virtual-time
// order), so neither drain can finish. The round is extended in place —
// same round number, since no coordinator or RoundStart exists yet — with
// per-cluster fences, and its start moves past everything the plane has
// produced.
func (rt *Runtime) extendRound(rs *roundState, finished []bool, finCount *int, deadEarly map[int]bool) error {
	if s := rt.net.MaxFrontier().Add(rt.net.MinLatency()); s > rs.startVT {
		rs.startVT = s
	}
	// Raise the recovery endpoint's bound before the new scope's frontiers
	// stop constraining the gate, exactly as beginRound attaches before the
	// first doom.
	rt.net.AttachAt(rt.cfg.NP, rs.startVT)
	added := rt.absorbPending(rs)
	rt.obs.emit(Event{Kind: EvRecoveryStart, Rank: -1, Round: rs.info.Round, Ranks: rs.info.RolledBack, VT: rs.info.DetectVT})
	for _, r := range added {
		rt.net.Doom(r, rs.fences[rt.topo.ClusterOf[r]])
		if finished[r] {
			finished[r] = false
			*finCount--
		}
		if deadEarly[r] {
			delete(deadEarly, r)
		} else {
			rs.waitingDeath[r] = true
		}
	}
	if len(rs.waitingDeath) == 0 && !rs.recovering {
		return rt.killAndLaunch(rs)
	}
	return nil
}

// beginMerged replaces a superseded round whose coordinator was already
// running (and has been killed): a fresh round — new number, since the old
// RoundStart was broadcast — rolls back the union of the old scope and
// every queued failure's, each cluster fenced at its earliest detection.
// The old scope's restarted incarnations are doomed below their resume
// clocks, so they die at their first wait and the whole merged scope drains
// through the ordinary kill machinery.
func (rt *Runtime) beginMerged(old *roundState, finished []bool, finCount *int, deadEarly map[int]bool) (*roundState, error) {
	rs := &roundState{
		info: rollback.RoundInfo{
			Round:      rt.roundSeq,
			RolledBack: append([]int(nil), old.info.RolledBack...),
			DetectVT:   old.info.DetectVT,
		},
		waitingDeath: make(map[int]bool),
		fences:       make(map[int]vtime.Time, len(old.fences)),
	}
	rt.roundSeq++
	for c, f := range old.fences {
		rs.fences[c] = f
	}
	rt.absorbPending(rs)
	rs.startVT = rt.net.MaxFrontier().Add(rt.net.MinLatency())
	// Revive the killed recovery endpoint first: its bound must constrain
	// the plane before the scope's frontiers stop doing so.
	rt.net.RestartServiceAt(rt.cfg.NP, rs.startVT)
	rt.obs.emit(Event{Kind: EvRecoveryStart, Rank: -1, Round: rs.info.Round, Ranks: rs.info.RolledBack, VT: rs.info.DetectVT})
	for _, r := range rs.info.RolledBack {
		rt.net.Doom(r, rs.fences[rt.topo.ClusterOf[r]])
		if finished[r] {
			finished[r] = false
			*finCount--
		}
		if deadEarly[r] {
			delete(deadEarly, r)
		} else {
			rs.waitingDeath[r] = true
		}
	}
	if len(rs.waitingDeath) == 0 {
		if err := rt.killAndLaunch(rs); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// killAndLaunch is the kill step: the whole scope has drained to the
// detection fence (every doomed goroutine unwound), so the kills — the
// incarnation bumps and mailbox wipes — now happen at a deterministic
// point of the virtual execution, and the restore can begin.
func (rt *Runtime) killAndLaunch(rs *roundState) error {
	for _, r := range rs.info.RolledBack {
		inc := rt.net.Kill(r)
		rs.info.Incs = append(rs.info.Incs, inc)
	}
	rs.info.AllIncs = rt.net.Incs()
	return rt.launchRound(rs)
}

// launchRound revives and restarts the rolled-back processes from their
// checkpoints and spawns the recovery coordinator.
//
// A failure can land while part of a cluster has completed checkpoint N and
// the rest is still writing it, so each cluster restores from the minimum
// sequence completed by all of its members (0 = restart from the initial
// state). "Completed" is judged against the round's detection fence: only
// writes issued at or below DetectVT count, so a save that happened to
// finish in real time but was issued past the fence never skews the
// restored sequence — the restore is a pure function of virtual time. The
// completed sequences come from the runtime's own per-run table, not the
// store's LatestSeq: a store pinned across runs still holds earlier runs'
// snapshots, and those must never enter this run's restart scope. A
// sequence this run completed but the store cannot load aborts the round
// with ErrCheckpointLost: restarting that rank from its initial state
// instead would silently diverge from the survivors.
func (rt *Runtime) launchRound(rs *roundState) error {
	rs.recovering = true
	info := rs.info
	restoreSeq := make(map[int]int) // cluster -> min completed seq at the fence
	rt.mu.Lock()
	for _, r := range info.RolledBack {
		c := rt.topo.ClusterOf[r]
		fence := rs.fences[c]
		seq := 0
		for _, sp := range rt.ckptDone[r] {
			if sp.vt <= fence && sp.seq > seq {
				seq = sp.seq
			}
		}
		if cur, ok := restoreSeq[c]; !ok || seq < cur {
			restoreSeq[c] = seq
		}
	}
	// A rolled-back rank's saves above its cluster's restore point belong
	// to the abandoned timeline: prune them, or a later round could mix a
	// pre-rollback snapshot into a restore cut with post-rollback ones
	// from its peers.
	for _, r := range info.RolledBack {
		restored := restoreSeq[rt.topo.ClusterOf[r]]
		kept := rt.ckptDone[r][:0]
		for _, sp := range rt.ckptDone[r] {
			if sp.seq <= restored {
				kept = append(kept, sp)
			}
		}
		rt.ckptDone[r] = kept
	}
	rt.mu.Unlock()
	// Restores are issued at the round's start time (one hop after
	// detection, or after the previous round when chained), never at the
	// raw detection stamp: every stamp the restarted incarnations produce
	// therefore sorts after everything the plane admitted before the
	// round launched.
	snaps := make([]*checkpoint.Snapshot, len(info.RolledBack))
	starts := make([]vtime.Time, len(info.RolledBack))
	for i, r := range info.RolledBack {
		seq := restoreSeq[rt.topo.ClusterOf[r]]
		starts[i] = rs.startVT
		if seq > 0 {
			snap, endVT, ok := rt.store.Load(r, seq, rs.startVT)
			if !ok {
				return runErr(r, info.Round, PhaseRecovery,
					fmt.Errorf("restore rank %d from checkpoint seq %d: %w", r, seq, ErrCheckpointLost))
			}
			snaps[i], starts[i] = snap, endVT
		}
	}
	// Revive every endpoint before any restarted process runs, so no
	// OnRestore traffic is dropped at a still-dead sibling. The revived
	// frontier is the rank's resume time: its replays cannot predate it.
	for i, r := range info.RolledBack {
		rt.net.RestartAt(r, starts[i])
	}
	// A queued overlapping failure's fence must survive the kill/restart
	// cycle: Kill and RestartAt clear doomVT, so a restarted rank covered
	// by a still-pending failure is re-doomed before its goroutine starts.
	// A fence below the restart clock just means the incarnation dies at
	// its first wait — deterministically, after its (non-blocking)
	// OnRestore notifications went out.
	for _, pf := range rt.pending {
		for _, r := range rt.prot.RestartScope(rt.topo, pf.ranks) {
			if info.Includes(r) {
				rt.net.Doom(r, pf.vt)
			}
		}
	}
	for i, r := range info.RolledBack {
		rt.startProc(r, snaps[i], &info, starts[i])
	}
	rx := &recCtx{rt: rt, ep: rt.net.Endpoint(rt.cfg.NP), now: rs.startVT}
	rec := rt.prot.NewRecovery(rx)
	if rec == nil {
		rt.event(procEvent{kind: evRecoveryDone, stats: rollback.RecoveryStats{
			Round: info.Round, RolledBack: len(info.RolledBack),
			StartVT: info.DetectVT, EndVT: rs.startVT,
		}})
		return nil
	}
	rt.recLive = true
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		stats, err := rec.Run(info)
		// The endpoint stays attached (bounded at the round's final
		// frontier) until the supervisor processes this event: it either
		// chains the next queued round — whose stamps continue from here —
		// or quiesces the endpoint back to latent-source duty. Detaching
		// here instead would open an unconstrained window in which
		// deliveries could be admitted that a chained round's stamps
		// would undercut.
		rt.event(procEvent{kind: evRecoveryDone, stats: stats, err: err})
	}()
	return nil
}

// recoveryVT is the virtual time a round's recovery coordinator starts at:
// one minimum-latency network hop after the failure's detection.
func (rt *Runtime) recoveryVT(detect vtime.Time) vtime.Time {
	return detect.Add(rt.net.MinLatency())
}

// abort tears everything down after a fatal error.
func (rt *Runtime) abort() {
	for r := 0; r < rt.cfg.NP; r++ {
		rt.net.Kill(r)
	}
	rt.net.KillService(rt.cfg.NP) // recovery endpoint
}

// drainAndJoin waits for every goroutine while consuming stray events.
func (rt *Runtime) drainAndJoin() {
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	for {
		//hydee:allow selectorder(drain loop: stray events are discarded either way, the outcome is join completion)
		select {
		case <-rt.evCh:
		case <-done:
			return
		}
	}
}

// ckptScheduled decides whether the idx-th cooperative checkpoint call of a
// cluster fires.
func (rt *Runtime) ckptScheduled(cluster, idx int) bool {
	k := rt.cfg.CheckpointEvery
	if k <= 0 || idx <= 0 {
		return false
	}
	off := 0
	if rt.cfg.CheckpointStagger {
		off = cluster % k
	}
	return idx%k == off
}

// recCtx implements rollback.RecoveryContext over the recovery endpoint.
type recCtx struct {
	rt  *Runtime
	ep  *transport.Endpoint
	now vtime.Time
}

// Topo implements rollback.RecoveryContext.
func (r *recCtx) Topo() *rollback.Topology { return r.rt.topo }

// Recv implements rollback.RecoveryContext.
func (r *recCtx) Recv() (*transport.Msg, error) {
	m, err := r.ep.Recv(r.now)
	if err != nil {
		return nil, err
	}
	if m.ArriveVT > r.now {
		r.now = m.ArriveVT
	}
	return m, nil
}

// SendCtl implements rollback.RecoveryContext.
func (r *recCtx) SendCtl(dst int, body any, wireBytes int) {
	m := &transport.Msg{
		Src: r.rt.cfg.NP, Dst: dst, Kind: transport.Ctl,
		CtlBody: body, WireLen: wireBytes, SendVT: r.now,
	}
	_ = r.rt.net.Send(m)
}

// Now implements rollback.RecoveryContext.
func (r *recCtx) Now() vtime.Time { return r.now }
