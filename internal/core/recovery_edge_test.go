package core_test

// Edge cases of the recovery machinery: failures with and without
// checkpoints, repeated failures, failures racing checkpoints at arbitrary
// points, and the interaction between garbage collection and replay.

import (
	"testing"
	"time"

	"hydee/internal/apps"
	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
)

func runStencil(t *testing.T, prot rollback.Protocol, assign []int, iters, ckptEvery int, sched *failure.Schedule) *mpi.Result {
	t.Helper()
	res, err := mpi.Run(mpi.Config{
		NP:              len(assign),
		Topo:            rollback.NewTopology(assign),
		Protocol:        prot,
		Model:           netmodel.Myrinet10G(),
		CheckpointEvery: ckptEvery,
		Failures:        sched,
		Watchdog:        60 * time.Second,
	}, apps.Stencil2D(iters, 32*1024))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var edgeAssign = []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}

func sameResults(t *testing.T, a, b *mpi.Result, label string) {
	t.Helper()
	for r := range a.Results {
		if a.Results[r] != b.Results[r] {
			t.Fatalf("%s: rank %d diverged: %v vs %v", label, r, a.Results[r], b.Results[r])
		}
	}
}

func TestRecoveryWithoutAnyCheckpoint(t *testing.T) {
	clean := runStencil(t, core.New(), edgeAssign, 6, 0, nil)
	failed := runStencil(t, core.New(), edgeAssign, 6, 0, failure.NewSchedule(failure.Event{
		Ranks: []int{5},
		When:  failure.Trigger{AfterSends: 7},
	}))
	if len(failed.Rounds) != 1 {
		t.Fatalf("rounds %d", len(failed.Rounds))
	}
	sameResults(t, clean, failed, "scratch restart")
	if failed.Totals.Restarts != 4 {
		t.Fatalf("restarts %d, want the 4 ranks of cluster 1", failed.Totals.Restarts)
	}
}

func TestSequentialFailureRounds(t *testing.T) {
	clean := runStencil(t, core.New(), edgeAssign, 14, 4, nil)
	failed := runStencil(t, core.New(), edgeAssign, 14, 4, failure.NewSchedule(
		failure.Event{Ranks: []int{2}, When: failure.Trigger{AfterCheckpoints: 1}},
		failure.Event{Ranks: []int{9}, When: failure.Trigger{AfterCheckpoints: 2}},
	))
	if len(failed.Rounds) != 2 {
		t.Fatalf("rounds %d, want 2", len(failed.Rounds))
	}
	sameResults(t, clean, failed, "two sequential rounds")
}

func TestSameClusterFailsTwice(t *testing.T) {
	clean := runStencil(t, core.New(), edgeAssign, 14, 3, nil)
	failed := runStencil(t, core.New(), edgeAssign, 14, 3, failure.NewSchedule(
		failure.Event{Ranks: []int{4}, When: failure.Trigger{AfterCheckpoints: 1}},
		failure.Event{Ranks: []int{6}, When: failure.Trigger{AfterCheckpoints: 3}},
	))
	if len(failed.Rounds) != 2 {
		t.Fatalf("rounds %d, want 2", len(failed.Rounds))
	}
	sameResults(t, clean, failed, "same cluster twice")
}

// TestFailureSweep moves the failure point across the execution, including
// positions that race coordinated checkpoints, and checks every recovered
// run against the failure-free digests.
func TestFailureSweep(t *testing.T) {
	clean := runStencil(t, core.New(), edgeAssign, 10, 3, nil)
	for _, after := range []int64{1, 5, 9, 17, 23, 31, 39} {
		failed := runStencil(t, core.New(), edgeAssign, 10, 3, failure.NewSchedule(failure.Event{
			Ranks: []int{10},
			When:  failure.Trigger{AfterSends: after},
		}))
		if len(failed.Rounds) != 1 {
			t.Fatalf("after %d sends: rounds %d", after, len(failed.Rounds))
		}
		sameResults(t, clean, failed, "sweep")
	}
}

// TestGCBoundsLogOccupancy checks §III-E: with garbage collection, the peak
// sender-log occupancy stays well below the total logged volume, and
// recovery still works after pruning.
func TestGCBoundsLogOccupancy(t *testing.T) {
	iters, ckpt := 24, 2
	withGC := runStencil(t, core.New(), edgeAssign, iters, ckpt, nil)
	noGC := runStencil(t, core.NewWithOptions(core.Options{Name: "hydee-nogc", DisableGC: true}),
		edgeAssign, iters, ckpt, nil)

	if withGC.Totals.GCReclaimed == 0 {
		t.Fatal("garbage collection reclaimed nothing")
	}
	if noGC.Totals.GCReclaimed != 0 {
		t.Fatal("DisableGC still reclaimed")
	}
	// Without GC the peak log equals everything ever logged per rank; with
	// GC it must be substantially lower.
	if withGC.Totals.LogPeakBytes >= noGC.Totals.LogPeakBytes {
		t.Fatalf("GC did not bound the log: peak %d vs %d without GC",
			withGC.Totals.LogPeakBytes, noGC.Totals.LogPeakBytes)
	}
	// A late failure after heavy pruning must still recover correctly:
	// everything pruned was covered by a stable checkpoint.
	failed := runStencil(t, core.New(), edgeAssign, iters, ckpt, failure.NewSchedule(failure.Event{
		Ranks: []int{12},
		When:  failure.Trigger{AfterCheckpoints: 10},
	}))
	sameResults(t, withGC, failed, "failure after GC pruning")
}

// TestSingleClusterDegeneratesToCoordinated checks the K=1 corner: no
// logging, no orphans, plain coordinated restart semantics.
func TestSingleClusterDegeneratesToCoordinated(t *testing.T) {
	assign := make([]int, 8)
	clean := runStencil(t, core.New(), assign, 8, 3, nil)
	if clean.Totals.LoggedMsgs != 0 {
		t.Fatalf("K=1 logged %d messages", clean.Totals.LoggedMsgs)
	}
	failed := runStencil(t, core.New(), assign, 8, 3, failure.NewSchedule(failure.Event{
		Ranks: []int{3},
		When:  failure.Trigger{AfterCheckpoints: 1},
	}))
	if failed.Rounds[0].RolledBack != 8 {
		t.Fatalf("K=1 rollback %d, want all 8", failed.Rounds[0].RolledBack)
	}
	if failed.Rounds[0].Orphans != 0 {
		t.Fatalf("K=1 produced %d orphans", failed.Rounds[0].Orphans)
	}
	sameResults(t, clean, failed, "K=1")
}

// TestSingletonClustersFullLogging checks the K=NP corner used by the
// message-logging baseline: everything is logged, a failure rolls back
// exactly one rank.
func TestSingletonClustersFullLogging(t *testing.T) {
	assign := []int{0, 1, 2, 3, 4, 5, 6, 7}
	clean := runStencil(t, core.New(), assign, 8, 3, nil)
	if clean.Totals.LoggedMsgs != clean.Totals.AppSends {
		t.Fatalf("singletons logged %d of %d messages", clean.Totals.LoggedMsgs, clean.Totals.AppSends)
	}
	failed := runStencil(t, core.New(), assign, 8, 3, failure.NewSchedule(failure.Event{
		Ranks: []int{3},
		When:  failure.Trigger{AfterCheckpoints: 1},
	}))
	if failed.Rounds[0].RolledBack != 1 {
		t.Fatalf("singleton rollback %d, want 1", failed.Rounds[0].RolledBack)
	}
	sameResults(t, clean, failed, "singletons")
}
