package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// rppChannel is one entry of the Received-Per-Phase table (§III-C): for the
// incoming channel from one process it records the date of the last
// delivered message and the phase of every delivered message, keyed by the
// sender's date.
type rppChannel struct {
	MaxDate int64
	Phases  map[int64]int
}

func newRPPChannel() *rppChannel {
	return &rppChannel{Phases: make(map[int64]int)}
}

func (ch *rppChannel) record(date int64, phase int) {
	if date > ch.MaxDate {
		ch.MaxDate = date
	}
	ch.Phases[date] = phase
}

// pruneUpTo removes entries with date <= d (garbage collection: the sender
// can never roll back before d again).
func (ch *rppChannel) pruneUpTo(d int64) {
	for date := range ch.Phases {
		if date <= d {
			delete(ch.Phases, date)
		}
	}
}

// logEntry is one sender-based log record: (destination, date, phase, msg)
// as in Algorithm 1 line 8, plus the tag and modeled size needed to replay
// the message identically.
type logEntry struct {
	Dst     int
	Date    int64
	Phase   int
	Tag     int
	WireLen int
	Data    []byte
}

// logStore is the in-memory sender-based message log. Entries per
// destination are naturally ordered by ascending date (dates increase
// monotonically at the sender).
type logStore struct {
	PerDst map[int][]logEntry
	// Bytes is the modeled occupancy.
	Bytes int64
}

func newLogStore() *logStore {
	return &logStore{PerDst: make(map[int][]logEntry)}
}

func (ls *logStore) add(e logEntry) {
	ls.PerDst[e.Dst] = append(ls.PerDst[e.Dst], e)
	ls.Bytes += int64(e.WireLen)
}

// above returns the entries to dst with date strictly above the watermark.
func (ls *logStore) above(dst int, watermark int64) []logEntry {
	entries := ls.PerDst[dst]
	// Binary search over the date-ordered slice.
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].Date <= watermark {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return entries[lo:]
}

// pruneUpTo drops entries to dst with date <= watermark, returning the
// modeled bytes reclaimed.
func (ls *logStore) pruneUpTo(dst int, watermark int64) int64 {
	entries := ls.PerDst[dst]
	keep := ls.above(dst, watermark)
	var reclaimed int64
	for _, e := range entries[:len(entries)-len(keep)] {
		reclaimed += int64(e.WireLen)
	}
	if len(keep) == 0 {
		delete(ls.PerDst, dst)
	} else {
		ls.PerDst[dst] = append([]logEntry(nil), keep...)
	}
	ls.Bytes -= reclaimed
	return reclaimed
}

// engineState is the gob-encoded protocol state included in checkpoints
// (Algorithm 1 line 21: ImagePs aside, this is RPP, Logs, Phase, Date, plus
// the garbage-collection bookkeeping).
type engineState struct {
	Date  int64
	Phase int
	RPP   map[int]*rppChannel
	Logs  *logStore
	// Garbage-collection watermarks (§III-E): "safe" is the previous
	// checkpoint's view (usable in acknowledgments), "pending" the one
	// captured by this checkpoint (promoted once the next completes).
	GCSafeValid    bool
	GCSafeDate     int64
	GCSafeDeliv    map[int]int64
	GCPendingValid bool
	GCPendingDate  int64
	GCPendingDeliv map[int]int64
}

func encodeEngineState(s *engineState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("core: encode protocol state: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeEngineState(b []byte) (*engineState, error) {
	var s engineState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decode protocol state: %w", err)
	}
	return &s, nil
}
