package core

import (
	"cmp"
	"fmt"
	"maps"
	"slices"

	"hydee/internal/rollback"
)

// sortedKeys returns a map's keys in ascending order, so control
// fan-outs are emitted in a deterministic sequence.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	return slices.Sorted(maps.Keys(m))
}

// recovery is the per-round recovery process of Algorithm 4. It is launched
// when a failure occurs, collects one report from every application
// process, and gates message (re)sending by phase: nothing may be (re)sent
// in phase p while an orphan message of a phase strictly below p is
// outstanding.
type recovery struct {
	rx rollback.RecoveryContext
}

// Run implements rollback.Recovery.
func (rp *recovery) Run(round rollback.RoundInfo) (rollback.RecoveryStats, error) {
	np := rp.rx.Topo().NP
	stats := rollback.RecoveryStats{
		Round:      round.Round,
		RolledBack: len(round.RolledBack),
		StartVT:    round.DetectVT,
	}

	// Announce the round so survivors know which rollback notifications
	// to collect before reporting.
	start := RoundStart{
		Round:      round.Round,
		RolledBack: append([]int(nil), round.RolledBack...),
		AllIncs:    append([]int32(nil), round.AllIncs...),
	}
	for r := 0; r < np; r++ {
		rp.rx.SendCtl(r, start, wireRoundStart)
		stats.CtlMsgs++
	}

	// NbOrphanPhase / MsgLPhase / ProcessPhase of Algorithm 4.
	nbOrphan := make(map[int]int)
	logProcs := make(map[int]map[int]bool)
	msgProcs := make(map[int]map[int]bool)

	reports := 0
	for reports < np {
		m, err := rp.rx.Recv()
		if err != nil {
			return stats, fmt.Errorf("core: recovery round %d: %w", round.Round, err)
		}
		switch b := m.CtlBody.(type) {
		case Report:
			if b.Round != round.Round {
				continue
			}
			reports++
			for _, ph := range b.OrphanPhases {
				nbOrphan[ph]++
				stats.Orphans++
			}
			for _, ph := range b.LogPhases {
				if logProcs[ph] == nil {
					logProcs[ph] = make(map[int]bool)
				}
				logProcs[ph][m.Src] = true
			}
			if msgProcs[b.OwnPhase] == nil {
				msgProcs[b.OwnPhase] = make(map[int]bool)
			}
			msgProcs[b.OwnPhase][m.Src] = true
		case OrphanNotification:
			// Cannot normally precede the report barrier (senders are
			// gated), but handle defensively.
			if b.Round == round.Round {
				nbOrphan[b.Phase]--
			}
		}
	}

	// The release fan-out iterates maps; sends must not follow Go's random
	// map order. Two notifications to the same destination would otherwise
	// swap their channel positions between runs, and the destination's
	// behaviour (when it resends logs vs when its program resumes sending)
	// — and with it the makespan — would depend on the iteration order.
	release := func() error {
		minBlocked := int(^uint(0) >> 1) // max int
		// Sorted so a protocol-violation error always names the lowest
		// offending phase, not whichever one map order surfaced first.
		for _, ph := range sortedKeys(nbOrphan) {
			n := nbOrphan[ph]
			if n < 0 {
				return fmt.Errorf("core: recovery round %d: orphan count for phase %d went negative (replayed sends diverge from the pre-failure execution): %w", round.Round, ph, rollback.ErrNotSendDeterministic)
			}
			if n > 0 && ph < minBlocked {
				minBlocked = ph
			}
		}
		// NotifySendLog: logged messages of phase p may be re-sent when no
		// orphan of a phase strictly below p is outstanding (lines 17-20).
		perProc := make(map[int]int)
		for _, ph := range sortedKeys(logProcs) {
			if ph > minBlocked {
				continue
			}
			for proc := range logProcs[ph] {
				if cur, ok := perProc[proc]; !ok || ph > cur {
					perProc[proc] = ph
				}
			}
			delete(logProcs, ph)
		}
		for _, proc := range sortedKeys(perProc) {
			rp.rx.SendCtl(proc, NotifySendLog{Round: round.Round, Phase: perProc[proc]}, wireNotify)
			stats.CtlMsgs++
		}
		// NotifySendMsg: a process reported in phase p may send when no
		// orphan of a phase strictly below p is outstanding (lines 21-23).
		for _, ph := range sortedKeys(msgProcs) {
			if ph > minBlocked {
				continue
			}
			for _, proc := range sortedKeys(msgProcs[ph]) {
				rp.rx.SendCtl(proc, NotifySendMsg{Round: round.Round, Phase: ph}, wireNotify)
				stats.CtlMsgs++
			}
			delete(msgProcs, ph)
		}
		return nil
	}

	outstanding := func() bool {
		if len(logProcs) > 0 || len(msgProcs) > 0 {
			return true
		}
		for _, n := range nbOrphan {
			if n > 0 {
				return true
			}
		}
		return false
	}

	if err := release(); err != nil {
		return stats, err
	}
	for outstanding() {
		m, err := rp.rx.Recv()
		if err != nil {
			return stats, fmt.Errorf("core: recovery round %d: %w", round.Round, err)
		}
		b, ok := m.CtlBody.(OrphanNotification)
		if !ok || b.Round != round.Round {
			continue
		}
		nbOrphan[b.Phase]--
		if nbOrphan[b.Phase] == 0 {
			delete(nbOrphan, b.Phase)
			if err := release(); err != nil {
				return stats, err
			}
		} else if nbOrphan[b.Phase] < 0 {
			return stats, fmt.Errorf("core: recovery round %d: orphan count for phase %d went negative (replayed sends diverge from the pre-failure execution): %w", round.Round, b.Phase, rollback.ErrNotSendDeterministic)
		}
	}
	stats.EndVT = rp.rx.Now()
	return stats, nil
}
