package core_test

// The paper's running example (Figures 3 and 4, §III): eight processes in
// three clusters exchange messages m1..m8. These tests pin the protocol to
// the exact phase numbers of Figure 4 and to the recovery mechanics of
// §III-B (m3 becomes an orphan when Cluster 2 fails; m7 cannot be replayed
// while a lower-phase orphan is outstanding).

import (
	"testing"
	"time"

	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/trace"
	"hydee/internal/vtime"
)

// Clusters of the figure: C1 = {P1}, C2 = {P2,P3,P4}, C3 = {P5..P8}.
var figClusters = []int{0, 1, 1, 1, 2, 2, 2, 2}

const (
	m1 = iota + 1
	m2
	m3
	m4
	m5
	m6
	m7
	m8
)

func figProgram(c *mpi.Comm) error {
	payload := []byte{byte(c.Rank())}
	send := func(dst, tag int) error { return c.Send(dst, tag, payload) }
	recv := func(src, tag int) error {
		_, _, err := c.Recv(src, tag)
		return err
	}
	switch c.Rank() {
	case 0: // P1
		return send(1, m1)
	case 1: // P2
		if err := recv(0, m1); err != nil {
			return err
		}
		return send(2, m2)
	case 2: // P3
		if err := recv(1, m2); err != nil {
			return err
		}
		if err := send(4, m3); err != nil {
			return err
		}
		return recv(3, m8)
	case 3: // P4
		if err := recv(6, m7); err != nil {
			return err
		}
		return send(2, m8)
	case 4: // P5
		if err := recv(2, m3); err != nil {
			return err
		}
		return send(5, m4)
	case 5: // P6
		if err := recv(4, m4); err != nil {
			return err
		}
		return send(6, m5)
	case 6: // P7
		// m5 and m6 are concurrent; either order yields the same m7.
		if err := recv(mpi.AnySource, mpi.AnyTag); err != nil {
			return err
		}
		if err := recv(mpi.AnySource, mpi.AnyTag); err != nil {
			return err
		}
		return send(3, m7)
	case 7: // P8
		return send(6, m6)
	}
	return nil
}

func runFig(t *testing.T, sched *failure.Schedule) (*mpi.Result, map[int]int) {
	t.Helper()
	rec := trace.NewRecorder(8)
	res, err := mpi.Run(mpi.Config{
		NP:       8,
		Topo:     rollback.NewTopology(figClusters),
		Protocol: core.New(),
		Model:    netmodel.Myrinet10G(),
		Failures: sched,
		Recorder: rec,
		Watchdog: 30 * time.Second,
	}, figProgram)
	if err != nil {
		t.Fatal(err)
	}
	phases := make(map[int]int)
	for _, evs := range rec.Events() {
		for _, ev := range evs {
			if ev.Op == trace.Send {
				phases[ev.Tag] = ev.Phase
			}
		}
	}
	return res, phases
}

// wantFigPhases pins the phase of every message to Figure 4.
var wantFigPhases = map[int]int{m1: 1, m2: 2, m3: 2, m4: 3, m5: 3, m6: 1, m7: 3, m8: 4}

func TestPaperScenarioPhases(t *testing.T) {
	_, phases := runFig(t, nil)
	for tag, want := range wantFigPhases {
		if phases[tag] != want {
			t.Errorf("m%d: phase %d, want %d (Figure 4)", tag, phases[tag], want)
		}
	}
}

func TestPaperScenarioCluster2Failure(t *testing.T) {
	// §III-B: Cluster 2 fails after P3 sent m3; m3 becomes an orphan. The
	// whole cluster {P2,P3,P4} restarts from its initial state (no
	// checkpoint was taken), re-executes, and suppresses the orphan send.
	res, phases := runFig(t, failure.NewSchedule(failure.Event{
		Ranks: []int{2},
		When:  failure.Trigger{AfterSends: 1},
	}))
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds: %d", len(res.Rounds))
	}
	rd := res.Rounds[0]
	if rd.RolledBack != 3 {
		t.Fatalf("rolled back %d ranks, want the 3 of Cluster 2", rd.RolledBack)
	}
	if rd.Orphans != 1 {
		t.Fatalf("orphans %d, want exactly m3", rd.Orphans)
	}
	if res.Totals.Suppressed != 1 {
		t.Fatalf("suppressed %d, want 1 (the re-executed m3)", res.Totals.Suppressed)
	}
	// m1 must be replayed from P1's log (P2 lost it); m7 may or may not
	// have been sent before the failure.
	if res.Totals.ResentLogged < 1 || res.Totals.ResentLogged > 2 {
		t.Fatalf("resent logged %d, want 1..2 (m1, possibly m7)", res.Totals.ResentLogged)
	}
	for tag, want := range wantFigPhases {
		if phases[tag] != want {
			t.Errorf("m%d: phase %d changed after recovery, want %d (Lemma 4)", tag, phases[tag], want)
		}
	}
}

func TestPaperScenarioCluster3Failure(t *testing.T) {
	// Kill P5 at the moment it would send m4: it has delivered m3 but
	// Cluster 3 has no checkpoint, so the restart loses it and P3 must
	// replay m3 from its log — and m7 was certainly not sent yet (§III-B
	// scenario (i)).
	res, phases := runFig(t, failure.NewSchedule(failure.Event{
		Ranks: []int{4},
		When:  failure.Trigger{AtVT: vtime.Time(1)},
	}))
	if len(res.Rounds) != 1 || res.Rounds[0].RolledBack != 4 {
		t.Fatalf("rounds: %+v", res.Rounds)
	}
	if res.Totals.ResentLogged != 1 {
		t.Fatalf("resent %d logged messages, want exactly m3", res.Totals.ResentLogged)
	}
	if res.Rounds[0].Orphans != 0 {
		t.Fatalf("orphans %d, want 0 (nothing from Cluster 3 was delivered outside)", res.Rounds[0].Orphans)
	}
	for tag, want := range wantFigPhases {
		if phases[tag] != want {
			t.Errorf("m%d: phase %d, want %d", tag, phases[tag], want)
		}
	}
}

func TestPaperScenarioBothClustersFail(t *testing.T) {
	// "If both Cluster2 and Cluster3 roll back, m7 can be sent during
	// recovery of Cluster3" — two concurrent cluster failures in one
	// round.
	res, phases := runFig(t, failure.NewSchedule(failure.Event{
		Ranks: []int{2, 6},
		When:  failure.Trigger{AfterSends: 1},
	}))
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds: %d", len(res.Rounds))
	}
	if res.Rounds[0].RolledBack != 7 {
		t.Fatalf("rolled back %d, want the 7 ranks of Clusters 2 and 3", res.Rounds[0].RolledBack)
	}
	for tag, want := range wantFigPhases {
		if phases[tag] != want {
			t.Errorf("m%d: phase %d, want %d", tag, phases[tag], want)
		}
	}
}
