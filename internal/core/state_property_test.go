package core

// Property-based tests (testing/quick) of the protocol's core data
// structures: the sender-based log store and the RPP table. These are the
// structures whose invariants the recovery machinery rests on.

import (
	"testing"
	"testing/quick"
)

// TestLogStoreProperties: for any sequence of monotone-dated entries and
// any watermark w, above(w) and pruneUpTo(w) partition the entries exactly,
// byte accounting matches, and above() results are date-sorted.
func TestLogStoreProperties(t *testing.T) {
	f := func(gaps []uint8, wseed uint16) bool {
		ls := newLogStore()
		date := int64(0)
		var total int64
		for i, g := range gaps {
			date += int64(g%7) + 1 // strictly increasing dates
			wire := (i % 13) + 1
			ls.add(logEntry{Dst: 3, Date: date, Phase: i % 5, WireLen: wire})
			total += int64(wire)
		}
		if ls.Bytes != total {
			return false
		}
		if date == 0 {
			return true
		}
		w := int64(wseed) % (date + 2)
		above := ls.above(3, w)
		for i, e := range above {
			if e.Date <= w {
				return false
			}
			if i > 0 && above[i].Date < above[i-1].Date {
				return false
			}
		}
		var aboveBytes int64
		for _, e := range above {
			aboveBytes += int64(e.WireLen)
		}
		reclaimed := ls.pruneUpTo(3, w)
		if reclaimed != total-aboveBytes {
			return false
		}
		if ls.Bytes != aboveBytes {
			return false
		}
		// After pruning, everything is above the watermark.
		rest := ls.above(3, 0)
		if len(rest) != len(above) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRPPChannelProperties: MaxDate equals the maximum recorded date, every
// record is retrievable with its phase, and pruneUpTo removes exactly the
// entries at or below the bound while never lowering MaxDate (the watermark
// must survive pruning — the sender can still suppress against it).
func TestRPPChannelProperties(t *testing.T) {
	f := func(raw []uint16, bound uint16) bool {
		ch := newRPPChannel()
		seen := make(map[int64]int)
		var max int64
		for i, r := range raw {
			d := int64(r%97) + 1
			ph := i % 9
			ch.record(d, ph)
			seen[d] = ph
			if d > max {
				max = d
			}
		}
		if ch.MaxDate != max {
			return false
		}
		for d, ph := range seen {
			if ch.Phases[d] != ph {
				return false
			}
		}
		b := int64(bound % 120)
		ch.pruneUpTo(b)
		for d := range ch.Phases {
			if d <= b {
				return false
			}
		}
		for d, ph := range seen {
			if d > b && ch.Phases[d] != ph {
				return false
			}
		}
		return ch.MaxDate == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseUpdateProperties: the Algorithm 1 phase rules as pure
// properties — after any delivery the phase never decreases; an
// inter-cluster delivery leaves the phase strictly above the message phase;
// an intra-cluster one at least at the message phase.
func TestPhaseUpdateProperties(t *testing.T) {
	f := func(phases []uint8, interMask uint16) bool {
		e, _ := newTestEngine(0, []int{0, 0, 1})
		for i, p := range phases {
			inter := interMask&(1<<(i%16)) != 0
			src := 1 // intra
			if inter {
				src = 2
			}
			m := appMsg(src, 0, 1, 10)
			m.Date = int64(i) + 1
			m.Phase = int(p % 12)
			before := e.phase
			e.OnDeliver(m)
			if e.phase < before {
				return false
			}
			if inter && e.phase < m.Phase+1 {
				return false
			}
			if !inter && e.phase < m.Phase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
