package core_test

// Property tests for the correctness results of §IV, exercised on seeded
// random send-deterministic workloads with genuinely nondeterministic
// delivery interleavings (goroutine scheduling + wildcard receives).

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"hydee/internal/apps"
	"hydee/internal/core"
	"hydee/internal/failure"
	"hydee/internal/mpi"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/trace"
)

const propNP = 9

var propTopo = []int{0, 0, 0, 1, 1, 1, 2, 2, 2}

func runDAG(t *testing.T, seed int64, rounds int, sched *failure.Schedule, ckptEvery int) (*mpi.Result, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder(propNP)
	res, err := mpi.Run(mpi.Config{
		NP:              propNP,
		Topo:            rollback.NewTopology(propTopo),
		Protocol:        core.New(),
		Model:           netmodel.Myrinet10G(),
		Failures:        sched,
		Recorder:        rec,
		CheckpointEvery: ckptEvery,
		Watchdog:        60 * time.Second,
	}, apps.RandomDAG(seed, rounds, 3, 4096))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res, rec
}

// TestLemma1PhaseMonotone checks that phases never decrease along any
// happened-before edge (program order or message edge), over random
// workloads, with and without failures.
func TestLemma1PhaseMonotone(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		_, rec := runDAG(t, seed, 6, nil, 0)
		if err := trace.BuildHB(rec.Events()).CheckPhaseMonotone(); err != nil {
			t.Fatalf("seed %d failure-free: %v", seed, err)
		}
		sched := failure.NewSchedule(failure.Event{
			Ranks: []int{int(seed) % propNP},
			When:  failure.Trigger{AfterCheckpoints: 1},
		})
		_, rec = runDAG(t, seed, 6, sched, 2)
		if err := trace.BuildHB(rec.Events()).CheckPhaseMonotone(); err != nil {
			t.Fatalf("seed %d with failure: %v", seed, err)
		}
	}
}

// TestLemma4SendDeterminism checks Definition 3 on the runtime: two
// executions with different (scheduler-driven) delivery interleavings
// produce the same per-process send sequence — same receivers, payloads,
// dates and phases.
func TestLemma4SendDeterminism(t *testing.T) {
	f := func(rawSeed uint16) bool {
		seed := int64(rawSeed%64) + 1
		_, recA := runDAG(t, seed, 5, nil, 0)
		_, recB := runDAG(t, seed, 5, nil, 0)
		for p := 0; p < propNP; p++ {
			a := trace.SendSequence(recA.Events(), p)
			b := trace.SendSequence(recB.Events(), p)
			if err := trace.EqualSendSeq(a, b); err != nil {
				t.Logf("seed %d proc %d: %v", seed, p, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma4UnderRecovery checks that a recovered execution emits exactly
// the failure-free send sequence: same content, same dates, same phases
// (Lemma 4 is what makes phase-ordered replay sound).
func TestLemma4UnderRecovery(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		resClean, recClean := runDAG(t, seed, 8, nil, 3)
		sched := failure.NewSchedule(failure.Event{
			Ranks: []int{4},
			When:  failure.Trigger{AfterCheckpoints: 1},
		})
		resFail, recFail := runDAG(t, seed, 8, sched, 3)
		if len(resFail.Rounds) != 1 {
			t.Fatalf("seed %d: rounds %d", seed, len(resFail.Rounds))
		}
		for p := 0; p < propNP; p++ {
			a := trace.SendSequence(recClean.Events(), p)
			b := trace.SendSequence(recFail.Events(), p)
			if err := trace.EqualSendSeq(a, b); err != nil {
				t.Fatalf("seed %d proc %d: %v", seed, p, err)
			}
		}
		for p := 0; p < propNP; p++ {
			if resClean.Results[p] != resFail.Results[p] {
				t.Fatalf("seed %d: rank %d digest diverged", seed, p)
			}
		}
	}
}

// TestTheorem2OrphanAccounting checks the deadlock-freedom bookkeeping:
// every orphan reported to the recovery process is matched by exactly one
// suppressed re-send, and the recovery round drains completely.
func TestTheorem2OrphanAccounting(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		sched := failure.NewSchedule(failure.Event{
			Ranks: []int{1},
			When:  failure.Trigger{AfterCheckpoints: 1},
		})
		res, _ := runDAG(t, seed, 8, sched, 2)
		if len(res.Rounds) != 1 {
			t.Fatalf("seed %d: %d rounds", seed, len(res.Rounds))
		}
		if got, want := res.Totals.Suppressed, int64(res.Rounds[0].Orphans); got != want {
			t.Fatalf("seed %d: %d suppressions for %d orphans", seed, got, want)
		}
	}
}

// TestMasterWorkerIsNotSendDeterministic is the negative control: the one
// pattern the model excludes (§II-B) must actually violate Definition 3 on
// our runtime — otherwise the determinism tests above prove nothing.
func TestMasterWorkerIsNotSendDeterministic(t *testing.T) {
	run := func() string {
		res, err := mpi.Run(mpi.Config{
			NP:       5,
			Protocol: rollback.Native(),
			Model:    netmodel.Myrinet10G(),
			Watchdog: 30 * time.Second,
		}, apps.MasterWorker(60))
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(res.Results[0]) // master's completion order
	}
	first := run()
	for attempt := 0; attempt < 8; attempt++ {
		if run() != first {
			return // orders differ: not send-deterministic, as expected
		}
	}
	t.Skip("scheduler produced identical completion orders 8 times; cannot demonstrate nondeterminism on this host")
}
