package core_test

import (
	"os"
	"testing"

	"hydee/internal/failure"
	"hydee/internal/trace"
)

// TestDebugDivergence dumps the first diverging event between a clean and a
// recovered run (HYDEE_DEBUG only).
func TestDebugDivergence(t *testing.T) {
	if os.Getenv("HYDEE_DEBUG") == "" {
		t.Skip("set HYDEE_DEBUG=1")
	}
	seed := int64(1)
	_, recClean := runDAG(t, seed, 8, nil, 3)
	sched := failure.NewSchedule(failure.Event{
		Ranks: []int{4},
		When:  failure.Trigger{AfterCheckpoints: 1},
	})
	_, recFail := runDAG(t, seed, 8, sched, 3)

	evA, evB := recClean.Events(), recFail.Events()
	for p := 0; p < propNP; p++ {
		// Compare delivery multisets per (src, date): digests must match.
		type key struct {
			src  int
			date int64
		}
		a := map[key][]uint64{}
		for _, ev := range evA[p] {
			if ev.Op == trace.Deliver {
				k := key{ev.Peer, ev.MsgDate}
				a[k] = append(a[k], ev.Digest)
			}
		}
		b := map[key][]uint64{}
		for _, ev := range evB[p] {
			if ev.Op == trace.Deliver {
				k := key{ev.Peer, ev.MsgDate}
				b[k] = append(b[k], ev.Digest)
			}
		}
		for k, da := range a {
			db := b[k]
			if len(da) != len(db) {
				t.Errorf("proc %d: delivery (src %d, date %d): clean %d times, failed %d times", p, k.src, k.date, len(da), len(db))
				continue
			}
			if len(da) == 1 && da[0] != db[0] {
				t.Errorf("proc %d: delivery (src %d, date %d): digest %x vs %x", p, k.src, k.date, da[0], db[0])
			}
		}
		for k, db := range b {
			if _, ok := a[k]; !ok {
				t.Errorf("proc %d: extra delivery in failed run (src %d, date %d) x%d", p, k.src, k.date, len(db))
			}
		}
	}
}
