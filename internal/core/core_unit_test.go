package core

import (
	"errors"
	"fmt"
	"testing"

	"hydee/internal/checkpoint"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/transport"
	"hydee/internal/vtime"
)

// fakeProc implements rollback.Proc for engine unit tests. Control messages
// sent by the engine are captured; WaitCtl drains a scripted queue.
type fakeProc struct {
	rank    int
	topo    *rollback.Topology
	clock   *vtime.Clock
	model   netmodel.Model
	metrics rollback.Metrics

	sentCtl []capturedCtl
	sentRaw []*transport.Msg
	held    map[int][]rollback.HeldMsg
	// queue feeds WaitCtl; each entry is dispatched to the engine.
	queue  []*transport.Msg
	engine rollback.Engine
}

type capturedCtl struct {
	dst  int
	body any
}

func newFakeProc(rank int, assign []int) *fakeProc {
	return &fakeProc{
		rank:  rank,
		topo:  rollback.NewTopology(assign),
		clock: vtime.NewClock(0),
		model: netmodel.Myrinet10G(),
		held:  make(map[int][]rollback.HeldMsg),
	}
}

func (f *fakeProc) Rank() int                  { return f.rank }
func (f *fakeProc) Topo() *rollback.Topology   { return f.topo }
func (f *fakeProc) Clock() *vtime.Clock        { return f.clock }
func (f *fakeProc) Model() netmodel.Model      { return f.model }
func (f *fakeProc) Metrics() *rollback.Metrics { return &f.metrics }
func (f *fakeProc) RecoveryID() int            { return f.topo.NP }
func (f *fakeProc) HeldFrom(src int) int64 {
	var max int64
	for _, h := range f.held[src] {
		if h.Date > max {
			max = h.Date
		}
	}
	return max
}
func (f *fakeProc) HeldEntries(src int) []rollback.HeldMsg { return f.held[src] }

func (f *fakeProc) SendCtl(dst int, body any, wire int) {
	f.sentCtl = append(f.sentCtl, capturedCtl{dst: dst, body: body})
	f.metrics.CtlMsgs++
}

func (f *fakeProc) SendAppRaw(m *transport.Msg) { f.sentRaw = append(f.sentRaw, m) }

func (f *fakeProc) WaitCtl(pred func() bool) error {
	for !pred() {
		if len(f.queue) == 0 {
			return errors.New("fakeProc: WaitCtl starved")
		}
		m := f.queue[0]
		f.queue = f.queue[1:]
		f.engine.OnCtl(m)
	}
	return nil
}

func (f *fakeProc) ctlOfType(match func(any) bool) []capturedCtl {
	var out []capturedCtl
	for _, c := range f.sentCtl {
		if match(c.body) {
			out = append(out, c)
		}
	}
	return out
}

func newTestEngine(rank int, assign []int) (*engine, *fakeProc) {
	px := newFakeProc(rank, assign)
	e := New().NewEngine(rank, px).(*engine)
	px.engine = e
	return e, px
}

func appMsg(src, dst, tag, wire int) *transport.Msg {
	return &transport.Msg{Src: src, Dst: dst, Kind: transport.App, Tag: tag, WireLen: wire, Data: []byte{1}}
}

func TestPhaseRuleIntraVsInter(t *testing.T) {
	// Ranks 0,1 in cluster 0; rank 2 in cluster 1.
	e, _ := newTestEngine(0, []int{0, 0, 1})
	if e.CurrentPhase() != 1 {
		t.Fatalf("initial phase %d, want 1 (§III-B)", e.CurrentPhase())
	}
	// Intra-cluster delivery: phase = max(phase, msg phase).
	m := appMsg(1, 0, 1, 10)
	m.Phase = 3
	m.Date = 1
	e.OnDeliver(m)
	if e.CurrentPhase() != 3 {
		t.Fatalf("intra rule: phase %d, want 3", e.CurrentPhase())
	}
	// Inter-cluster delivery: phase = max(phase, msg phase + 1).
	m2 := appMsg(2, 0, 1, 10)
	m2.Phase = 3
	m2.Date = 1
	e.OnDeliver(m2)
	if e.CurrentPhase() != 4 {
		t.Fatalf("inter rule: phase %d, want 4", e.CurrentPhase())
	}
	// A lower-phase delivery never decreases the phase.
	m3 := appMsg(2, 0, 1, 10)
	m3.Phase = 1
	m3.Date = 2
	e.OnDeliver(m3)
	if e.CurrentPhase() != 4 {
		t.Fatalf("phase decreased to %d", e.CurrentPhase())
	}
}

func TestDateIncrementsOnSendAndDeliver(t *testing.T) {
	e, _ := newTestEngine(0, []int{0, 0})
	m := appMsg(0, 1, 1, 10)
	if _, err := e.PreSend(m); err != nil {
		t.Fatal(err)
	}
	if m.Date != 1 || e.CurrentDate() != 1 {
		t.Fatalf("send date %d / %d", m.Date, e.CurrentDate())
	}
	in := appMsg(1, 0, 1, 10)
	in.Date = 1
	e.OnDeliver(in)
	if e.CurrentDate() != 2 {
		t.Fatalf("date after delivery %d, want 2 (Algorithm 1 line 17)", e.CurrentDate())
	}
}

func TestLoggingOnlyInterCluster(t *testing.T) {
	e, px := newTestEngine(0, []int{0, 0, 1})
	intra := appMsg(0, 1, 1, 100)
	if _, err := e.PreSend(intra); err != nil {
		t.Fatal(err)
	}
	if px.metrics.LoggedMsgs != 0 {
		t.Fatal("intra-cluster message was logged")
	}
	inter := appMsg(0, 2, 1, 1<<20)
	v, err := e.PreSend(inter)
	if err != nil {
		t.Fatal(err)
	}
	if px.metrics.LoggedMsgs != 1 || px.metrics.LoggedBytes != 1<<20 {
		t.Fatalf("inter-cluster logging wrong: %+v", px.metrics)
	}
	if v.ExtraCPU <= 0 {
		t.Fatal("logging copy of a large payload should cost visible CPU")
	}
	if got := e.logs.above(2, 0); len(got) != 1 || got[0].Date != inter.Date {
		t.Fatalf("log store content wrong: %v", got)
	}
}

func TestPiggybackStrategyBySize(t *testing.T) {
	e, _ := newTestEngine(0, []int{0, 0})
	small := appMsg(0, 1, 1, netmodel.InlinePiggybackMax)
	vs, _ := e.PreSend(small)
	if vs.PiggyWire != netmodel.PiggybackBytes {
		t.Fatalf("small message should carry inline piggyback, got %d", vs.PiggyWire)
	}
	large := appMsg(0, 1, 1, netmodel.InlinePiggybackMax+1)
	vl, _ := e.PreSend(large)
	if vl.PiggyWire != 0 {
		t.Fatal("large message should not inflate the wire")
	}
	if vl.ExtraCPU <= 0 {
		t.Fatal("large message should pay the separate-control-message CPU")
	}
}

func TestExtraPiggyOption(t *testing.T) {
	px := newFakeProc(0, []int{0, 0})
	e := NewWithOptions(Options{Name: "mlog", ExtraPiggyBytes: 8}).NewEngine(0, px).(*engine)
	px.engine = e
	m := appMsg(0, 1, 1, 100)
	v, _ := e.PreSend(m)
	if v.PiggyWire != netmodel.PiggybackBytes+8 {
		t.Fatalf("determinant bytes not piggybacked: %d", v.PiggyWire)
	}
}

func TestRPPRecording(t *testing.T) {
	e, _ := newTestEngine(0, []int{0, 1})
	m := appMsg(1, 0, 1, 10)
	m.Date = 5
	m.Phase = 2
	e.OnDeliver(m)
	ch := e.rpp[1]
	if ch == nil || ch.MaxDate != 5 || ch.Phases[5] != 2 {
		t.Fatalf("RPP wrong: %+v", ch)
	}
}

func TestAdmitDropsStaleIncSeen(t *testing.T) {
	e, _ := newTestEngine(0, []int{0, 1})
	e.myInc = 2
	m := appMsg(1, 0, 1, 10)
	m.IncSeen = 1
	if e.Admit(m) {
		t.Fatal("admitted a message sent before the sender learned of the restart")
	}
	m.IncSeen = 2
	if !e.Admit(m) {
		t.Fatal("rejected a current message")
	}
}

func TestLogStoreAboveAndPrune(t *testing.T) {
	ls := newLogStore()
	for d := int64(1); d <= 10; d++ {
		ls.add(logEntry{Dst: 7, Date: d * 10, WireLen: 5})
	}
	above := ls.above(7, 50)
	if len(above) != 5 || above[0].Date != 60 {
		t.Fatalf("above: %v", above)
	}
	if ls.above(7, 1000) != nil && len(ls.above(7, 1000)) != 0 {
		t.Fatal("above past the end should be empty")
	}
	reclaimed := ls.pruneUpTo(7, 50)
	if reclaimed != 25 || ls.Bytes != 25 {
		t.Fatalf("prune reclaimed %d, bytes %d", reclaimed, ls.Bytes)
	}
	if got := ls.above(7, 0); len(got) != 5 || got[0].Date != 60 {
		t.Fatalf("post-prune content: %v", got)
	}
	// Pruning everything removes the channel.
	ls.pruneUpTo(7, 1000)
	if len(ls.PerDst) != 0 || ls.Bytes != 0 {
		t.Fatalf("full prune left %+v", ls)
	}
}

func TestGCAckPrunesPeerState(t *testing.T) {
	e, px := newTestEngine(0, []int{0, 1})
	// Log three messages to rank 1.
	for i := 0; i < 3; i++ {
		m := appMsg(0, 1, 1, 100)
		if _, err := e.PreSend(m); err != nil {
			t.Fatal(err)
		}
	}
	// Record deliveries from rank 1.
	for d := int64(1); d <= 3; d++ {
		in := appMsg(1, 0, 1, 10)
		in.Date = d
		in.Phase = 1
		e.OnDeliver(in)
	}
	ack := &transport.Msg{Src: 1, Kind: transport.Ctl, CtlBody: GCAck{CkptDate: 2, DeliveredFromYou: 2}}
	e.OnCtl(ack)
	if px.metrics.GCReclaimed != 200 {
		t.Fatalf("reclaimed %d, want 200", px.metrics.GCReclaimed)
	}
	if len(e.logs.PerDst[1]) != 1 {
		t.Fatalf("log entries left: %d", len(e.logs.PerDst[1]))
	}
	ch := e.rpp[1]
	if _, ok := ch.Phases[2]; ok {
		t.Fatal("RPP entry <= ack CkptDate not pruned")
	}
	if _, ok := ch.Phases[3]; !ok {
		t.Fatal("RPP entry above CkptDate wrongly pruned")
	}
}

func TestGCAckOnlyAfterSecondCheckpoint(t *testing.T) {
	// The ack carries the previous checkpoint's watermarks, so no ack may
	// be emitted before two checkpoints completed (DESIGN.md: a failure
	// racing checkpoint N can force a restore to N-1).
	e, px := newTestEngine(0, []int{0, 1})
	deliver := func(date int64) {
		in := appMsg(1, 0, 1, 10)
		in.Date = date
		e.OnDeliver(in)
	}
	deliver(1)
	if len(px.ctlOfType(func(b any) bool { _, ok := b.(GCAck); return ok })) != 0 {
		t.Fatal("ack before any checkpoint")
	}
	e.OnCheckpoint(&checkpoint.Snapshot{Rank: 0, Seq: 1})
	deliver(2)
	if len(px.ctlOfType(func(b any) bool { _, ok := b.(GCAck); return ok })) != 0 {
		t.Fatal("ack after only one checkpoint (unsafe for N-1 restore)")
	}
	e.OnCheckpoint(&checkpoint.Snapshot{Rank: 0, Seq: 2})
	deliver(3)
	acks := px.ctlOfType(func(b any) bool { _, ok := b.(GCAck); return ok })
	if len(acks) != 1 {
		t.Fatalf("expected one ack after the second checkpoint, got %d", len(acks))
	}
	got := acks[0].body.(GCAck)
	// The ack must carry checkpoint 1's watermarks (delivered date 1),
	// not checkpoint 2's (delivered date 2).
	if got.DeliveredFromYou != 1 {
		t.Fatalf("ack watermark %d, want 1 (previous checkpoint)", got.DeliveredFromYou)
	}
}

func TestEngineStateRoundTrip(t *testing.T) {
	e, _ := newTestEngine(0, []int{0, 1})
	m := appMsg(0, 1, 9, 64)
	if _, err := e.PreSend(m); err != nil {
		t.Fatal(err)
	}
	in := appMsg(1, 0, 1, 10)
	in.Date = 4
	in.Phase = 2
	e.OnDeliver(in)

	snap := &checkpoint.Snapshot{Rank: 0, Seq: 1}
	e.OnCheckpoint(snap)
	if len(snap.ProtState) == 0 {
		t.Fatal("no protocol state captured")
	}
	st, err := decodeEngineState(snap.ProtState)
	if err != nil {
		t.Fatal(err)
	}
	if st.Date != e.date || st.Phase != e.phase {
		t.Fatalf("state mismatch: %+v", st)
	}
	if st.Logs.Bytes != 64 || st.RPP[1].MaxDate != 4 {
		t.Fatalf("state content: logs=%d rpp=%+v", st.Logs.Bytes, st.RPP[1])
	}
	// The log volume is part of the checkpoint size (Alg. 1 line 21).
	if snap.ModelBytes < 64 {
		t.Fatalf("checkpoint cost %d does not include the log", snap.ModelBytes)
	}
}

func TestSuppressionWatermark(t *testing.T) {
	e, px := newTestEngine(0, []int{0, 1})
	// Simulate a restart: rank 0 rolled back alone in cluster 0.
	snap := &checkpoint.Snapshot{Rank: 0}
	e.OnRestore(snap, &rollback.RoundInfo{
		Round:      1,
		RolledBack: []int{0},
		AllIncs:    []int32{1, 0},
	})
	// Survivor 1 answers: it holds messages from us up to date 2.
	e.OnCtl(&transport.Msg{Src: 1, Kind: transport.Ctl, CtlBody: LastDate{Round: 1, Held: 2}})
	// Release the first-send gate.
	px.queue = append(px.queue, &transport.Msg{Src: 2, Kind: transport.Ctl, CtlBody: NotifySendMsg{Round: 1, Phase: 1}})

	// First two re-executed sends are suppressed as orphans.
	for want := int64(1); want <= 2; want++ {
		m := appMsg(0, 1, 1, 10)
		v, err := e.PreSend(m)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Suppress {
			t.Fatalf("send date %d not suppressed (watermark 2)", m.Date)
		}
	}
	// They must still be (re-)logged for later failures of the receiver.
	if len(e.logs.PerDst[1]) != 2 {
		t.Fatalf("suppressed sends not re-logged: %d", len(e.logs.PerDst[1]))
	}
	// Orphan notifications went to the recovery process.
	notes := px.ctlOfType(func(b any) bool { _, ok := b.(OrphanNotification); return ok })
	if len(notes) != 2 {
		t.Fatalf("orphan notifications: %d", len(notes))
	}
	// The third send passes the watermark and flows normally.
	m := appMsg(0, 1, 1, 10)
	v, err := e.PreSend(m)
	if err != nil {
		t.Fatal(err)
	}
	if v.Suppress {
		t.Fatal("send above the watermark suppressed")
	}
}

func TestLogDrainStall(t *testing.T) {
	// §V-C future work: a 100 MB/s device with a 1 MB staging buffer.
	// Logging 1 MB bursts faster than the drain must eventually stall the
	// sender; an unbounded buffer never stalls.
	px := newFakeProc(0, []int{0, 1})
	e := NewWithOptions(Options{LogDrainBPS: 100e6, LogMemBudget: 1 << 20}).NewEngine(0, px).(*engine)
	px.engine = e
	// Non-stall components of ExtraCPU for a large logged message: the
	// overlapped copy plus the separate piggyback control message.
	baseCPU := px.model.CopyCost(512<<10, true) + px.model.SendOverhead(netmodel.PiggybackBytes)
	var stalled vtime.Duration
	for i := 0; i < 8; i++ {
		m := appMsg(0, 1, 1, 512<<10)
		v, err := e.PreSend(m)
		if err != nil {
			t.Fatal(err)
		}
		stalled += v.ExtraCPU - baseCPU
	}
	if stalled <= 0 {
		t.Fatal("overloaded staging buffer never stalled the sender")
	}

	px2 := newFakeProc(0, []int{0, 1})
	e2 := NewWithOptions(Options{LogDrainBPS: 100e6}).NewEngine(0, px2).(*engine)
	px2.engine = e2
	for i := 0; i < 8; i++ {
		m := appMsg(0, 1, 1, 512<<10)
		v, err := e2.PreSend(m)
		if err != nil {
			t.Fatal(err)
		}
		if v.ExtraCPU > baseCPU {
			t.Fatal("unbounded staging buffer stalled")
		}
	}
}

func TestLogDrainKeepsRecoveryIntact(t *testing.T) {
	// The drained log must still replay: drain timing is a cost model,
	// not a different data structure.
	px := newFakeProc(0, []int{0, 1})
	e := NewWithOptions(Options{LogDrainBPS: 50e6, LogMemBudget: 4096}).NewEngine(0, px).(*engine)
	px.engine = e
	for i := 0; i < 3; i++ {
		m := appMsg(0, 1, 1, 8192)
		if _, err := e.PreSend(m); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(e.logs.above(1, 0)); got != 3 {
		t.Fatalf("log entries %d, want 3", got)
	}
}

func TestRestartScope(t *testing.T) {
	p := New()
	topo := rollback.NewTopology([]int{0, 0, 1, 1, 2, 2})
	scope := p.RestartScope(topo, []int{3})
	if fmt.Sprint(scope) != "[2 3]" {
		t.Fatalf("scope: %v", scope)
	}
	scope = p.RestartScope(topo, []int{0, 5})
	if fmt.Sprint(scope) != "[0 1 4 5]" {
		t.Fatalf("multi-cluster scope: %v", scope)
	}
}
