package core

// Control-message bodies exchanged by the HydEE engines and the recovery
// process. The transport is in-memory, so bodies travel as typed values;
// the WireLen passed alongside models their on-the-wire size.

// RoundStart is broadcast by the recovery process when a recovery round
// begins: it tells every process which clusters rolled back so it can
// collect the corresponding rollback notifications before reporting.
type RoundStart struct {
	Round      int
	RolledBack []int
	// AllIncs is the current incarnation of every rank.
	AllIncs []int32
}

// RollbackNote is sent by each restarted process to every process outside
// its cluster (Algorithm 2 line 6). In addition to the date the process
// restarts from, it carries the per-channel watermark of what the restarted
// process still holds from the destination (DESIGN.md deviation 1), which
// doubles as the LastDate answer between two concurrently-restarted
// processes, and the new incarnation number.
type RollbackNote struct {
	Round int
	// RestartDate is the sender's logical date restored from its
	// checkpoint; messages it had sent with a later date are orphans.
	RestartDate int64
	// HeldFromYou is the maximum date of messages from the destination
	// that the restarted sender holds (delivered into its checkpointed
	// RPP or buffered in its checkpointed mailbox). The destination
	// re-sends its logged messages above this watermark.
	HeldFromYou int64
	// NewInc is the sender's incarnation after restart.
	NewInc int32
}

// LastDate is the survivor's answer to a RollbackNote (Algorithm 3 line 9):
// the maximum date the survivor holds from the restarted process, used by
// the restarted process to suppress re-executed orphan sends.
type LastDate struct {
	Round int
	Held  int64
}

// Report aggregates what the paper sends as three separate messages
// (Log, Orphan, OwnPhase — Algorithm 3 lines 15-17 and Algorithm 2 line 7).
type Report struct {
	Round int
	// OwnPhase is the process's current phase (restored phase for a
	// rolled-back process); its first post-failure send is gated on it.
	OwnPhase int
	// LogPhases lists the phases of the logged messages this process must
	// re-send (one entry per phase value present).
	LogPhases []int
	// OrphanPhases lists the phase of each orphan message this process
	// holds (one entry per orphan message).
	OrphanPhases []int
}

// OrphanNotification tells the recovery process that a re-executed orphan
// send was suppressed (Algorithm 2 line 15).
type OrphanNotification struct {
	Round int
	Phase int
}

// NotifySendMsg releases the first post-failure send of a process whose
// reported phase is Phase (Algorithm 4 lines 21-23).
type NotifySendMsg struct {
	Round int
	Phase int
}

// NotifySendLog releases the re-send of logged messages with phase at most
// Phase (Algorithm 4 lines 17-20, Algorithm 3 lines 22-24).
type NotifySendLog struct {
	Round int
	Phase int
}

// GCAck implements the garbage collection of §III-E: after a checkpoint,
// the receiver acknowledges the first message delivered from each process
// of another cluster. CkptDate prunes the peer's RPP entries about this
// process (they can never again denote orphans); DeliveredFromYou prunes
// the peer's payload log toward this process.
type GCAck struct {
	CkptDate         int64
	DeliveredFromYou int64
}

// Modeled wire sizes of the control messages.
const (
	wireRoundStart = 24
	wireRollback   = 28
	wireLastDate   = 16
	wireOrphanNote = 12
	wireNotify     = 12
	wireGCAck      = 20
)

func wireReport(r *Report) int {
	return 16 + 4*len(r.LogPhases) + 4*len(r.OrphanPhases)
}
