package core

import (
	"sort"

	"hydee/internal/checkpoint"
	"hydee/internal/rollback"
	"hydee/internal/transport"
)

// roundState is the engine-side state of one recovery round.
type roundState struct {
	round      int
	selfRolled bool
	// startSeen marks that the round membership is known (RoundStart
	// received, or OnRestore for a rolled-back process).
	startSeen bool
	// notesNeeded lists the rolled-back ranks outside this process's
	// cluster whose RollbackNote must be processed before reporting.
	notesNeeded map[int]bool
	notesDone   map[int]bool
	reportSent  bool
	// gated blocks this process's first subsequent send until released.
	gated    bool
	released bool
	// orphanPhases collects the phase of each orphan message this process
	// holds (one entry per message).
	orphanPhases []int
	// resent is the ResentLogs list: logged entries to re-send, released
	// by phase.
	resent []logEntry
	// needWatermark / orphanDate implement Algorithm 2's OrphanDate table
	// for a rolled-back process: suppression watermarks per outside rank.
	needWatermark map[int]bool
	orphanDate    map[int]int64
}

func (e *engine) roundState(round int) *roundState {
	rs := e.rounds[round]
	if rs == nil {
		rs = &roundState{
			round:         round,
			notesDone:     make(map[int]bool),
			needWatermark: make(map[int]bool),
			orphanDate:    make(map[int]int64),
		}
		e.rounds[round] = rs
		delete(e.rounds, round-4) // prune long-gone rounds
	}
	if e.active == nil || e.active.round < round {
		e.active = rs
	}
	return rs
}

// OnRestore implements Algorithm 2: rehydrate the protocol state from the
// checkpoint, then notify every process outside the cluster.
func (e *engine) OnRestore(s *checkpoint.Snapshot, round *rollback.RoundInfo) {
	if len(s.ProtState) > 0 {
		st, err := decodeEngineState(s.ProtState)
		if err != nil {
			panic(err)
		}
		e.date = st.Date
		e.phase = st.Phase
		e.rpp = st.RPP
		if e.rpp == nil {
			e.rpp = make(map[int]*rppChannel)
		}
		e.logs = st.Logs
		if e.logs == nil {
			e.logs = newLogStore()
		}
		if e.logs.PerDst == nil {
			e.logs.PerDst = make(map[int][]logEntry)
		}
		e.gcSafeValid = st.GCSafeValid
		e.gcSafeDate = st.GCSafeDate
		e.gcSafeDeliv = st.GCSafeDeliv
		e.gcPendingValid = st.GCPendingValid
		e.gcPendingDate = st.GCPendingDate
		e.gcPendingDeliv = st.GCPendingDeliv
		e.gcAcked = make(map[int]bool)
	}
	e.myInc = round.AllIncs[e.rank]
	copy(e.knownInc, round.AllIncs)

	rs := e.roundState(round.Round)
	rs.selfRolled = true
	rs.gated = true
	rs.startSeen = true
	rs.notesNeeded = make(map[int]bool)
	for _, r := range round.RolledBack {
		if e.topo.ClusterOf[r] != e.cluster {
			rs.notesNeeded[r] = true
		}
	}
	for _, dst := range e.outsideRanks() {
		rs.needWatermark[dst] = true
	}
	// Broadcast the rollback notification (Algorithm 2 line 6) with the
	// per-channel held watermark (DESIGN.md deviation 1).
	for _, dst := range e.outsideRanks() {
		wm := e.px.HeldFrom(dst)
		if ch := e.rpp[dst]; ch != nil && ch.MaxDate > wm {
			wm = ch.MaxDate
		}
		e.px.SendCtl(dst, RollbackNote{
			Round:       round.Round,
			RestartDate: e.date,
			HeldFromYou: wm,
			NewInc:      e.myInc,
		}, wireRollback)
	}
	e.maybeReport(rs)
}

// OnCtl implements rollback.Engine: the recovery control plane.
func (e *engine) OnCtl(m *transport.Msg) {
	switch b := m.CtlBody.(type) {
	case RoundStart:
		rs := e.roundState(b.Round)
		for r, inc := range b.AllIncs {
			if inc > e.knownInc[r] {
				e.knownInc[r] = inc
			}
		}
		if !rs.startSeen {
			rs.startSeen = true
			if !rs.selfRolled {
				rs.gated = true // Algorithm 3 line 18
				rs.notesNeeded = make(map[int]bool)
				for _, r := range b.RolledBack {
					if e.topo.ClusterOf[r] != e.cluster {
						rs.notesNeeded[r] = true
					}
				}
			}
		}
		e.maybeReport(rs)

	case RollbackNote:
		e.onRollbackNote(m.Src, b)

	case LastDate:
		rs := e.roundState(b.Round)
		rs.orphanDate[m.Src] = b.Held
		delete(rs.needWatermark, m.Src)

	case NotifySendMsg:
		rs := e.roundState(b.Round)
		rs.released = true

	case NotifySendLog:
		e.resendLogged(b.Round, b.Phase)

	case GCAck:
		mx := e.px.Metrics()
		mx.GCReclaimed += e.logs.pruneUpTo(m.Src, b.DeliveredFromYou)
		if ch := e.rpp[m.Src]; ch != nil {
			ch.pruneUpTo(b.CkptDate)
		}
	}
}

// onRollbackNote handles one restarted process's notification: answer with
// the held watermark, compute the logged messages to re-send and the orphan
// messages held (Algorithm 3 lines 6-17).
func (e *engine) onRollbackNote(q int, b RollbackNote) {
	rs := e.roundState(b.Round)
	if e.knownInc[q] < b.NewInc {
		e.knownInc[q] = b.NewInc
	}
	if !rs.selfRolled {
		rs.gated = true
	}
	if rs.notesDone[q] {
		return
	}
	rs.notesDone[q] = true

	// Watermark for the restarted process's suppression decisions. A
	// rolled-back process's own note already carried its watermark, so
	// only survivors answer with LastDate (Algorithm 3 line 9).
	if rs.selfRolled {
		rs.orphanDate[q] = b.HeldFromYou
		delete(rs.needWatermark, q)
	} else {
		held := e.px.HeldFrom(q)
		if ch := e.rpp[q]; ch != nil && ch.MaxDate > held {
			held = ch.MaxDate
		}
		e.px.SendCtl(q, LastDate{Round: b.Round, Held: held}, wireLastDate)
	}

	// Logged messages to re-send: entries above what the restarted
	// process still holds (Algorithm 3 lines 10-12).
	rs.resent = append(rs.resent, e.logs.above(q, b.HeldFromYou)...)

	// Orphan messages from q: delivered or buffered with a date later
	// than q's restart point (Algorithm 3 lines 13-14).
	// Sorted dates so the phases land in rs.orphanPhases — and from there
	// in the wire-visible Report — in a reproducible order.
	if ch := e.rpp[q]; ch != nil {
		for _, date := range sortedKeys(ch.Phases) {
			if date > b.RestartDate {
				rs.orphanPhases = append(rs.orphanPhases, ch.Phases[date])
			}
		}
	}
	for _, h := range e.px.HeldEntries(q) {
		if h.Date > b.RestartDate {
			rs.orphanPhases = append(rs.orphanPhases, h.Phase)
		}
	}
	e.maybeReport(rs)
}

// maybeReport sends the per-round report once the membership is known and
// every expected rollback notification has been processed.
func (e *engine) maybeReport(rs *roundState) {
	if rs.reportSent || !rs.startSeen {
		return
	}
	for r := range rs.notesNeeded {
		if !rs.notesDone[r] {
			return
		}
	}
	phases := make(map[int]bool)
	for _, le := range rs.resent {
		phases[le.Phase] = true
	}
	logPhases := make([]int, 0, len(phases))
	for ph := range phases {
		logPhases = append(logPhases, ph)
	}
	sort.Ints(logPhases)
	rep := Report{
		Round:        rs.round,
		OwnPhase:     e.phase,
		LogPhases:    logPhases,
		OrphanPhases: append([]int(nil), rs.orphanPhases...),
	}
	e.px.SendCtl(e.px.RecoveryID(), rep, wireReport(&rep))
	rs.reportSent = true
}

// resendLogged re-sends the pending logged entries with phase <= maxPhase
// (Algorithm 3 lines 22-24).
func (e *engine) resendLogged(round, maxPhase int) {
	rs := e.roundState(round)
	kept := rs.resent[:0]
	for _, le := range rs.resent {
		if le.Phase > maxPhase {
			kept = append(kept, le)
			continue
		}
		m := &transport.Msg{
			Src: e.rank, Dst: le.Dst, Kind: transport.App,
			Tag: le.Tag, Date: le.Date, Phase: le.Phase,
			WireLen: le.WireLen, Data: le.Data,
			IncSeen: e.knownInc[le.Dst],
		}
		e.px.SendAppRaw(m)
		e.px.Metrics().ResentLogged++
	}
	rs.resent = kept
}
