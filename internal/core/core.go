// Package core implements HydEE, the paper's contribution: a hybrid
// rollback-recovery protocol for send-deterministic message-passing
// applications that combines coordinated checkpointing inside process
// clusters with sender-based logging of inter-cluster message payloads,
// and provides failure containment without logging any non-deterministic
// event.
//
// The failure-free path is Algorithm 1: every message carries the sender's
// date and phase; an inter-cluster delivery bumps the receiver's phase to
// max(phase, msgPhase+1), an intra-cluster one to max(phase, msgPhase);
// inter-cluster payloads are copied into the sender's memory; the RPP table
// records the date and phase of every inter-cluster delivery. Checkpoints
// save image, RPP, logs, phase and date.
//
// Recovery is Algorithms 2–4, driven by control messages (see msgs.go) and
// a per-round recovery process: restarted processes notify everyone outside
// their cluster, logged messages above the receiver's restored watermark
// are re-sent ordered by phases, re-executed sends of orphan messages are
// suppressed and acknowledged to the recovery process, and no process may
// perform its first post-failure send while an orphan of a strictly lower
// phase is outstanding.
package core

import (
	"fmt"

	"hydee/internal/checkpoint"
	"hydee/internal/netmodel"
	"hydee/internal/rollback"
	"hydee/internal/transport"
	"hydee/internal/vtime"
)

// Options tunes the protocol.
type Options struct {
	// Name overrides the protocol name in reports (default "hydee").
	Name string
	// ExtraPiggyBytes adds per-message protocol data beyond HydEE's
	// date+phase. The full-message-logging baseline of Figure 6 uses it
	// to model determinant piggybacking.
	ExtraPiggyBytes int
	// DisableGC turns off the garbage-collection acknowledgments of
	// §III-E (ablation).
	DisableGC bool
	// LogDrainBPS models the future-work design of §V-C: instead of
	// keeping logged payloads in node memory, they are staged in a memory
	// buffer and drained asynchronously to a local storage device (e.g.
	// an SSD) at this bandwidth. Zero keeps the paper's in-memory design.
	LogDrainBPS float64
	// LogMemBudget is the staging-buffer size in bytes for the drain
	// design; when the backlog exceeds it, the sender stalls until the
	// device catches up. Zero with LogDrainBPS set means an unbounded
	// buffer (drain timing tracked, never stalls).
	LogMemBudget int64
}

// Protocol is the HydEE protocol factory.
type Protocol struct {
	opts Options
}

// New returns HydEE with default options.
func New() *Protocol { return NewWithOptions(Options{}) }

// NewWithOptions returns HydEE with the given options.
func NewWithOptions(o Options) *Protocol {
	if o.Name == "" {
		o.Name = "hydee"
	}
	return &Protocol{opts: o}
}

// Name implements rollback.Protocol.
func (pr *Protocol) Name() string { return pr.opts.Name }

// NewEngine implements rollback.Protocol.
func (pr *Protocol) NewEngine(rank int, px rollback.Proc) rollback.Engine {
	topo := px.Topo()
	return &engine{
		prot:     pr,
		px:       px,
		rank:     rank,
		topo:     topo,
		cluster:  topo.ClusterOf[rank],
		phase:    1, // all process phases are initialized to 1 (§III-B)
		rpp:      make(map[int]*rppChannel),
		logs:     newLogStore(),
		knownInc: make([]int32, topo.NP),
		rounds:   make(map[int]*roundState),
	}
}

// NewRecovery implements rollback.Protocol.
func (pr *Protocol) NewRecovery(rx rollback.RecoveryContext) rollback.Recovery {
	return &recovery{rx: rx}
}

// RestartScope implements rollback.Protocol: the failed processes' entire
// clusters roll back, nothing else (failure containment).
func (pr *Protocol) RestartScope(topo *rollback.Topology, failed []int) []int {
	return topo.RanksOf(topo.ClustersOf(failed))
}

// Tolerates implements rollback.Protocol.
func (pr *Protocol) Tolerates() bool { return true }

// engine is the per-process HydEE instance. It runs on its process's
// goroutine only.
type engine struct {
	prot    *Protocol
	px      rollback.Proc
	rank    int
	topo    *rollback.Topology
	cluster int

	date  int64
	phase int
	rpp   map[int]*rppChannel
	logs  *logStore

	myInc    int32
	knownInc []int32

	// Garbage collection (§III-E). Acknowledgments carry the watermarks
	// of the previous checkpoint, not the latest one: a failure racing a
	// coordinated checkpoint can force the cluster back to sequence N-1,
	// so only N-1's watermarks are safe to prune by once N completes.
	gcSafeValid    bool
	gcSafeDate     int64
	gcSafeDeliv    map[int]int64
	gcPendingValid bool
	gcPendingDate  int64
	gcPendingDeliv map[int]int64
	gcAcked        map[int]bool

	// Recovery.
	rounds map[int]*roundState
	active *roundState

	// Asynchronous log drain (§V-C future work): virtual time until which
	// the local storage device is busy writing staged log entries.
	drainBusyUntil vtime.Time
}

// Name implements rollback.Engine.
func (e *engine) Name() string { return e.prot.opts.Name }

// CurrentPhase implements rollback.PhaseReporter.
func (e *engine) CurrentPhase() int { return e.phase }

// CurrentDate implements rollback.PhaseReporter.
func (e *engine) CurrentDate() int64 { return e.date }

// CheckpointScope implements rollback.Engine: the process's cluster.
func (e *engine) CheckpointScope() []int { return e.topo.Members[e.cluster] }

func (e *engine) interCluster(peer int) bool { return e.topo.ClusterOf[peer] != e.cluster }

// PreSend implements Algorithm 1 lines 5-9 plus the send gating and orphan
// suppression of Algorithm 2.
func (e *engine) PreSend(m *transport.Msg) (rollback.SendVerdict, error) {
	for {
		rs := e.active
		if rs == nil || !rs.gated {
			break
		}
		// First post-failure send: wait for the recovery process's
		// release and, if this process rolled back, for every channel
		// watermark (Algorithm 2 line 8, Algorithm 3 line 18). The wait
		// also ends when a newer round supersedes this one (a starved
		// round's coordinator was killed and a merged round took over):
		// the old release will never come, and the predicate re-anchors
		// on the new active round.
		err := e.px.WaitCtl(func() bool {
			return e.active != rs || (rs.released && (!rs.selfRolled || len(rs.needWatermark) == 0))
		})
		if err != nil {
			return rollback.SendVerdict{}, err
		}
		if e.active == rs {
			rs.gated = false
			break
		}
	}

	e.date++
	m.Date = e.date
	m.Phase = e.phase
	m.IncSeen = e.knownInc[m.Dst]

	var v rollback.SendVerdict
	inter := e.interCluster(m.Dst)
	if inter {
		// Sender-based payload logging, overlapped with transmission.
		e.logs.add(logEntry{
			Dst: m.Dst, Date: m.Date, Phase: m.Phase,
			Tag: m.Tag, WireLen: m.WireLen, Data: m.Data,
		})
		mx := e.px.Metrics()
		mx.LoggedMsgs++
		mx.LoggedBytes += int64(m.WireLen)
		if e.logs.Bytes > mx.LogPeakBytes {
			mx.LogPeakBytes = e.logs.Bytes
		}
		v.ExtraCPU += e.px.Model().CopyCost(m.WireLen, true)
		if e.prot.opts.LogDrainBPS > 0 {
			v.ExtraCPU += e.drainStall(m.WireLen)
		}
	}
	// Date and phase are piggybacked on every message (§V-A): inline for
	// small payloads, as a separate control message for large ones.
	pb := netmodel.PiggybackBytes + e.prot.opts.ExtraPiggyBytes
	if m.WireLen <= netmodel.InlinePiggybackMax {
		v.PiggyWire = pb
	} else {
		v.ExtraCPU += e.px.Model().SendOverhead(pb)
	}

	// Orphan suppression (Algorithm 2 lines 13-15): the receiver already
	// holds this message; notify the recovery process instead of sending.
	if rs := e.active; rs != nil && rs.selfRolled && inter {
		if wm, ok := rs.orphanDate[m.Dst]; ok && m.Date <= wm {
			e.px.SendCtl(e.px.RecoveryID(), OrphanNotification{Round: rs.round, Phase: m.Phase}, wireOrphanNote)
			v.Suppress = true
		}
	}
	return v, nil
}

// Admit implements rollback.Engine: drop application messages sent before
// the sender learned of this process's restart; they are superseded by the
// sender's log replay.
func (e *engine) Admit(m *transport.Msg) bool { return m.IncSeen >= e.myInc }

// OnDeliver implements Algorithm 1 lines 10-18.
func (e *engine) OnDeliver(m *transport.Msg) {
	src := m.Src
	if e.interCluster(src) {
		if m.Phase+1 > e.phase {
			e.phase = m.Phase + 1
		}
		ch := e.rpp[src]
		if ch == nil {
			ch = newRPPChannel()
			e.rpp[src] = ch
		}
		ch.record(m.Date, m.Phase)
		// Garbage collection: acknowledge the first delivery from each
		// inter-cluster sender after a checkpoint (§III-E).
		if !e.prot.opts.DisableGC && e.gcSafeValid && !e.gcAcked[src] {
			e.gcAcked[src] = true
			e.px.SendCtl(src, GCAck{CkptDate: e.gcSafeDate, DeliveredFromYou: e.gcSafeDeliv[src]}, wireGCAck)
		}
	} else if m.Phase > e.phase {
		e.phase = m.Phase
	}
	e.date++
}

// OnCheckpoint implements Algorithm 1 lines 19-21: the snapshot includes
// RPP, the message log, phase and date (the image and mailbox are captured
// by the runtime).
func (e *engine) OnCheckpoint(s *checkpoint.Snapshot) {
	// Promote the previous checkpoint's watermarks to "safe": entering
	// this checkpoint implies every cluster member completed the previous
	// one, so the cluster can never restore below it.
	e.gcSafeValid = e.gcPendingValid
	e.gcSafeDate = e.gcPendingDate
	e.gcSafeDeliv = e.gcPendingDeliv

	e.gcPendingValid = true
	e.gcPendingDate = e.date
	e.gcPendingDeliv = make(map[int]int64, len(e.rpp))
	// Sorted for determinism: HeldFrom is a read today, but this loop
	// runs on the checkpoint path where any future side effect would
	// leak map order into the plane.
	for _, src := range sortedKeys(e.rpp) {
		w := e.rpp[src].MaxDate
		if h := e.px.HeldFrom(src); h > w {
			w = h
		}
		e.gcPendingDeliv[src] = w
	}
	// A buffered message from a sender with no RPP entry yet still counts
	// as held.
	for _, src := range e.outsideRanks() {
		if _, ok := e.gcPendingDeliv[src]; ok {
			continue
		}
		if h := e.px.HeldFrom(src); h > 0 {
			e.gcPendingDeliv[src] = h
		}
	}
	e.gcAcked = make(map[int]bool)

	st := &engineState{
		Date: e.date, Phase: e.phase, RPP: e.rpp, Logs: e.logs,
		GCSafeValid: e.gcSafeValid, GCSafeDate: e.gcSafeDate, GCSafeDeliv: e.gcSafeDeliv,
		GCPendingValid: e.gcPendingValid, GCPendingDate: e.gcPendingDate, GCPendingDeliv: e.gcPendingDeliv,
	}
	b, err := encodeEngineState(st)
	if err != nil {
		panic(fmt.Sprintf("core: rank %d: %v", e.rank, err))
	}
	s.ProtState = b
	// The logs are part of the checkpoint volume (Algorithm 1 line 21).
	s.ModelBytes += e.logs.Bytes
}

// drainStall models staging n logged bytes for the asynchronous device
// drain of §V-C and returns the time the sender must stall because the
// staging buffer is over budget.
func (e *engine) drainStall(n int) vtime.Duration {
	now := e.px.Clock().Now()
	if e.drainBusyUntil < now {
		e.drainBusyUntil = now
	}
	bps := e.prot.opts.LogDrainBPS
	e.drainBusyUntil = e.drainBusyUntil.Add(vtime.Duration(float64(n) / bps * 1e9))
	budget := e.prot.opts.LogMemBudget
	if budget <= 0 {
		return 0
	}
	backlogBytes := e.drainBusyUntil.Sub(now).Seconds() * bps
	over := backlogBytes - float64(budget)
	if over <= 0 {
		return 0
	}
	return vtime.Duration(over / bps * 1e9)
}

func (e *engine) outsideRanks() []int {
	out := make([]int, 0, e.topo.NP)
	for r := 0; r < e.topo.NP; r++ {
		if r != e.rank && e.topo.ClusterOf[r] != e.cluster {
			out = append(out, r)
		}
	}
	return out
}
