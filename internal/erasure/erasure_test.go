package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestNewValidation checks the parameter ranges.
func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		k, m int
		ok   bool
	}{
		{1, 1, true}, {4, 2, true}, {255, 1, true}, {1, 255, true},
		{0, 1, false}, {1, 0, false}, {-1, 2, false}, {200, 100, false},
	} {
		_, err := New(tc.k, tc.m)
		if (err == nil) != tc.ok {
			t.Errorf("New(%d, %d): err = %v, want ok=%v", tc.k, tc.m, err, tc.ok)
		}
	}
}

// subsets calls f with every way of erasing `lose` shards out of n.
func subsets(n, lose int, f func(erased []int)) {
	idx := make([]int, lose)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == lose {
			f(idx)
			return
		}
		for i := start; i < n; i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
}

// TestRoundTripAllErasurePatterns is the MDS property: for a grid of
// (k, m) and data lengths, every pattern of at most m erasures
// reconstructs the original data exactly.
func TestRoundTripAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, km := range [][2]int{{1, 1}, {1, 3}, {2, 1}, {2, 2}, {3, 2}, {4, 2}, {4, 3}, {5, 4}} {
		k, m := km[0], km[1]
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, dataLen := range []int{0, 1, k - 1, k, k + 1, 7 * k, 257} {
			if dataLen < 0 {
				continue
			}
			data := make([]byte, dataLen)
			rng.Read(data)
			shards := c.Split(data)
			if len(shards) != k+m {
				t.Fatalf("(%d,%d): Split returned %d shards", k, m, len(shards))
			}
			for lose := 0; lose <= m; lose++ {
				subsets(k+m, lose, func(erased []int) {
					damaged := make([][]byte, len(shards))
					for i, sh := range shards {
						damaged[i] = sh
					}
					for _, e := range erased {
						damaged[e] = nil
					}
					img, err := c.Reconstruct(damaged)
					if err != nil {
						t.Fatalf("(%d,%d) len=%d erased=%v: %v", k, m, dataLen, erased, err)
					}
					if want := k * c.ShardSize(dataLen); len(img) != want {
						t.Fatalf("(%d,%d) len=%d: image %d bytes, want %d", k, m, dataLen, len(img), want)
					}
					if !bytes.Equal(img[:dataLen], data) {
						t.Fatalf("(%d,%d) len=%d erased=%v: data corrupted", k, m, dataLen, erased)
					}
				})
			}
		}
	}
}

// TestTooFewShards checks that k-1 survivors fail loudly.
func TestTooFewShards(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards := c.Split([]byte("some checkpoint payload"))
	for i := 0; i < 3; i++ {
		shards[i] = nil
	}
	if _, err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstruction from 3 of 6 shards with k=4 should fail")
	}
}

// TestReconstructValidation covers malformed shard sets.
func TestReconstructValidation(t *testing.T) {
	c, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reconstruct([][]byte{{1}, {2}}); err == nil {
		t.Error("wrong shard-slot count accepted")
	}
	if _, err := c.Reconstruct([][]byte{{1}, {2, 3}, nil}); err == nil {
		t.Error("mismatched shard sizes accepted")
	}
}

// TestDeterministicEncoding: Split is a pure function — two calls over
// the same data produce identical shards.
func TestDeterministicEncoding(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xA5, 0x17, 0x00, 0xFF}, 100)
	a, b := c.Split(data), c.Split(data)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("shard %d differs between encodings", i)
		}
	}
}

// TestSplitDoesNotAliasInput: mutating the input after Split must not
// change the shards (the checkpoint layer stores them as stable data).
func TestSplitDoesNotAliasInput(t *testing.T) {
	c, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4}
	shards := c.Split(data)
	data[0] = 0xFF
	if shards[0][0] != 1 {
		t.Fatal("shard aliases the input slice")
	}
}

func BenchmarkSplit4x2_64K(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(2)).Read(data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		c.Split(data)
	}
}

func BenchmarkReconstruct4x2_64K(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(3)).Read(data)
	shards := c.Split(data)
	shards[0], shards[2] = nil, nil
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
