package erasure

import (
	"bytes"
	"testing"
)

// FuzzECRoundTrip throws arbitrary (k, m, erasure pattern, data) at the
// codec: whenever at most m shards are erased, reconstruction must
// return the original bytes. kSel/mSel/loseSel are reduced into valid
// ranges so every input exercises a real code.
func FuzzECRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(0b11), []byte("checkpoint snapshot bytes"))
	f.Add(uint8(1), uint8(1), uint16(1), []byte{})
	f.Add(uint8(7), uint8(3), uint16(0b1010010), bytes.Repeat([]byte{0xEE}, 300))
	f.Fuzz(func(t *testing.T, kSel, mSel uint8, loseMask uint16, data []byte) {
		k := int(kSel)%12 + 1
		m := int(mSel)%8 + 1
		c, err := New(k, m)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", k, m, err)
		}
		shards := c.Split(data)
		lost := 0
		for i := range shards {
			if loseMask&(1<<uint(i)) != 0 && lost < m {
				shards[i] = nil
				lost++
			}
		}
		img, err := c.Reconstruct(shards)
		if err != nil {
			t.Fatalf("(%d,%d) lost=%d len=%d: %v", k, m, lost, len(data), err)
		}
		if !bytes.Equal(img[:len(data)], data) {
			t.Fatalf("(%d,%d) lost=%d: round trip corrupted %d data bytes", k, m, lost, len(data))
		}
	})
}
