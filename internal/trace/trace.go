// Package trace records application-level communication events.
//
// HydEE's correctness argument (§IV of the paper) is stated over
// application-level Post/Delivery events partially ordered by Lamport's
// happened-before relation. The Recorder captures exactly those events —
// one Send record per Post, one Deliver record per Delivery — so the test
// suite can check the paper's lemmas offline:
//
//   - Lemma 1: phases are monotone along every happened-before edge;
//   - Lemma 3: an orphan's phase is strictly below every dependent send;
//   - Lemma 4 / send-determinism: the per-process send sequence (receiver,
//     tag, size, payload digest, phase) is identical across executions.
//
// Happened-before is reconstructed offline from program order plus the
// send→deliver matching, which is unique because a message is identified by
// (sender, sender date).
package trace

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Op is the kind of a recorded event.
type Op uint8

const (
	// Send is an application-level Post event.
	Send Op = iota
	// Deliver is an application-level Delivery event.
	Deliver
)

func (o Op) String() string {
	if o == Send {
		return "send"
	}
	return "deliver"
}

// Event is one application-level communication event.
type Event struct {
	Op   Op
	Proc int
	// Peer is the destination (Send) or source (Deliver).
	Peer int
	// Date is the acting process's logical date after the event.
	Date int64
	// MsgDate is the message identifier on its channel: the sender's date.
	// For Send events MsgDate == Date.
	MsgDate int64
	// Phase is the message phase (Send) or the process phase after the
	// delivery (Deliver).
	Phase int
	// MsgPhase is the phase carried by the message.
	MsgPhase int
	Tag      int
	Bytes    int
	// Digest is a 64-bit FNV-1a hash of the payload, used by the
	// send-determinism checks.
	Digest uint64
	// Seq is the event's index in its process's local history.
	Seq int
	// Replay marks events produced during recovery (re-execution or log
	// replay), letting tests reason about the pre/post failure split.
	Replay bool
	// Inc is the process incarnation that produced the event. A rollback
	// discards the previous incarnation's suffix, so program-order
	// invariants hold within an incarnation, not across the boundary.
	Inc int32
}

// PayloadDigest hashes a payload for Event.Digest.
func PayloadDigest(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Recorder collects events from all simulated processes. It is safe for
// concurrent use; each process appends to its own slice.
type Recorder struct {
	mu  sync.Mutex
	per [][]Event
}

// NewRecorder creates a recorder for np processes.
func NewRecorder(np int) *Recorder {
	return &Recorder{per: make([][]Event, np)}
}

// Record appends ev to its process history, assigning Seq.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.Seq = len(r.per[ev.Proc])
	r.per[ev.Proc] = append(r.per[ev.Proc], ev)
}

// Events returns a copy of all events grouped by process.
func (r *Recorder) Events() [][]Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]Event, len(r.per))
	for i, evs := range r.per {
		out[i] = append([]Event(nil), evs...)
	}
	return out
}

// SendSeq is the send-determinism fingerprint of one process: the ordered
// sequence of its sends with everything the model says must be invariant.
type SendSeq []SendSig

// SendSig identifies one send for cross-execution comparison.
type SendSig struct {
	Dst    int
	Tag    int
	Bytes  int
	Digest uint64
	Phase  int
	Date   int64
}

// SendSequence extracts the send fingerprint of process p, ignoring
// duplicate re-executions of the same (dst, date) pair: a replayed or
// re-executed send supersedes the rolled-back original, matching the
// definition of the post-recovery execution.
func SendSequence(events [][]Event, p int) SendSeq {
	type key struct {
		dst  int
		date int64
	}
	last := make(map[key]SendSig)
	order := make([]key, 0, len(events[p]))
	for _, ev := range events[p] {
		if ev.Op != Send {
			continue
		}
		k := key{ev.Peer, ev.MsgDate}
		if _, seen := last[k]; !seen {
			order = append(order, k)
		}
		last[k] = SendSig{Dst: ev.Peer, Tag: ev.Tag, Bytes: ev.Bytes, Digest: ev.Digest, Phase: ev.Phase, Date: ev.MsgDate}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].date != order[j].date {
			return order[i].date < order[j].date
		}
		return order[i].dst < order[j].dst
	})
	out := make(SendSeq, 0, len(order))
	for _, k := range order {
		out = append(out, last[k])
	}
	return out
}

// EqualSendSeq compares two fingerprints and describes the first difference.
func EqualSendSeq(a, b SendSeq) error {
	if len(a) != len(b) {
		return fmt.Errorf("send sequence length differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("send %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	return nil
}

// node identifies an event for the happened-before graph.
type node struct {
	proc, seq int
}

// HBGraph is the happened-before DAG over recorded events.
type HBGraph struct {
	events [][]Event
	// sendIndex maps (sender, msg date, dst) to the send event node.
	sendIndex map[sendKey]node
}

type sendKey struct {
	src  int
	date int64
	dst  int
}

// BuildHB constructs the happened-before graph: program order within each
// process plus send→deliver edges. Re-executed duplicates of a send keep the
// latest occurrence, matching the recovered execution.
func BuildHB(events [][]Event) *HBGraph {
	g := &HBGraph{events: events, sendIndex: make(map[sendKey]node)}
	for p, evs := range events {
		for i, ev := range evs {
			if ev.Op == Send {
				g.sendIndex[sendKey{p, ev.MsgDate, ev.Peer}] = node{p, i}
			}
		}
	}
	return g
}

// CheckPhaseMonotone verifies Lemma 1 on every happened-before edge: along
// program order and along each send→deliver edge the phase never decreases.
// It returns the first violation found.
func (g *HBGraph) CheckPhaseMonotone() error {
	for p, evs := range g.events {
		prev := -1
		prevInc := int32(-1)
		for i, ev := range evs {
			if ev.Inc != prevInc {
				// Rollback boundary: the discarded suffix does not
				// happen-before the restored execution.
				prev = -1
				prevInc = ev.Inc
			}
			ph := ev.Phase
			if ph < prev {
				return fmt.Errorf("proc %d event %d (%s): phase %d < previous %d (Lemma 1 program-order violation)", p, i, ev.Op, ph, prev)
			}
			prev = ph
		}
	}
	for p, evs := range g.events {
		for i, ev := range evs {
			if ev.Op != Deliver {
				continue
			}
			sn, ok := g.sendIndex[sendKey{ev.Peer, ev.MsgDate, p}]
			if !ok {
				continue // sender events not recorded (e.g. replay from log)
			}
			se := g.events[sn.proc][sn.seq]
			if se.Phase > ev.MsgPhase {
				return fmt.Errorf("message (%d,%d)->%d: send phase %d > carried phase %d", ev.Peer, ev.MsgDate, p, se.Phase, ev.MsgPhase)
			}
			if ev.Phase < se.Phase {
				return fmt.Errorf("message (%d,%d)->%d: deliver phase %d < send phase %d (Lemma 1 edge violation)", ev.Peer, ev.MsgDate, p, ev.Phase, se.Phase)
			}
			_ = i
		}
	}
	return nil
}

// UnmatchedDelivers returns deliveries with no recorded matching send; in a
// failure-free run there must be none.
func (g *HBGraph) UnmatchedDelivers() []Event {
	var out []Event
	for p, evs := range g.events {
		for _, ev := range evs {
			if ev.Op != Deliver {
				continue
			}
			if _, ok := g.sendIndex[sendKey{ev.Peer, ev.MsgDate, p}]; !ok {
				out = append(out, ev)
			}
		}
	}
	_ = out
	return out
}
