package trace

import (
	"testing"
	"testing/quick"
)

func TestRecorderAssignsSeq(t *testing.T) {
	r := NewRecorder(2)
	r.Record(Event{Op: Send, Proc: 0, Peer: 1, MsgDate: 1})
	r.Record(Event{Op: Send, Proc: 0, Peer: 1, MsgDate: 2})
	r.Record(Event{Op: Deliver, Proc: 1, Peer: 0, MsgDate: 1})
	evs := r.Events()
	if len(evs[0]) != 2 || len(evs[1]) != 1 {
		t.Fatalf("events: %v", evs)
	}
	if evs[0][0].Seq != 0 || evs[0][1].Seq != 1 {
		t.Fatal("seq not assigned")
	}
}

func TestSendSequenceDedupsReplays(t *testing.T) {
	r := NewRecorder(1)
	r.Record(Event{Op: Send, Proc: 0, Peer: 1, MsgDate: 1, Phase: 1, Digest: 11})
	r.Record(Event{Op: Send, Proc: 0, Peer: 1, MsgDate: 2, Phase: 1, Digest: 22})
	// Re-execution of send (1) after a rollback supersedes the original.
	r.Record(Event{Op: Send, Proc: 0, Peer: 1, MsgDate: 1, Phase: 1, Digest: 11, Replay: true})
	seq := SendSequence(r.Events(), 0)
	if len(seq) != 2 {
		t.Fatalf("dedup failed: %v", seq)
	}
	if seq[0].Date != 1 || seq[1].Date != 2 {
		t.Fatalf("order wrong: %v", seq)
	}
}

func TestEqualSendSeq(t *testing.T) {
	a := SendSeq{{Dst: 1, Date: 1, Digest: 5}}
	b := SendSeq{{Dst: 1, Date: 1, Digest: 5}}
	if err := EqualSendSeq(a, b); err != nil {
		t.Fatal(err)
	}
	c := SendSeq{{Dst: 1, Date: 1, Digest: 6}}
	if err := EqualSendSeq(a, c); err == nil {
		t.Fatal("missed digest difference")
	}
	if err := EqualSendSeq(a, SendSeq{}); err == nil {
		t.Fatal("missed length difference")
	}
}

func TestPhaseMonotoneDetectsProgramOrderViolation(t *testing.T) {
	r := NewRecorder(1)
	r.Record(Event{Op: Send, Proc: 0, Peer: 0, MsgDate: 1, Phase: 3})
	r.Record(Event{Op: Send, Proc: 0, Peer: 0, MsgDate: 2, Phase: 2})
	if err := BuildHB(r.Events()).CheckPhaseMonotone(); err == nil {
		t.Fatal("missed program-order phase decrease")
	}
}

func TestPhaseMonotoneDetectsEdgeViolation(t *testing.T) {
	r := NewRecorder(2)
	r.Record(Event{Op: Send, Proc: 0, Peer: 1, MsgDate: 1, Phase: 5})
	// Deliver records a process phase below the send phase: violates
	// Lemma 1 on the send->deliver edge.
	r.Record(Event{Op: Deliver, Proc: 1, Peer: 0, MsgDate: 1, MsgPhase: 5, Phase: 4})
	if err := BuildHB(r.Events()).CheckPhaseMonotone(); err == nil {
		t.Fatal("missed edge phase violation")
	}
}

func TestPhaseMonotoneAcceptsValidHistory(t *testing.T) {
	r := NewRecorder(2)
	r.Record(Event{Op: Send, Proc: 0, Peer: 1, MsgDate: 1, Phase: 1, MsgPhase: 1})
	r.Record(Event{Op: Deliver, Proc: 1, Peer: 0, MsgDate: 1, MsgPhase: 1, Phase: 2})
	r.Record(Event{Op: Send, Proc: 1, Peer: 0, MsgDate: 1, Phase: 2, MsgPhase: 2})
	r.Record(Event{Op: Deliver, Proc: 0, Peer: 1, MsgDate: 1, MsgPhase: 2, Phase: 3})
	if err := BuildHB(r.Events()).CheckPhaseMonotone(); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadDigestDistinguishes(t *testing.T) {
	if PayloadDigest([]byte("a")) == PayloadDigest([]byte("b")) {
		t.Fatal("digest collision on trivial inputs")
	}
	if PayloadDigest(nil) != PayloadDigest([]byte{}) {
		t.Fatal("nil and empty should hash equal")
	}
}

// Property: SendSequence is idempotent (recomputing over the same events
// yields the same fingerprint) and sorted by date.
func TestSendSequenceProperties(t *testing.T) {
	f := func(dates []uint8) bool {
		r := NewRecorder(1)
		for _, d := range dates {
			r.Record(Event{Op: Send, Proc: 0, Peer: 1, MsgDate: int64(d%32) + 1, Digest: uint64(d)})
		}
		a := SendSequence(r.Events(), 0)
		b := SendSequence(r.Events(), 0)
		if EqualSendSeq(a, b) != nil {
			return false
		}
		for i := 1; i < len(a); i++ {
			if a[i].Date < a[i-1].Date {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
