package hydee_test

// Tests for the shared flag/wire spec layer: SweepSpec resolution through
// the registries, the contiguous clusters shorthand, store binding, and
// eager rejection of bad names — the same decode path the cmd flags and
// the hydee-serve HTTP API use.

import (
	"context"
	"encoding/json"
	"flag"
	"strings"
	"testing"

	"hydee"
)

func TestSweepSpecResolves(t *testing.T) {
	raw := `{"app":"cg","np":16,"iters":3,"proto":"hydee","clusters":4,
		"ckpt":2,"fail_at":"ckpts:1@8","net":"ideal",
		"store":"sharded:2","store_bps":1e9}`
	var s hydee.SweepSpec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	spec, err := s.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kernel.Name != "cg" || spec.Proto != hydee.ProtoHydEE || spec.CheckpointEvery != 2 {
		t.Errorf("resolved %s/%s ckpt=%d", spec.Kernel.Name, spec.Proto, spec.CheckpointEvery)
	}
	if len(spec.Assign) != 16 || spec.Assign[0] != 0 || spec.Assign[15] != 3 {
		t.Errorf("clusters shorthand: assign %v", spec.Assign)
	}
	if spec.Failures == nil || spec.Model == nil || spec.NewStoreE == nil {
		t.Errorf("missing resolution: failures=%v model=%v store=%v",
			spec.Failures != nil, spec.Model != nil, spec.NewStoreE != nil)
	}
	// The resolved spec actually runs, store and all.
	sum, err := hydee.RunExperiments(context.Background(), []hydee.ExperimentSpec{spec}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 1 || len(sum[0].Rounds) != 1 {
		t.Fatalf("resolved run: %d summaries, rounds %v", len(sum), sum[0].Rounds)
	}
}

func TestSweepSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		s    hydee.SweepSpec
		frag string // expected error fragment
	}{
		{"no np", hydee.SweepSpec{App: "cg"}, "np"},
		{"bad kernel", hydee.SweepSpec{App: "nope", NP: 8}, "nope"},
		{"bad proto", hydee.SweepSpec{App: "cg", NP: 8, Proto: "bogus"}, "bogus"},
		{"bad net", hydee.SweepSpec{App: "cg", NP: 8, Proto: "native", Net: "carrier-pigeon"}, "carrier-pigeon"},
		{"hydee without clustering", hydee.SweepSpec{App: "cg", NP: 8}, "assign"},
		{"assign size", hydee.SweepSpec{App: "cg", NP: 8, Assign: []int{0, 1}}, "assign"},
		{"too many clusters", hydee.SweepSpec{App: "cg", NP: 4, Clusters: 8}, "clusters"},
		{"bad failure spec", hydee.SweepSpec{App: "cg", NP: 8, Proto: "native", FailAt: "moon:full"}, "moon"},
		{"failure rank out of range", hydee.SweepSpec{App: "cg", NP: 8, Proto: "native", FailAt: "ckpts:1@99"}, "99"},
		{"bad store", hydee.SweepSpec{App: "cg", NP: 8, Proto: "native",
			StoreSpec: hydee.StoreSpec{Spec: "punchcards"}}, "punchcards"},
	}
	for _, tc := range cases {
		if _, err := tc.s.Experiment(); err == nil {
			t.Errorf("%s: no error", tc.name)
		} else if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q misses %q", tc.name, err, tc.frag)
		}
	}
	// Experiments names the failing index.
	_, err := hydee.Experiments([]hydee.SweepSpec{
		{App: "cg", NP: 8, Proto: "native"},
		{App: "nope", NP: 8},
	})
	if err == nil || !strings.Contains(err.Error(), "run 1") {
		t.Errorf("batch error %v, want it to name run 1", err)
	}
}

// TestSpecFlagBinding parses a flag line through the shared Bind helpers
// — the cmd binaries' wiring — and checks the specs land as typed.
func TestSpecFlagBinding(t *testing.T) {
	var store hydee.StoreSpec
	var stream hydee.EventStreamSpec
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	store.Bind(fs)
	stream.Bind(fs)
	if err := fs.Parse([]string{
		"-store", "sharded:4", "-store-bps", "2e9", "-store-dir", t.TempDir(),
		"-events", "out.jsonl", "-exporter", "metrics",
	}); err != nil {
		t.Fatal(err)
	}
	if store.Spec != "sharded:4" || store.BPS != 2e9 || store.Dir == "" {
		t.Errorf("store spec: %+v", store)
	}
	if err := store.Probe(); err != nil {
		t.Errorf("probe: %v", err)
	}
	if stream.Path != "out.jsonl" || stream.Exporter != "metrics" {
		t.Errorf("stream spec: %+v", stream)
	}

	// Defaults when no flags are given: mem store, jsonl exporter, and a
	// Wire that succeeds as a no-op.
	var dstore hydee.StoreSpec
	var dstream hydee.EventStreamSpec
	dfs := flag.NewFlagSet("y", flag.ContinueOnError)
	dstore.Bind(dfs)
	dstream.Bind(dfs)
	if err := dfs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if dstore.Spec != "mem" {
		t.Errorf("default store %q", dstore.Spec)
	}
	ctx, closeFn, err := dstream.Wire(context.Background())
	if err != nil || ctx != context.Background() {
		t.Errorf("no-op wire: ctx changed or err %v", err)
	}
	if err := closeFn(); err != nil {
		t.Errorf("no-op close: %v", err)
	}
}
