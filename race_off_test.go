//go:build !race

package hydee_test

// raceEnabled is false in a non-race build; see race_on_test.go.
const raceEnabled = false
