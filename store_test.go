package hydee_test

// Tests for the public Store surface: WithStore pinning across engine
// reuse, WithStoreName per-run isolation with default per-cluster
// placement, third-party Store implementations, and the typed
// ErrCheckpointLost path through a custom store.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"hydee"
)

// trackingStore is a third-party Store implementation: it delegates to a
// built-in backend and counts operations.
type trackingStore struct {
	hydee.Store
	saves, loads atomic.Int64
}

func (st *trackingStore) Save(s *hydee.Snapshot, at hydee.Time) (hydee.Time, error) {
	st.saves.Add(1)
	return st.Store.Save(s, at)
}

func (st *trackingStore) Load(rank, seq int, at hydee.Time) (*hydee.Snapshot, hydee.Time, bool) {
	st.loads.Add(1)
	return st.Store.Load(rank, seq, at)
}

// amnesiacStore announces sequences it cannot load — the condition the
// runtime must surface as ErrCheckpointLost instead of silently
// restarting from the initial state.
type amnesiacStore struct{ hydee.Store }

func (st amnesiacStore) Load(rank, seq int, at hydee.Time) (*hydee.Snapshot, hydee.Time, bool) {
	return nil, at, false
}

// failingEngineOpts configures a 2-cluster run whose rank 2 fails after
// its second checkpoint: by then every cluster member has completed
// sequence 1, so the recovery round is guaranteed to restore from a
// stored snapshot (exercising Load) rather than the initial state.
func failingEngineOpts(extra ...hydee.Option) []hydee.Option {
	opts := []hydee.Option{
		hydee.WithTopology(hydee.NewTopology([]int{0, 0, 1, 1})),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithCheckpointEvery(2),
		hydee.WithFailureEvents(hydee.FailureEvent{
			Ranks: []int{2}, When: hydee.FailureTrigger{AfterCheckpoints: 2},
		}),
	}
	return append(opts, extra...)
}

// TestEngineReuseWithPinnedStore reuses one engine with one WithStore
// store across sequential failure-and-recovery runs: results must stay
// bit-identical run over run (reruns of the same program overwrite the
// same sequences rather than diverging), and the pinned third-party
// store must see every run's traffic.
func TestEngineReuseWithPinnedStore(t *testing.T) {
	pinned := &trackingStore{Store: hydee.NewMemStore(1e9, 1e9)}
	// CheckpointEvery(1) drives run 1's sequences well past the store's
	// GC horizon (historyKeep), so this also regresses the streak-reset
	// rule: without it, run 2's restarted low sequences would be pruned
	// against run 1's high-water mark and the rerun would abort with
	// ErrCheckpointLost.
	eng, err := hydee.New(failingEngineOpts(
		hydee.WithStore(pinned),
		hydee.WithCheckpointEvery(1),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	prog := hydee.StencilProgram(8, 4096)
	ctx := context.Background()
	first, err := eng.Run(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rounds) != 1 {
		t.Fatalf("rounds = %+v, want 1", first.Rounds)
	}
	savesAfterFirst := pinned.saves.Load()
	if savesAfterFirst == 0 || pinned.loads.Load() == 0 {
		t.Fatalf("pinned store unused: saves=%d loads=%d", savesAfterFirst, pinned.loads.Load())
	}
	for i := 0; i < 2; i++ {
		res, err := eng.Run(ctx, prog)
		if err != nil {
			t.Fatalf("reuse run %d: %v", i, err)
		}
		if len(res.Rounds) != 1 {
			t.Fatalf("reuse run %d: rounds = %+v", i, res.Rounds)
		}
		for r := range res.Results {
			if res.Results[r] != first.Results[r] {
				t.Errorf("reuse run %d: rank %d digest diverged with pinned store", i, r)
			}
		}
	}
	if got := pinned.saves.Load(); got <= savesAfterFirst {
		t.Errorf("pinned store not reused: %d saves after 3 runs, %d after 1", got, savesAfterFirst)
	}
}

// TestWithStoreNameFreshPerRun shows the registry path keeps sequential
// runs isolated: each Run builds a fresh store, so a run never observes
// the previous run's snapshots.
func TestWithStoreNameFreshPerRun(t *testing.T) {
	var built []*trackingStore
	name := "fresh-per-run-test"
	if err := hydee.RegisterStore(name, func(o hydee.StoreOptions) (hydee.Store, error) {
		st := &trackingStore{Store: hydee.NewMemStore(o.WriteBPS, o.ReadBPS)}
		built = append(built, st)
		return st, nil
	}); err != nil {
		t.Fatal(err)
	}
	eng, err := hydee.New(failingEngineOpts(hydee.WithStoreName(name, hydee.StoreOptions{}))...)
	if err != nil {
		t.Fatal(err)
	}
	prog := hydee.StencilProgram(8, 4096)
	for i := 0; i < 2; i++ {
		if _, err := eng.Run(context.Background(), prog); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if len(built) != 2 {
		t.Fatalf("factory built %d stores over 2 runs, want a fresh store per run", len(built))
	}
	if built[0] == built[1] {
		t.Fatal("same store instance reused across runs")
	}
}

// TestWithStoreNameUnknown verifies name resolution fails at option time.
func TestWithStoreNameUnknown(t *testing.T) {
	_, err := hydee.New(
		hydee.WithRanks(2),
		hydee.WithStoreName("glacier", hydee.StoreOptions{}),
	)
	if err == nil {
		t.Fatal("unknown store name accepted")
	}
}

// TestWithStoreNameShardedClusterPlacement checks the engine defaults a
// sharded store to per-cluster placement: with per-shard bandwidth, two
// clusters checkpointing simultaneously into 2 shards see no cross-shard
// queueing (MaxQueue stays below what one shared link of the same
// bandwidth produces).
func TestWithStoreNameShardedClusterPlacement(t *testing.T) {
	run := func(opts ...hydee.Option) hydee.StoreStats {
		t.Helper()
		base := []hydee.Option{
			hydee.WithTopology(hydee.NewTopology([]int{0, 0, 1, 1})),
			hydee.WithProtocol(hydee.HydEE()),
			hydee.WithCheckpointEvery(2),
		}
		eng, err := hydee.New(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background(), hydee.StencilProgram(8, 1<<16))
		if err != nil {
			t.Fatal(err)
		}
		return res.StoreStats
	}
	const bps = 5e8
	shared := run(hydee.WithStorageBandwidth(bps, bps))
	sharded := run(hydee.WithStoreName("sharded", hydee.StoreOptions{Shards: 2, WriteBPS: bps, ReadBPS: bps}))
	if shared.Saves != sharded.Saves || shared.SavedBytes != sharded.SavedBytes {
		t.Errorf("store traffic differs: shared %+v vs sharded %+v", shared, sharded)
	}
	if sharded.MaxQueue >= shared.MaxQueue {
		t.Errorf("cluster-placed shards should relieve the burst: sharded MaxQueue %v >= shared %v",
			sharded.MaxQueue, shared.MaxQueue)
	}
}

// TestCheckpointLostTyped drives the ErrCheckpointLost path through a
// third-party store: the store announces checkpoints it cannot load, and
// the recovery round must abort with a typed *RunError instead of
// silently restarting from the initial state.
func TestCheckpointLostTyped(t *testing.T) {
	eng, err := hydee.New(failingEngineOpts(
		hydee.WithStore(amnesiacStore{hydee.NewMemStore(0, 0)}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(context.Background(), hydee.StencilProgram(8, 4096))
	if !errors.Is(err, hydee.ErrCheckpointLost) {
		t.Fatalf("want ErrCheckpointLost, got %v", err)
	}
	var re *hydee.RunError
	if !errors.As(err, &re) || re.Phase != hydee.PhaseRecovery {
		t.Errorf("want *RunError in phase %q, got %#v", hydee.PhaseRecovery, err)
	}
}

// TestShardLossMatrix extends the lying-store scenario to real shard
// loss across every backend: rank 2 (cluster 1) fails after its second
// checkpoint while a FaultyStore has killed some of the storage targets
// from the start of the run. Losses within a backend's redundancy must
// recover (digest-identical to the unfaulted run); losses beyond it
// must abort with the typed ErrCheckpointLost in the recovery phase,
// never restart silently from the initial state.
func TestShardLossMatrix(t *testing.T) {
	assign := []int{0, 0, 1, 1} // rank 2, the victim, is in cluster 1
	const bps = 1e9
	place := func(n int) func(rank int) int {
		return func(rank int) int { return assign[rank] % n }
	}
	mk := func(t *testing.T, build func() (hydee.Store, error), kill ...int) hydee.Store {
		t.Helper()
		inner, err := build()
		if err != nil {
			t.Fatal(err)
		}
		faults := make([]hydee.ShardFault, len(kill))
		for i, sh := range kill {
			// AtVT 1 kills the shard from (virtually) the start of the
			// run: its checkpoint writes are dropped, its restore reads
			// refused.
			faults[i] = hydee.ShardFault{Shard: sh, AtVT: 1, Kind: hydee.FaultKill}
		}
		st, err := hydee.NewFaultyStore(inner, faults...)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	sharded := func() (hydee.Store, error) { return hydee.NewShardedStore(2, bps, bps, place(2)), nil }
	ec := func() (hydee.Store, error) { return hydee.NewECStore(2, 1, bps, bps, place(3)) }
	replica := func() (hydee.Store, error) { return hydee.NewReplicatedStore(2, bps, bps, place(2)) }

	// The unfaulted reference run: its digests are what every surviving
	// faulted run must reproduce.
	refEng, err := hydee.New(failingEngineOpts(hydee.WithStore(hydee.NewMemStore(bps, bps)))...)
	if err != nil {
		t.Fatal(err)
	}
	prog := hydee.StencilProgram(8, 4096)
	ref, err := refEng.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		store   func(t *testing.T) hydee.Store
		survive bool
	}{
		// A whole-store kill generalizes the amnesiac store above.
		{"mem/kill-all", func(t *testing.T) hydee.Store {
			return mk(t, func() (hydee.Store, error) { return hydee.NewMemStore(bps, bps), nil }, 0)
		}, false},
		// Plain sharding has no redundancy: losing the victim cluster's
		// shard is fatal, losing only the bystander cluster's is not.
		{"sharded2/lose-victim-shard", func(t *testing.T) hydee.Store { return mk(t, sharded, 1) }, false},
		{"sharded2/lose-bystander-shard", func(t *testing.T) hydee.Store { return mk(t, sharded, 0) }, true},
		// ec:2+1 absorbs any m=1 losses and no more.
		{"ec2+1/lose-1", func(t *testing.T) hydee.Store { return mk(t, ec, 1) }, true},
		{"ec2+1/lose-2", func(t *testing.T) hydee.Store { return mk(t, ec, 1, 2) }, false},
		// replica:2 absorbs any single replica loss and no more.
		{"replica2/lose-1", func(t *testing.T) hydee.Store { return mk(t, replica, 1) }, true},
		{"replica2/lose-all", func(t *testing.T) hydee.Store { return mk(t, replica, 0, 1) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := hydee.New(failingEngineOpts(hydee.WithStore(tc.store(t)))...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(context.Background(), prog)
			if !tc.survive {
				if !errors.Is(err, hydee.ErrCheckpointLost) {
					t.Fatalf("want ErrCheckpointLost, got %v", err)
				}
				var re *hydee.RunError
				if !errors.As(err, &re) || re.Phase != hydee.PhaseRecovery {
					t.Errorf("want *RunError in phase %q, got %#v", hydee.PhaseRecovery, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("loss within redundancy aborted the run: %v", err)
			}
			if len(res.Rounds) != 1 {
				t.Fatalf("rounds = %+v, want 1", res.Rounds)
			}
			for r := range res.Results {
				if res.Results[r] != ref.Results[r] {
					t.Errorf("rank %d digest diverged after degraded recovery", r)
				}
			}
		})
	}
}
