package hydee

import (
	"io"

	"hydee/internal/mpi"
)

// Run observation types. A run emits structured lifecycle events — one per
// checkpoint, failure detection, recovery round boundary, rank completion
// and run completion — to the Observer installed with WithObserver (or
// Config.Observer on the legacy path).
type (
	// Observer receives lifecycle events; calls are serialized by the
	// runtime but run on the critical path, so keep them fast.
	Observer = mpi.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = mpi.ObserverFunc
	// RunEvent is one structured lifecycle event.
	RunEvent = mpi.Event
	// RunEventKind discriminates lifecycle events.
	RunEventKind = mpi.EventKind
)

// The lifecycle event kinds.
const (
	EvRunStart      = mpi.EvRunStart
	EvCheckpoint    = mpi.EvCheckpoint
	EvFailure       = mpi.EvFailure
	EvRankFinished  = mpi.EvRankFinished
	EvRecoveryStart = mpi.EvRecoveryStart
	EvRecoveryEnd   = mpi.EvRecoveryEnd
	EvRunComplete   = mpi.EvRunComplete
	EvRunAbort      = mpi.EvRunAbort
)

// NewLogObserver renders lifecycle events as a human-readable debug log —
// the successor of the removed Config.Log writer.
func NewLogObserver(w io.Writer) Observer { return mpi.NewLogObserver(w) }

// MultiObserver fans events out to several observers in order.
func MultiObserver(obs ...Observer) Observer { return mpi.MultiObserver(obs...) }
