package hydee

import (
	"context"
	"io"

	"hydee/internal/mpi"
)

// Run observation types. A run emits structured lifecycle events — one per
// checkpoint, failure detection, recovery round boundary, rank completion
// and run completion — to the Observer installed with WithObserver (or
// Config.Observer on the legacy path).
type (
	// Observer receives lifecycle events; calls are serialized by the
	// runtime but run on the critical path, so keep them fast.
	Observer = mpi.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = mpi.ObserverFunc
	// RunEvent is one structured lifecycle event.
	RunEvent = mpi.Event
	// RunEventKind discriminates lifecycle events.
	RunEventKind = mpi.EventKind
)

// The lifecycle event kinds.
const (
	EvRunStart      = mpi.EvRunStart
	EvCheckpoint    = mpi.EvCheckpoint
	EvFailure       = mpi.EvFailure
	EvRankFinished  = mpi.EvRankFinished
	EvRecoveryStart = mpi.EvRecoveryStart
	EvRecoveryEnd   = mpi.EvRecoveryEnd
	EvRunComplete   = mpi.EvRunComplete
	EvRunAbort      = mpi.EvRunAbort
)

// NewLogObserver renders lifecycle events as a human-readable debug log —
// the successor of the removed Config.Log writer.
func NewLogObserver(w io.Writer) Observer { return mpi.NewLogObserver(w) }

// MultiObserver fans events out to several observers in order.
func MultiObserver(obs ...Observer) Observer { return mpi.MultiObserver(obs...) }

// ContextWithObserver returns a context carrying o: every run started
// under it — directly or through sweep helpers like Table1Ctx and
// Figure6Ctx — streams its lifecycle events to o in addition to its own
// configured observer. This is how the cmd binaries wire -events
// exporters into whole sweeps. Unlike a run's own observer, o may see
// events of several concurrent runs interleaved, so it must be
// concurrency-safe (the built-in exporters are).
func ContextWithObserver(ctx context.Context, o Observer) context.Context {
	return mpi.ContextWithObserver(ctx, o)
}
