package hydee

import (
	"context"
	"fmt"
	"time"

	"hydee/internal/checkpoint"
	"hydee/internal/mpi"
)

// Engine is a reusable, configured runner for message-passing programs. It
// is built once with New and functional options, then drives any number of
// sequential runs; each run gets a fresh network and (unless the
// configuration pins one) a fresh checkpoint store, so runs never bleed
// state into each other.
//
//	eng, err := hydee.New(
//	    hydee.WithTopology(hydee.NewTopology([]int{0, 0, 1, 1})),
//	    hydee.WithProtocol(hydee.HydEE()),
//	    hydee.WithModel(hydee.Myrinet10G()),
//	    hydee.WithCheckpointEvery(5),
//	)
//	res, err := eng.Run(ctx, program)
//
// Run honors ctx: cancellation or deadline expiry unwinds every rank
// goroutine and returns a *RunError wrapping ErrCanceled. All run errors
// are *RunError values carrying rank, round and phase; match causes with
// errors.Is against ErrCanceled, ErrDeadlock and ErrNotSendDeterministic.
type Engine struct {
	cfg                         mpi.Config
	storeWriteBPS, storeReadBPS float64
	// storeMake/storeOpts build a fresh per-run store when WithStoreName
	// was given (and no WithStore pinned one).
	storeMake StoreFactory
	storeOpts StoreOptions
	// failAt accumulates WithFailureAt events; New appends them to the
	// configured failure schedule.
	failAt []FailureEvent
}

// Option configures an Engine. Options apply in the order given to New;
// when two options set the same knob, the later one wins.
type Option func(*Engine) error

// New builds an Engine from options and validates the resulting
// configuration. The rank count comes from WithRanks or, if absent, from
// the topology.
func New(opts ...Option) (*Engine, error) {
	e := &Engine{}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if e.cfg.NP == 0 && e.cfg.Topo != nil {
		e.cfg.NP = e.cfg.Topo.NP
	}
	if len(e.failAt) > 0 {
		var events []FailureEvent
		if e.cfg.Failures != nil {
			events = append(events, e.cfg.Failures.Events...)
		}
		e.cfg.Failures = NewFailureSchedule(append(events, e.failAt...)...)
	}
	if err := mpi.Validate(e.cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Run executes program under the engine's configuration. The engine itself
// is not mutated, so it can be reused for further runs; concurrent Run
// calls on one engine are safe as long as shared injected state (observer,
// recorder, explicit store) tolerates them.
func (e *Engine) Run(ctx context.Context, program Program) (*Result, error) {
	cfg := e.cfg
	if cfg.Store == nil {
		st, err := e.makeStore()
		if err != nil {
			return nil, err
		}
		cfg.Store = st
	}
	return mpi.RunContext(ctx, cfg, program)
}

// makeStore builds the per-run store: the WithStoreName factory when one
// was given, the default in-memory store otherwise.
func (e *Engine) makeStore() (checkpoint.Store, error) {
	if e.storeMake == nil {
		return checkpoint.NewMemStore(e.storeWriteBPS, e.storeReadBPS), nil
	}
	opts := e.storeOpts
	if opts.WriteBPS == 0 && opts.ReadBPS == 0 {
		opts.WriteBPS, opts.ReadBPS = e.storeWriteBPS, e.storeReadBPS
	}
	if n := opts.totalShards(); opts.Placement == nil && n > 1 && e.cfg.Topo != nil {
		opts.Placement = ClusterPlacement(e.cfg.Topo, n)
	}
	return e.storeMake(opts)
}

// Config returns a copy of the runtime configuration the engine resolved
// from its options (the per-run store default is applied at Run time).
func (e *Engine) Config() Config { return e.cfg }

// WithRanks sets the number of application processes. It is only needed
// when no topology is given: WithTopology implies the rank count.
func WithRanks(np int) Option {
	return func(e *Engine) error {
		if np <= 0 {
			return fmt.Errorf("hydee: WithRanks(%d): rank count must be positive", np)
		}
		e.cfg.NP = np
		return nil
	}
}

// WithTopology sets the process clustering. If no WithRanks option is
// given, the rank count is taken from the topology.
func WithTopology(t *Topology) Option {
	return func(e *Engine) error {
		if t == nil {
			return fmt.Errorf("hydee: WithTopology(nil)")
		}
		e.cfg.Topo = t
		return nil
	}
}

// WithProtocol sets the rollback-recovery protocol (HydEE, Coordinated,
// MessageLogging, Native, or any custom implementation).
func WithProtocol(p Protocol) Option {
	return func(e *Engine) error {
		e.cfg.Protocol = p
		return nil
	}
}

// WithProtocolName resolves the protocol through the name registry
// ("hydee", "coord", "mlog", "native").
func WithProtocolName(name string) Option {
	return func(e *Engine) error {
		p, err := ProtocolByName(name)
		if err != nil {
			return err
		}
		e.cfg.Protocol = p
		return nil
	}
}

// WithModel sets the network cost model.
func WithModel(m Model) Option {
	return func(e *Engine) error {
		e.cfg.Model = m
		return nil
	}
}

// WithModelName resolves the network model through the name registry
// ("myrinet10g", "tcpgige", "ideal").
func WithModelName(name string) Option {
	return func(e *Engine) error {
		m, err := ModelByName(name)
		if err != nil {
			return err
		}
		e.cfg.Model = m
		return nil
	}
}

// WithCheckpointEvery fires a coordinated checkpoint every k-th cooperative
// Comm.Checkpoint() call; 0 disables checkpointing.
func WithCheckpointEvery(k int) Option {
	return func(e *Engine) error {
		if k < 0 {
			return fmt.Errorf("hydee: WithCheckpointEvery(%d): interval must be >= 0", k)
		}
		e.cfg.CheckpointEvery = k
		return nil
	}
}

// WithStaggeredCheckpoints offsets the checkpoint schedule per cluster to
// avoid stable-storage I/O bursts (experiment E5).
func WithStaggeredCheckpoints() Option {
	return func(e *Engine) error {
		e.cfg.CheckpointStagger = true
		return nil
	}
}

// WithFailures installs a fail-stop failure schedule. Each Run compiles its
// own injector, so a schedule fires afresh on every run of the engine.
func WithFailures(s *FailureSchedule) Option {
	return func(e *Engine) error {
		e.cfg.Failures = s
		return nil
	}
}

// WithFailureEvents is shorthand for WithFailures(NewFailureSchedule(...)).
func WithFailureEvents(events ...FailureEvent) Option {
	return WithFailures(NewFailureSchedule(events...))
}

// WithFailureAt schedules a fail-stop event at a virtual time: the listed
// ranks die together when the first one's virtual clock reaches at. The
// kill is an ordered event in virtual time — in-flight deliveries and
// checkpoint writes at or below the detection fence complete, later ones
// are cancelled — so the run's outcome is byte-reproducible wherever the
// failure lands, including mid-checkpoint-wave under a storage bandwidth
// model. Repeated WithFailureAt options accumulate into one schedule (in
// option order); combining with WithFailures appends to that schedule
// regardless of option order.
func WithFailureAt(at Time, ranks ...int) Option {
	return func(e *Engine) error {
		if at <= 0 {
			return fmt.Errorf("hydee: WithFailureAt(%v): virtual time must be positive", at)
		}
		if len(ranks) == 0 {
			return fmt.Errorf("hydee: WithFailureAt(%v): need at least one victim rank", at)
		}
		e.failAt = append(e.failAt, FailureEvent{
			Ranks: append([]int(nil), ranks...),
			When:  FailureTrigger{AtVT: at},
		})
		return nil
	}
}

// WithObserver streams structured lifecycle events (checkpoints, failures,
// recovery rounds, completion) to o. The runtime serializes calls. Use
// NewLogObserver for a human-readable debug stream, MultiObserver to fan
// out.
func WithObserver(o Observer) Option {
	return func(e *Engine) error {
		e.cfg.Observer = o
		return nil
	}
}

// WithRecorder records application-level send/deliver events for the
// determinism property checks.
func WithRecorder(r *EventRecorder) Option {
	return func(e *Engine) error {
		e.cfg.Recorder = r
		return nil
	}
}

// WithStore pins one checkpoint store instance for all of the engine's
// runs — the hook for third-party Store implementations and for tests
// that restart from a pre-populated store. A pinned store is shared
// state: sequential runs see each other's snapshots (sequences restart
// from 1, so same-program reruns overwrite rather than diverge), and
// concurrent Run calls require the store to tolerate them. For isolated
// per-run stores resolved by name, use WithStoreName.
func WithStore(st Store) Option {
	return func(e *Engine) error {
		if st == nil {
			return fmt.Errorf("hydee: WithStore(nil)")
		}
		e.cfg.Store = st
		e.storeMake = nil
		return nil
	}
}

// WithStoreName resolves the store through the name registry ("mem",
// "file", "sharded", or anything added via RegisterStore) and builds a
// fresh store from it on every Run, so sequential runs never bleed
// state. Zero opts bandwidths fall back to WithStorageBandwidth; a
// sharded store with no explicit placement defaults to per-cluster
// placement when the engine has a topology.
func WithStoreName(name string, opts StoreOptions) Option {
	return func(e *Engine) error {
		mk, err := storeRegistry.lookup(name)
		if err != nil {
			return err
		}
		e.storeMake, e.storeOpts = mk, opts
		e.cfg.Store = nil
		return nil
	}
}

// WithStorageBandwidth models stable-storage write/read bandwidth in
// bytes/second for the per-run checkpoint store (0 = free storage).
func WithStorageBandwidth(writeBPS, readBPS float64) Option {
	return func(e *Engine) error {
		if writeBPS < 0 || readBPS < 0 {
			return fmt.Errorf("hydee: WithStorageBandwidth(%g, %g): bandwidth must be >= 0", writeBPS, readBPS)
		}
		e.storeWriteBPS, e.storeReadBPS = writeBPS, readBPS
		return nil
	}
}

// WithMaxRounds caps recovery rounds as a runaway backstop; 0 derives the
// cap from the failure schedule.
func WithMaxRounds(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("hydee: WithMaxRounds(%d): cap must be >= 0", n)
		}
		e.cfg.MaxRounds = n
		return nil
	}
}

// WithWatchdog sets the real-time deadlock guard; 0 keeps the 60s default.
// Prefer context deadlines for external time budgets — the watchdog exists
// to catch runs that stop making progress.
func WithWatchdog(d time.Duration) Option {
	return func(e *Engine) error {
		if d < 0 {
			return fmt.Errorf("hydee: WithWatchdog(%v): duration must be >= 0", d)
		}
		e.cfg.Watchdog = d
		return nil
	}
}

// WithConfig seeds the engine from a legacy Config value; later options
// override individual fields. It exists so struct-based callers can migrate
// piecemeal.
func WithConfig(cfg Config) Option {
	return func(e *Engine) error {
		e.cfg = cfg
		return nil
	}
}
