package hydee_test

// BENCH_hydee.json is an append-only JSONL throughput series over
// commits (make bench-json adds one line per invocation). CI runs this
// test, so a malformed append — partial line, non-JSON garbage, a
// rewind of the timestamp order — fails the build instead of quietly
// corrupting the series.

import (
	"bufio"
	"encoding/json"
	"os"
	"testing"
	"time"
)

func TestBenchJSONLWellFormed(t *testing.T) {
	f, err := os.Open("BENCH_hydee.json")
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("no BENCH_hydee.json in this checkout")
		}
		t.Fatal(err)
	}
	defer f.Close()
	var prev time.Time
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var row struct {
			TS string `json:"ts"`
			NP int    `json:"np"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("line %d is not a JSON object: %v\n%s", lines, err, sc.Text())
		}
		ts, err := time.Parse(time.RFC3339, row.TS)
		if err != nil {
			t.Fatalf("line %d: bad ts %q: %v", lines, row.TS, err)
		}
		if ts.Before(prev) {
			t.Fatalf("line %d: ts %s goes backwards (previous %s); the series is append-only", lines, row.TS, prev.Format(time.RFC3339))
		}
		prev = ts
		if row.NP <= 0 {
			t.Fatalf("line %d: np = %d, want positive", lines, row.NP)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("BENCH_hydee.json exists but holds no points")
	}
}
