package hydee_test

// Full-scale reproduction tests: every table and figure of the paper's
// evaluation, run at the paper's 256-rank scale, with assertions on the
// shapes the paper reports (who wins, by roughly what factor, where the
// crossovers fall). EXPERIMENTS.md records paper-vs-measured values.

import (
	"context"
	"testing"

	"hydee"
	"hydee/internal/apps"
	"hydee/internal/graph"
	"hydee/internal/harness"
)

// TestTable1Reproduction clusters the six kernels at 256 ranks and checks
// each row against the paper's Table I.
func TestTable1Reproduction(t *testing.T) {
	rows, err := hydee.Table1(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper values: app -> {clusters, rollback%, logged%}.
	paper := map[string][3]float64{
		"bt": {5, 21.78, 18.09},
		"cg": {16, 6.25, 18.98},
		"ft": {2, 50.00, 50.19},
		"lu": {8, 12.50, 13.26},
		"mg": {4, 25.00, 19.63},
		"sp": {6, 18.56, 20.04},
	}
	for _, r := range rows {
		p := paper[r.App]
		t.Logf("%-3s clusters=%2d (paper %2.0f)  rollback=%6.2f%% (paper %5.2f%%)  logged=%6.2f%% (paper %5.2f%%)",
			r.App, r.K, p[0], r.RollbackPct, p[1], r.LoggedPct, p[2])
		// Cluster count within a factor of 2 of the paper's.
		if float64(r.K) < p[0]/2 || float64(r.K) > p[0]*2 {
			t.Errorf("%s: %d clusters, paper %v", r.App, r.K, p[0])
		}
		// Rollback fraction within 15 percentage points.
		if diff := r.RollbackPct - p[1]; diff > 15 || diff < -15 {
			t.Errorf("%s: rollback %.2f%%, paper %.2f%%", r.App, r.RollbackPct, p[1])
		}
		// The headline qualitative claims: FT is the pathological
		// all-to-all case at ~50%; everything else logs well under 25%.
		if r.App == "ft" {
			if r.LoggedPct < 45 || r.LoggedPct > 55 {
				t.Errorf("ft should log ~50%%, got %.2f%%", r.LoggedPct)
			}
		} else if r.LoggedPct > 25 {
			t.Errorf("%s logs %.2f%%, paper keeps all non-FT apps ~<=20%%", r.App, r.LoggedPct)
		}
	}
}

// TestFigure5Reproduction checks the NetPIPE sweep's shape: piggyback peaks
// where a plateau is crossed, equivalence of logging and no-logging, decay
// to ~zero overhead for large messages.
func TestFigure5Reproduction(t *testing.T) {
	rows, err := hydee.Figure5(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	peaks := 0
	inPeak := false
	for _, r := range rows {
		if r.LatRedNoLogPct < worst {
			worst = r.LatRedNoLogPct
		}
		// Count distinct degradation peaks (> 4% worse than native).
		if r.LatRedNoLogPct < -4 {
			if !inPeak {
				peaks++
				inPeak = true
			}
		} else {
			inPeak = false
		}
		// Logging and no-logging must be near-equivalent everywhere
		// (overlapped memcpy, §V-C).
		if d := r.LatRedNoLogPct - r.LatRedLogPct; d > 2.5 || d < -2.5 {
			t.Errorf("size %d: logging %.2f%% vs no-logging %.2f%% diverge", r.Bytes, r.LatRedLogPct, r.LatRedNoLogPct)
		}
	}
	if peaks < 2 {
		t.Errorf("expected at least the paper's two piggyback peaks, found %d", peaks)
	}
	if worst > -8 {
		t.Errorf("worst small-message degradation only %.2f%%; plateaus not exercised", worst)
	}
	// Large messages: overhead near zero.
	last := rows[len(rows)-1]
	if last.LatRedNoLogPct < -2 {
		t.Errorf("8MiB no-logging overhead %.2f%%, want ~0", last.LatRedNoLogPct)
	}
	if last.LatRedLogPct < -3 {
		t.Errorf("8MiB logging overhead %.2f%%, want ~0 (overlap)", last.LatRedLogPct)
	}
	t.Logf("worst small-message degradation %.2f%%, %d peaks, 8MiB: noLog %.2f%% log %.2f%%",
		worst, peaks, last.LatRedNoLogPct, last.LatRedLogPct)
}

// TestFigure6Reproduction runs the six kernels at 256 ranks under the three
// protocols and checks the paper's ordering and bounds.
func TestFigure6Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("256-rank sweep")
	}
	clusterings, _, err := hydee.Clusterings(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := hydee.Figure6(256, 3, clusterings)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-3s mlog=%.4f hydee=%.4f (hydee logs %.1f%%)", r.App, r.MLogNorm, r.HydEENorm, r.HydEELoggedPct)
		if r.HydEENorm < 0.9999 {
			t.Errorf("%s: HydEE faster than native (%.4f)", r.App, r.HydEENorm)
		}
		if r.HydEEPct > 2.0 {
			t.Errorf("%s: HydEE overhead %.2f%%, paper bound ~1.25-2%%", r.App, r.HydEEPct)
		}
		if r.MLogNorm+1e-9 < r.HydEENorm {
			t.Errorf("%s: full logging (%.4f) beat partial logging (%.4f)", r.App, r.MLogNorm, r.HydEENorm)
		}
	}
}

// TestE4ContainmentReproduction checks the containment claims: HydEE rolls
// back one cluster, coordinated checkpointing everything, message logging
// one process; all recover to the failure-free digests.
func TestE4ContainmentReproduction(t *testing.T) {
	k, err := apps.Get("cg")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := harness.ClusterApp(k, apps.Params{NP: 64, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := harness.Containment(k, 64, 10, 3, cl.Assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string]hydee.E4Row{}
	for _, r := range rows {
		byProto[r.Proto] = r
		t.Logf("%-6s rolled=%6.2f%% recovery=%v overhead=%.1f%%", r.Proto, r.RolledBackPct, r.RecoveryVT, r.OverheadPct)
	}
	if byProto["coord"].RolledBackPct != 100 {
		t.Errorf("coord rolled back %.1f%%, want 100%%", byProto["coord"].RolledBackPct)
	}
	if h := byProto["hydee"].RolledBackPct; h >= 50 || h <= 0 {
		t.Errorf("hydee rolled back %.1f%%, want one cluster (<50%%)", h)
	}
	if m := byProto["mlog"].RolledBackPct; m > 2 {
		t.Errorf("mlog rolled back %.1f%%, want a single rank", m)
	}
}

// TestE5CheckpointBurst checks the I/O-burst argument: under a shared
// store, staggered per-cluster checkpoints queue less than simultaneous
// global ones.
func TestE5CheckpointBurst(t *testing.T) {
	k, err := apps.Get("bt")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := harness.ClusterApp(k, apps.Params{NP: 16, Iters: 2}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := harness.CheckpointBurst(k, 16, 8, 4, cl.Assign, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	var coordQ, stagQ hydee.E5Row
	for _, r := range rows {
		t.Logf("%-20s maxQueue=%v makespan=%v", r.Config, r.MaxQueue, r.Makespan)
		switch r.Config {
		case "coord-simultaneous":
			coordQ = r
		case "hydee-staggered":
			stagQ = r
		}
	}
	if stagQ.MaxQueue >= coordQ.MaxQueue {
		t.Errorf("staggering did not reduce the burst: %v vs %v", stagQ.MaxQueue, coordQ.MaxQueue)
	}
}

// TestFacadeSmoke exercises the public API end to end the way the README
// quickstart does, via the Engine entry point.
func TestFacadeSmoke(t *testing.T) {
	ctx := context.Background()
	topo := hydee.NewTopology([]int{0, 0, 1, 1})
	base := []hydee.Option{
		hydee.WithTopology(topo),
		hydee.WithProtocol(hydee.HydEE()),
		hydee.WithModel(hydee.Myrinet10G()),
		hydee.WithCheckpointEvery(3),
	}
	cleanEng, err := hydee.New(base...)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cleanEng.Run(ctx, hydee.StencilProgram(6, 4096))
	if err != nil {
		t.Fatal(err)
	}
	failEng, err := hydee.New(append(base, hydee.WithFailureEvents(hydee.FailureEvent{
		Ranks: []int{2}, When: hydee.FailureTrigger{AfterCheckpoints: 1},
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	failed, err := failEng.Run(ctx, hydee.StencilProgram(6, 4096))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if clean.Results[r] != failed.Results[r] {
			t.Fatalf("rank %d diverged", r)
		}
	}
	if len(failed.Rounds) != 1 || failed.Rounds[0].RolledBack != 2 {
		t.Fatalf("rounds: %+v", failed.Rounds)
	}
}
